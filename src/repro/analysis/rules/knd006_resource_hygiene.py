"""KND006 — every file handle in the data-plane packages is closed.

``audit`` and ``arraymodel`` sit on the hot read path: the audit
interposer and the KND/KNDS/KNB readers hold OS file descriptors for the
lifetime of a campaign.  A leaked handle there survives millions of
debloat tests (the production north star), eventually exhausting the fd
table.  Every builtin ``open()`` in those packages must be either:

* the context expression of a ``with`` statement, or
* assigned to a name/attribute on which ``.close()`` is visibly called
  in the same function — or, for ``self.X = open(...)``, anywhere in
  the enclosing class (the reader-object pattern: ``__init__`` opens,
  ``close()`` closes, ``__exit__`` delegates).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

SCOPED_PACKAGES = ("repro.audit", "repro.arraymodel")


def _in_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in SCOPED_PACKAGES)


def _enclosing(pf: ProjectFile, node: ast.AST, kinds) -> Optional[ast.AST]:
    parents = pf.parents()
    cur: Optional[ast.AST] = parents.get(id(node))
    while cur is not None:
        if isinstance(cur, kinds):
            return cur
        cur = parents.get(id(cur))
    return None


def _close_called_on(scope: ast.AST, target: ast.expr) -> bool:
    """Is ``<target>.close()`` called anywhere under ``scope``?"""
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"):
            continue
        recv = node.func.value
        if isinstance(target, ast.Name):
            if isinstance(recv, ast.Name) and recv.id == target.id:
                return True
        elif isinstance(target, ast.Attribute):
            if (isinstance(recv, ast.Attribute)
                    and recv.attr == target.attr
                    and isinstance(recv.value, ast.Name)
                    and isinstance(target.value, ast.Name)
                    and recv.value.id == target.value.id):
                return True
    return False


@register
class ResourceHygieneRule(Rule):
    rule_id = "KND006"
    name = "resource-hygiene"
    severity = Severity.WARNING
    summary = ("every open() in audit/arraymodel must be under `with` "
               "or have a paired .close()")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not _in_scope(pf.module):
            return
        parents = pf.parents()
        for node in ast.walk(pf.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "open"):
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                target = parent.targets[0]
                if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name):
                    scope = _enclosing(pf, node, (ast.ClassDef,))
                else:
                    scope = _enclosing(
                        pf, node,
                        (ast.FunctionDef, ast.AsyncFunctionDef))
                if scope is not None and _close_called_on(scope, target):
                    continue
            yield self.finding(
                pf, node,
                "open() without `with` or a visible paired .close(); a "
                "leaked descriptor on the audit/read path accumulates "
                "across campaign iterations",
            )
