"""KND001 — replay determinism in the campaign-critical packages.

Campaigns must replay bit-identically: the parallel executor (PR 1) and
checkpoint/resume (PR 2) both promise seed-for-seed identical results,
which a single call into the *global* RNG or a wall-clock timestamp
silently breaks.  Inside the replay-critical packages (``fuzzing``,
``carving``, ``perf``, ``resilience.checkpoint``) this rule bans:

* any use of the global numpy RNG (``np.random.rand`` & co., including
  ``np.random.seed`` — seeding a process-global is still shared state);
* the stdlib ``random`` module (same global-state hazard);
* unseeded RNG construction — ``default_rng()`` pulls OS entropy; a
  documented entry point must thread an explicit seed through
  (``default_rng(config.rng_seed)``);
* wall-clock timestamp reads (``time.time``, ``datetime.now``, ...).

Monotonic *interval* clocks (``time.perf_counter``, ``time.monotonic``)
are permitted: the paper's fixed time budgets are part of the spec, and
replay identity is keyed to iteration counts carried by checkpoints, not
to wall time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register
from repro.analysis.scopes import AliasTable

REPLAY_CRITICAL = (
    "repro.fuzzing",
    "repro.carving",
    "repro.perf",
    "repro.resilience.checkpoint",
)

#: Seeded-construction entry points: allowed only with an explicit seed.
SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.Generator",
}

WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def in_replay_critical(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in REPLAY_CRITICAL)


def _has_explicit_seed(call: ast.Call) -> bool:
    """True when any argument names a seed or is a literal number."""
    args = list(call.args) + [kw.value for kw in call.keywords]
    for arg in args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Constant) and isinstance(
                    node.value, (int, float)):
                return True
            name = (node.id if isinstance(node, ast.Name)
                    else node.attr if isinstance(node, ast.Attribute)
                    else None)
            if name is not None and "seed" in name.lower():
                return True
    return False


@register
class DeterminismRule(Rule):
    rule_id = "KND001"
    name = "determinism"
    severity = Severity.ERROR
    summary = ("no global RNG, unseeded default_rng, or wall-clock "
               "timestamps in replay-critical packages "
               "(fuzzing, carving, perf, resilience.checkpoint)")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not in_replay_critical(pf.module):
            return
        aliases = AliasTable.scan(pf.tree)
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = aliases.qualify(node.func)
            if qname is None:
                continue
            if qname in SEEDED_CONSTRUCTORS:
                if not _has_explicit_seed(node):
                    yield self.finding(
                        pf, node,
                        f"{qname}() without an explicit seed draws OS "
                        f"entropy and breaks bit-identical replay; "
                        f"thread a seed from the campaign config "
                        f"(e.g. default_rng(config.rng_seed))",
                    )
            elif qname.startswith("numpy.random."):
                yield self.finding(
                    pf, node,
                    f"global numpy RNG call {qname}() is process-shared "
                    f"state; construct a seeded Generator at the "
                    f"campaign entry point and pass it down",
                )
            elif qname == "random" or qname.startswith("random."):
                yield self.finding(
                    pf, node,
                    f"stdlib {qname}() uses the global RNG; use a "
                    f"seeded numpy Generator threaded from the config",
                )
            elif qname in WALL_CLOCKS:
                yield self.finding(
                    pf, node,
                    f"wall-clock read {qname}() in a replay-critical "
                    f"package; replay must not depend on calendar "
                    f"time (interval clocks like time.perf_counter "
                    f"are fine for budgets)",
                )
