"""KND015 — fleet shared-store writes go through the fencing helpers.

The multi-host fleet's whole correctness argument (PR 10) is that every
byte landing in the shared store is CRC-sealed **and token-stamped**:
a record either carries the fencing token that was current when its
writer held the shard, or it does not exist.  One raw write — an
``atomic_write`` that replaces a lease without re-checking the token,
a ``durable_append`` to an event trail with no stamp, an ``os.open``
that truncates a completion record — reintroduces exactly the
split-brain the tokens exist to prevent: a fenced-out worker's bytes
mixed with a live worker's bookkeeping.

So the write surface is centralized: ``repro.service.fleet.fencing``
owns the raw primitives (``publish_sealed``, ``create_sealed_exclusive``,
``append_sealed``), and every other module under ``repro.service.fleet``
must call those helpers — never ``atomic_write``, ``durable_append``,
a writable ``os.open``, or a writable builtin ``open`` directly.
Reads (``open(path, 'rb')``) stay permitted; degrading a torn record
to "absent" is the reader's job, not the writer's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register
from repro.analysis.scopes import AliasTable

#: The raw write primitives only the fencing helper may touch.
RAW_WRITERS = {
    "repro.ioutil.atomic_write",
    "repro.ioutil.durable_append",
}

#: ``os.open`` flag names that make the descriptor writable.
WRITE_FLAGS = {"O_WRONLY", "O_RDWR", "O_CREAT", "O_EXCL", "O_APPEND",
               "O_TRUNC"}

#: The one module allowed to hold the primitives.
FENCING_MODULE = "repro.service.fleet.fencing"


def in_fleet_scope(module: str) -> bool:
    """True for ``repro.service.fleet`` modules other than the helper."""
    if not (module == "repro.service.fleet"
            or module.startswith("repro.service.fleet.")):
        return False
    return module != FENCING_MODULE


def _os_open_writes(call: ast.Call) -> bool:
    """True when an ``os.open`` call's flags can write (or are opaque)."""
    flags = call.args[1] if len(call.args) >= 2 else None
    if flags is None:
        for kw in call.keywords:
            if kw.arg == "flags":
                flags = kw.value
    if flags is None:
        return True  # flags we cannot see are flags we cannot trust
    names = {node.attr for node in ast.walk(flags)
             if isinstance(node, ast.Attribute)}
    names |= {node.id for node in ast.walk(flags)
              if isinstance(node, ast.Name)}
    return bool(names & WRITE_FLAGS) or not names


def _writable_mode(call: ast.Call) -> Optional[bool]:
    """Whether a builtin ``open`` mode writes; None for a read mode."""
    mode: Optional[ast.expr] = call.args[1] if len(call.args) >= 2 else None
    if mode is None:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return None  # bare open(path) reads text — permitted
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+") or None
    return True  # dynamic mode: not reviewable as a read


@register
class FencedStoreRule(Rule):
    rule_id = "KND015"
    name = "fenced-store-writes"
    severity = Severity.ERROR
    summary = ("repro.service.fleet modules write the shared store only "
               "through the token-stamping fencing helpers, never via "
               "raw atomic_write/durable_append/os.open/open")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not in_fleet_scope(pf.module):
            return
        aliases = AliasTable.scan(pf.tree)
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            qname = aliases.qualify(node.func)
            if qname in RAW_WRITERS:
                helper = ("append_sealed"
                          if qname.endswith("durable_append")
                          else "publish_sealed")
                yield self.finding(
                    pf, node,
                    f"raw {qname.rsplit('.', 1)[-1]}() in a fleet "
                    f"module: shared-store records must be CRC-sealed "
                    f"and token-stamped, so route this write through "
                    f"repro.service.fleet.fencing.{helper}",
                )
            elif qname == "os.open" and _os_open_writes(node):
                yield self.finding(
                    pf, node,
                    "writable os.open() in a fleet module: exclusive "
                    "creates belong to repro.service.fleet.fencing."
                    "create_sealed_exclusive, which seals and stamps "
                    "the record it lands",
                )
            elif (isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and _writable_mode(node)):
                yield self.finding(
                    pf, node,
                    "writable open() in a fleet module: every byte in "
                    "the shared store carries a CRC seal and a fencing "
                    "token, so writes flow through the "
                    "repro.service.fleet.fencing helpers (reads like "
                    "open(path, 'rb') are fine)",
                )
