"""KND005 — callables handed to executor pools must be pure of globals.

The campaign executor's replay guarantee (PR 1) rests on debloat tests
being *pure*: a value maps to the same offsets on every run, in any
process.  A callable submitted to a pool that mutates or reads mutable
module-level state silently couples workers through shared memory on the
thread backend — and silently *diverges* from it on the process backend,
where each worker gets its own copy.  Either way replay identity dies.

The rule inspects calls that submit work to an executor or pool
(``*.map`` / ``*.map_outcomes`` / ``*.submit`` on a receiver whose name
mentions ``executor`` or ``pool``) and resolves the submitted callable
when it is a lambda or a module-level function of the same file; free
variables that resolve to *mutable* module globals are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register
from repro.analysis.scopes import free_name_loads, mutable_module_globals

SUBMIT_METHODS = {"map", "map_outcomes", "submit"}


def _receiver_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _receiver_name(node.func)
    return ""


def _is_pool_submit(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Attribute)
            and call.func.attr in SUBMIT_METHODS and call.args):
        return False
    recv = _receiver_name(call.func.value).lower()
    return "executor" in recv or "pool" in recv


def _module_function(tree: ast.Module, name: str
                     ) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


@register
class ExecutorPurityRule(Rule):
    rule_id = "KND005"
    name = "executor-purity"
    severity = Severity.WARNING
    summary = ("callables submitted to perf.executor pools must not "
               "close over mutable module globals")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        mutables = mutable_module_globals(pf.tree)
        if not mutables:
            return
        for node in ast.walk(pf.tree):
            if not (isinstance(node, ast.Call) and _is_pool_submit(node)):
                continue
            fn_arg = node.args[0]
            target: Optional[ast.AST] = None
            label = ""
            if isinstance(fn_arg, ast.Lambda):
                target = fn_arg
                label = "lambda"
            elif isinstance(fn_arg, ast.Name):
                target = _module_function(pf.tree, fn_arg.id)
                label = fn_arg.id
            if target is None:
                continue
            seen = set()
            for load in free_name_loads(target):
                if load.id in mutables and load.id not in seen:
                    seen.add(load.id)
                    yield self.finding(
                        pf, node,
                        f"callable {label!r} submitted to an executor "
                        f"pool reads/writes mutable module global "
                        f"{load.id!r}; pass the state in as an argument "
                        f"or make the callable pure",
                    )
