"""KND008 — blocking calls in the resilience/perf layers are bounded.

Supervised execution exists because an unbounded wait anywhere in the
watchdog's own machinery would be self-defeating: a supervisor that
blocks forever on ``join()`` while escalating, or a recovery path that
``wait()``\\ s indefinitely on a dead child, turns the layer that kills
hangs into a hang.  So inside ``repro.resilience`` and ``repro.perf``
every call to one of the classic blocking primitives — ``sleep``,
``join``, ``wait``, ``poll``, ``recv`` — must visibly carry a bound:
either a positional argument (``sleep(delay)``, ``stop.wait(interval)``)
or an explicit ``timeout=`` / ``deadline=`` keyword.

A bare ``thread.join()`` / ``event.wait()`` / ``conn.recv()`` with
neither is exactly the unbounded wait this PR's watchdog was built to
kill, and it fires.  Name-based matching is deliberate: ``str.join`` and
``os.path.join`` always take a positional argument, so they pass without
special-casing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

#: Packages whose blocking calls must be bounded (the supervision /
#: recovery machinery itself plus the pool it wraps).
SCOPED_PACKAGES = ("repro.resilience", "repro.perf")

#: Call names treated as blocking primitives.
BLOCKING_CALLS = frozenset({"sleep", "join", "wait", "poll", "recv"})

#: Keyword names accepted as an explicit bound.
BOUND_KEYWORDS = frozenset({"timeout", "deadline"})


def _in_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in SCOPED_PACKAGES)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


@register
class BoundedWaitsRule(Rule):
    rule_id = "KND008"
    name = "bounded-waits"
    severity = Severity.ERROR
    summary = ("blocking calls (sleep/join/wait/poll/recv) in "
               "resilience/perf must carry a timeout or deadline")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not _in_scope(pf.module):
            return
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in BLOCKING_CALLS:
                continue
            if node.args:
                # A positional argument is the bound for these
                # primitives (sleep(delay), stop.wait(interval), ...).
                continue
            if any(kw.arg in BOUND_KEYWORDS for kw in node.keywords):
                continue
            yield self.finding(
                pf, node,
                f"unbounded blocking call {name}(): the resilience/perf "
                f"layers may never wait without a timeout or deadline — "
                f"an unbounded wait inside the watchdog machinery is the "
                f"hang it exists to kill",
            )
