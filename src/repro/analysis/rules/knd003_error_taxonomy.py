"""KND003 — broad exception handlers must feed the error taxonomy.

The self-healing runtime classifies failures through the ``repro.errors``
taxonomy and the per-item ``Outcome`` path; a broad ``except Exception``
that swallows an error somewhere else starves that classification (a
fault the healer never sees is a fault it cannot heal).  A broad handler
(bare ``except:``, ``except Exception``, ``except BaseException``) is
allowed only when its body visibly keeps the failure alive:

* it re-raises (``raise`` / ``raise X from exc``), or
* it routes the exception into the resilience outcome path — a call to
  ``Outcome.failure(...)`` / ``*.record_failure(...)``, or
* it carries an explicit ``# kondo: allow[KND003] reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

BROAD = {"Exception", "BaseException"}
OUTCOME_CALLS = {"failure", "record_failure"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    names = [t] if not isinstance(t, ast.Tuple) else list(t.elts)
    for n in names:
        if isinstance(n, ast.Name) and n.id in BROAD:
            return True
        if isinstance(n, ast.Attribute) and n.attr in BROAD:
            return True
    return False


def _keeps_failure_alive(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in OUTCOME_CALLS):
            return True
    return False


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "KND003"
    name = "error-taxonomy"
    severity = Severity.WARNING
    summary = ("broad except handlers must re-raise or route into the "
               "Outcome/record_failure taxonomy path")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _keeps_failure_alive(node):
                continue
            what = ("bare except:" if node.type is None
                    else "broad except")
            yield self.finding(
                pf, node,
                f"{what} swallows the failure: narrow the exception "
                f"type, re-raise, or route it into the resilience "
                f"outcome path (Outcome.failure / record_failure) so "
                f"the taxonomy can classify it",
            )
