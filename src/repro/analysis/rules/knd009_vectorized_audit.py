"""KND009 — the block-capture hot path stays vectorized.

The whole point of ``repro.audit.blockcapture`` / ``repro.audit.flatstore``
is that the per-I/O-call record path and the per-flush drain path do
numpy array work, never per-element Python iteration: one interpreted
loop over an event buffer quietly re-introduces the per-event cost the
block path exists to amortize, and no test catches it — the results stay
bit-identical, only the overhead fraction regresses.  So inside those
two modules, ``for`` / ``while`` statements are only allowed in the
explicitly enumerated cold-path helpers:

* ``events`` — the lazy per-``Event`` materializer (only runs when a
  caller asks for object events, never on the record path);
* ``flush`` — iterates per-*thread-buffer*, not per-event;
* ``_ingest_groups`` — iterates per-*identity* group of a drained batch,
  with the per-event work vectorized inside each group;
* ``_grow_to`` — capacity-doubling loop, runs O(log n) times total;
* ``iter_intervals`` — the ordered per-interval generator used by tests
  and the B-tree parity checks.

Any loop elsewhere in these modules — ``record``, ``_drain``,
``insert_batch``, ``merged``, ``overlapping``, a new helper — fires.
Comprehensions are deliberately out of scope: the ones these modules use
are small fixed-size constructions (module tables, per-buffer lists),
and flagging them would push authors toward less readable equivalents.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

#: The modules whose hot paths must stay vectorized.
SCOPED_MODULES = frozenset({
    "repro.audit.blockcapture",
    "repro.audit.flatstore",
})

#: Cold-path helpers where per-element / per-group iteration is the
#: design (see module docstring for why each is exempt).
ALLOWED_HELPERS = frozenset({
    "events",
    "flush",
    "_ingest_groups",
    "_grow_to",
    "iter_intervals",
})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOP_NODES = (ast.For, ast.While)


def _enclosing_function(tree: ast.Module, loop: ast.AST) -> Optional[str]:
    """Name of the innermost function containing ``loop``, if any."""
    innermost = None
    for node in ast.walk(tree):
        if not isinstance(node, _FUNC_NODES):
            continue
        if any(sub is loop for sub in ast.walk(node)):
            # Later hits are nested deeper (walk yields outer first for
            # our purposes only within a branch); keep the smallest span.
            if innermost is None or _span(node) <= _span(innermost):
                innermost = node
    return innermost.name if innermost is not None else None


def _span(node: ast.AST) -> int:
    end = getattr(node, "end_lineno", node.lineno)
    return end - node.lineno


@register
class VectorizedAuditRule(Rule):
    rule_id = "KND009"
    name = "vectorized-audit"
    severity = Severity.ERROR
    summary = ("blockcapture/flatstore hot paths must not loop over "
               "event buffers in Python — vectorize or move the loop "
               "into an allow-listed cold-path helper")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if pf.module not in SCOPED_MODULES:
            return
        for node in ast.walk(pf.tree):
            if not isinstance(node, _LOOP_NODES):
                continue
            func = _enclosing_function(pf.tree, node)
            if func in ALLOWED_HELPERS:
                continue
            kind = "for" if isinstance(node, ast.For) else "while"
            where = f"in {func}()" if func else "at module scope"
            yield self.finding(
                pf, node,
                f"python `{kind}` loop {where}: the block-capture hot "
                f"path must stay vectorized — batch the work with numpy "
                f"or move it into an allow-listed cold-path helper "
                f"({', '.join(sorted(ALLOWED_HELPERS))})",
            )
