"""KND013 — fork sites must be lock-free and thread-free.

``os.fork`` clones exactly one thread but the *whole* address space —
including every mutex, in whatever state it happens to be.  Two concrete
hazards follow, both invisible until the child wedges in production:

* **fork while holding a lock** — the child inherits the locked mutex
  with no thread to ever release it; its next acquisition deadlocks.
  The supervised-execution layer forks workers on purpose
  (:mod:`repro.resilience.supervision`), which is exactly why its fork
  sites must be provably lock-free — checked interprocedurally, so a
  call that *reaches* a fork while a lock is held is flagged at the
  call site with the witness chain.
* **thread creation before fork in the same function** — any thread
  alive at fork time may hold arbitrary library locks (logging, malloc
  arenas) at the instant of the snapshot; the combination is undefined
  behavior by POSIX and a classic source of rare child hangs.  The
  intra-function ordering check catches the pattern where one function
  both spawns threads and then forks.

Lock knowledge comes from the same analyzer tables as KND011/KND012, so
"any analyzer-known lock" means registered lock objects and lock-named
attributes; see :mod:`repro.analysis.locks`.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register


@register
class ForkSafetyRule(Rule):
    rule_id = "KND013"
    name = "fork-safety"
    severity = Severity.ERROR
    summary = ("os.fork must not be reachable while a lock is held, and "
               "no thread may be created before a fork in one function")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        ctx = project.concurrency()
        for fn in ctx.functions_in(pf.path):
            first_thread = min((t.lineno for t in fn.threads),
                               default=None)
            for f in fn.forks:
                if f.held:
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(f"{f.call}() while holding "
                                 f"{', '.join(f.held)}: the child "
                                 f"inherits the locked mutex with no "
                                 f"thread left to release it"),
                        path=pf.path, module=pf.module,
                        line=f.lineno, col=f.col + 1,
                        severity=self.severity,
                        snippet=pf.line(f.lineno),
                    )
                if first_thread is not None and f.lineno > first_thread:
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(f"{f.call}() after creating a thread at "
                                 f"line {first_thread}: a live thread at "
                                 f"fork time may hold arbitrary library "
                                 f"locks in the child's snapshot"),
                        path=pf.path, module=pf.module,
                        line=f.lineno, col=f.col + 1,
                        severity=self.severity,
                        snippet=pf.line(f.lineno),
                    )
            for call in ctx.resolved_calls(fn.qualname):
                rec = call.rec
                chain = ctx.fork.get(call.callee)
                if chain is None or not rec.held:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"call to {call.callee} reaches os.fork "
                             f"while holding {', '.join(rec.held)}"),
                    path=pf.path, module=pf.module,
                    line=rec.lineno, col=rec.col + 1,
                    severity=self.severity, snippet=pf.line(rec.lineno),
                    witness=(call.callee,) + chain,
                )
