"""KND014 — shard-merge determinism in the sharded-campaign modules.

The whole sharded-campaign contract (PR 9) is that the merged result is
bit-identical to the unsharded run for every shard count, every crash
point, and every hedging outcome.  Two silent ways to break it:

* a shard planner (or slice executor) reading the **global RNG or the
  wall clock** — slice seeds must derive from the job key and nothing
  else, or replanning after a crash yields different slices;
* a merge folding shard results in **dict-iteration order** — Python
  dicts preserve insertion order, which for shard results is
  *completion* order: deterministic per run, different across runs.
  Merge loops over a dict's ``.items()``/``.keys()``/``.values()``
  must wrap the view in ``sorted(...)``.

Scope: modules under ``repro.service`` whose name mentions shards.
Monotonic interval clocks (``time.perf_counter``, ``time.monotonic``)
stay permitted, exactly as in KND001 — budgets are part of Θ.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register
from repro.analysis.scopes import AliasTable

#: Wall-clock and RNG entry points a shard planner may never call.
NONDETERMINISM = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Dict-view iterators whose order is insertion (= completion) order.
DICT_VIEWS = ("items", "keys", "values")


def in_shard_scope(module: str) -> bool:
    """True for ``repro.service`` modules that implement sharding."""
    if not (module == "repro.service"
            or module.startswith("repro.service.")):
        return False
    return "shard" in module.rsplit(".", 1)[-1]


def _is_bare_dict_view(node: ast.expr) -> bool:
    """True for an unsorted ``<expr>.items()/.keys()/.values()`` iteration."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEWS
            and not node.args and not node.keywords)


@register
class ShardMergeRule(Rule):
    rule_id = "KND014"
    name = "shard-merge-determinism"
    severity = Severity.ERROR
    summary = ("shard planners may not read the global RNG or the wall "
               "clock, and merge loops must fold shard results in "
               "sorted order, never dict-completion order")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not in_shard_scope(pf.module):
            return
        aliases = AliasTable.scan(pf.tree)
        for node in ast.walk(pf.tree):
            if isinstance(node, ast.Call):
                qname = aliases.qualify(node.func)
                if qname is None:
                    continue
                if qname in NONDETERMINISM:
                    yield self.finding(
                        pf, node,
                        f"wall-clock read {qname}() in a shard module: "
                        f"replanning after a crash must reproduce the "
                        f"same slices, so plans may depend only on the "
                        f"job spec (interval clocks like "
                        f"time.monotonic are fine for budgets)",
                    )
                elif (qname.startswith("numpy.random.")
                        or qname == "random" or qname.startswith("random.")):
                    yield self.finding(
                        pf, node,
                        f"RNG call {qname}() in a shard module: slice "
                        f"seeds must derive from the job key "
                        f"(sha256(job_key, index)), never from global "
                        f"or OS randomness",
                    )
            elif isinstance(node, ast.FunctionDef):
                if "merge" not in node.name:
                    continue
                for loop in ast.walk(node):
                    if not isinstance(loop, (ast.For, ast.comprehension)):
                        continue
                    it = loop.iter
                    if _is_bare_dict_view(it):
                        yield self.finding(
                            pf, it,
                            f"merge loop in {node.name}() iterates a "
                            f"dict view in insertion (= shard "
                            f"completion) order; wrap it in "
                            f"sorted(...) so the fold is identical "
                            f"for every execution history",
                        )
