"""KND011 — the project-wide lock-order graph must stay acyclic.

Every lock acquisition observed while another lock is held — directly
(``with a: with b:``) or through any chain of resolved calls (``with a:``
then a call whose callee eventually takes ``b``) — contributes an edge
``a -> b`` to one global lock-order graph (built by
:mod:`repro.analysis.callgraph`).  A cycle in that graph means two code
paths can take the same locks in opposite orders, which is the classic
recipe for a deadlock that only fires under load: each thread holds one
lock of the cycle and waits forever for the next.

The rule is project-level, not per-file — the two halves of a deadlock
are usually in different modules, and neither file looks wrong on its
own.  Each cycle is reported once, anchored at its first witness site,
with one witness line per edge so the report names *both* paths (the
``a -> b`` acquisition and the ``b -> a`` one) rather than making the
reader reconstruct half the cycle.  Lock identity is the qualified
attribute path (``module:Class.attr``); see :mod:`repro.analysis.locks`
for the abstraction and its documented conservatisms.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register


@register
class LockOrderRule(Rule):
    rule_id = "KND011"
    name = "lock-order"
    severity = Severity.ERROR
    summary = ("lock acquisitions must follow one global order — a cycle "
               "in the acquired-while-holding graph is a potential "
               "deadlock")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        return iter(())  # project-level rule; see check_project

    def check_project(self, project: Project) -> Iterator[Finding]:
        ctx = project.concurrency()
        by_path = {pf.path: pf for pf in project.files}
        for cycle in ctx.lock_cycles():
            edges = list(zip(cycle, cycle[1:]))
            witnesses = [(a, b, ctx.edge_witness(a, b)) for a, b in edges]
            anchor = witnesses[0][2]
            pf = by_path.get(anchor.path)
            snippet = pf.line(anchor.lineno) if pf is not None else ""
            yield Finding(
                rule_id=self.rule_id,
                message=(f"lock-order cycle {' -> '.join(cycle)}: these "
                         f"locks are taken in opposite orders on "
                         f"different paths, so two threads can deadlock "
                         f"holding one each"),
                path=anchor.path, module=anchor.func.split(":", 1)[0],
                line=anchor.lineno, col=1,
                severity=self.severity, snippet=snippet,
                witness=tuple(w.describe(a, b) for a, b, w in witnesses),
            )
