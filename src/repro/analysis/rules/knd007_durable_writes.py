"""KND007 — durable bundle artifacts mutate only through sanctioned APIs.

KND/KNDS bundles, their delta patches, and their journals are the
durability layer's crash-safety domain: every mutation must flow through
the journal's intent → fsync → commit protocol
(:mod:`repro.resilience.durability.journal`) or, for freshly-built
artifacts, through ``repro.ioutil.atomic_write``.  A raw ``open(...,
"wb")`` on a ``.knds`` path — or an ``os.replace`` / ``shutil.copyfile``
landing on one — bypasses both: it can tear the only copy of
``D_Theta`` on crash and leaves no journal record for ``kondo
rollback`` to restore.

The rule flags writing constructs whose *target path expression* smells
like a durable artifact: a string literal mentioning ``.knd`` /
``.knds`` / ``.kpatch`` / ``journal``, or an identifier named like one
(``bundle_path``, ``generation_path``, ``log_path``, ...).  Fault
injectors that deliberately damage artifacts carry
``# kondo: allow[KND007]`` annotations — injected damage is the point
there, and the annotation makes each site reviewable.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

#: The sanctioned mutation sites themselves.
EXEMPT_MODULES = (
    "repro.ioutil",
    "repro.resilience.durability.journal",
)

#: Substrings of a *string literal* that mark a durable-artifact path.
LITERAL_SMELLS = (".knd", ".knds", ".kpatch", "journal")

#: Substrings of an *identifier* (variable / attribute / called helper)
#: that mark a durable-artifact path.
NAME_SMELLS = (
    "knd",
    "kpatch",
    "journal",
    "bundle_path",
    "generation_path",
    "gen_path",
    "patch_path",
    "log_path",
)


def _smells_durable(expr: Optional[ast.expr]) -> Optional[str]:
    """Why ``expr`` looks like a durable-artifact path, or ``None``."""
    if expr is None:
        return None
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for smell in LITERAL_SMELLS:
                if smell in node.value:
                    return f"literal containing {smell!r}"
        ident = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None:
            lowered = ident.lower()
            for smell in NAME_SMELLS:
                if smell in lowered:
                    return f"identifier {ident!r}"
    return None


def _open_mode_writes(call: ast.Call) -> bool:
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return False  # default "r" cannot write
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "wax+")
    return True  # unreviewable mode: treat as writing


def _dotted(func: ast.expr) -> str:
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


#: ``callable-name -> index of the destination-path argument``.
REPLACING_CALLS = {
    "os.replace": 1,
    "os.rename": 1,
    "shutil.copyfile": 1,
    "shutil.copy": 1,
    "shutil.move": 1,
}


@register
class DurableWritesRule(Rule):
    rule_id = "KND007"
    name = "durable-writes"
    severity = Severity.ERROR
    summary = ("KND/KNDS/patch/journal files mutate only through the "
               "durability journal API or repro.ioutil.atomic_write")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if pf.module in EXEMPT_MODULES:
            return
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                if not node.args or not _open_mode_writes(node):
                    continue
                why = _smells_durable(node.args[0])
                if why is None:
                    continue
                yield self.finding(
                    pf, node,
                    f"raw writable open() on a durable artifact "
                    f"({why}); mutate bundles through "
                    f"repro.resilience.durability.journal (BundleJournal"
                    f".commit_patch / commit_bytes) or build them with "
                    f"repro.ioutil.atomic_write",
                )
                continue
            dotted = _dotted(node.func)
            dst_index = REPLACING_CALLS.get(dotted)
            if dst_index is None or len(node.args) <= dst_index:
                continue
            why = _smells_durable(node.args[dst_index])
            if why is None:
                continue
            yield self.finding(
                pf, node,
                f"{dotted}() lands on a durable artifact ({why}) "
                f"outside the journal's commit protocol; a crash here "
                f"leaves no generation to roll back to — go through "
                f"BundleJournal or repro.ioutil.atomic_write",
            )
