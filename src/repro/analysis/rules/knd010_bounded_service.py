"""KND010 — service-layer queues and sockets are always bounded.

The campaign orchestrator (``repro.service``) is the layer whose whole
job is graceful degradation: overload must surface as an explicit
``REJECTED-BUSY``, never as silent unbounded growth, and a stalled peer
must cost a timeout, never a wedged daemon thread.  Two construction
mistakes defeat that by default and are cheap to catch statically:

* an **unbounded queue** — ``queue.Queue()`` (or ``LifoQueue`` /
  ``PriorityQueue``) without a positive ``maxsize`` admits work without
  limit, so backpressure can never fire; ``SimpleQueue`` has no
  ``maxsize`` at all and is banned outright in the service layer;
* an **unbounded socket/queue wait** — ``get()`` / ``accept()`` /
  ``recv()`` with neither a positional bound nor a ``timeout=`` keyword
  blocks forever.  A call is also accepted when the *enclosing function*
  visibly calls ``settimeout(...)`` on something first (the idiomatic
  socket pattern: bound the socket once, then loop on ``recv``).

Scope is ``repro.service`` only: the generic bounded-wait discipline for
the resilience/perf machinery is KND008's; this rule is the service
layer's stricter construction-time contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

#: The package under this rule's contract.
SCOPED_PACKAGE = "repro.service"

#: Queue constructors that must carry a bounding ``maxsize``.
BOUNDED_QUEUE_TYPES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})

#: Queue types with no capacity bound at all — never service-layer safe.
UNBOUNDABLE_QUEUE_TYPES = frozenset({"SimpleQueue"})

#: Blocking receive-side calls that must carry a bound.
BLOCKING_CALLS = frozenset({"get", "accept", "recv"})


def _in_scope(module: str) -> bool:
    return (module == SCOPED_PACKAGE
            or module.startswith(SCOPED_PACKAGE + "."))


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _is_zero_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


def _queue_bound(node: ast.Call) -> bool:
    """Whether a queue constructor visibly carries a nonzero maxsize."""
    if node.args:
        return not _is_zero_literal(node.args[0])
    for kw in node.keywords:
        if kw.arg == "maxsize":
            return not _is_zero_literal(kw.value)
    return False


def _function_sets_timeout(fn: ast.AST) -> bool:
    """Whether the enclosing function calls ``settimeout(...)`` anywhere."""
    for node in ast.walk(fn):
        if (isinstance(node, ast.Call)
                and _call_name(node) == "settimeout" and node.args):
            return True
    return False


@register
class BoundedServiceRule(Rule):
    rule_id = "KND010"
    name = "bounded-service"
    severity = Severity.ERROR
    summary = ("service-layer queues need a maxsize and service-layer "
               "get/accept/recv need a timeout")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not _in_scope(pf.module):
            return
        # Map every node to its enclosing function so a blocking call
        # can be excused by a settimeout() in the same function body.
        enclosing = {}
        for fn in ast.walk(pf.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(fn):
                    enclosing[child] = fn
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in UNBOUNDABLE_QUEUE_TYPES:
                yield self.finding(
                    pf, node,
                    f"{name} has no capacity bound and admits work "
                    f"without limit; the service layer degrades through "
                    f"explicit REJECTED-BUSY, so use a bounded Queue",
                )
                continue
            if name in BOUNDED_QUEUE_TYPES and not _queue_bound(node):
                yield self.finding(
                    pf, node,
                    f"unbounded {name}(): a service-layer queue without "
                    f"a maxsize grows without limit under overload — "
                    f"backpressure (REJECTED-BUSY) can never fire",
                )
                continue
            if name in BLOCKING_CALLS:
                if name == "get" and node.args:
                    # dict.get(key[, default]) — the ubiquitous
                    # non-blocking get.  queue.Queue.get is only
                    # blocking when called bare or with keywords, and
                    # those paths still need timeout= below.
                    continue
                # For accept()/recv(bufsize) a positional argument is
                # never the bound (recv's is a size), so only timeout=
                # or a settimeout in the enclosing function counts.
                if any(kw.arg == "timeout" for kw in node.keywords):
                    continue
                fn = enclosing.get(node)
                if fn is not None and _function_sets_timeout(fn):
                    continue
                yield self.finding(
                    pf, node,
                    f"unbounded blocking {name}() in the service layer: "
                    f"pass timeout= or call settimeout(...) in the same "
                    f"function — a stalled peer must cost a timeout, "
                    f"never a wedged daemon thread",
                )
