"""KND012 — no blocking operation is reachable while a lock is held.

In the audit, service, and resilience layers a lock protects shared
in-memory state that other threads — capture hot paths, the daemon's
lease loop, watchdog timers — need at high frequency.  Blocking while
holding one (an ``fsync``, a socket ``recv``, a ``subprocess`` spawn, a
``sleep``, a durability-journal append) turns a microsecond critical
section into a disk- or network-scale stall for every waiter, and is how
"the daemon briefly paused" becomes "every worker missed its lease".

The check is **interprocedural**: the per-function summaries of
:mod:`repro.analysis.locks` record which locks are held at every call
site, and the fixpoint of :mod:`repro.analysis.callgraph` knows which
blocking primitives each callee can reach — so ``with self._lock:
self._flush()`` is flagged when ``_flush`` (or anything it calls) ends
in ``os.fsync``.  Findings carry the witness chain from the call site to
the primitive.  Unknown callees contribute nothing (the documented
conservative choice), so a finding here always has a concrete chain to a
known blocking site.

Some sites block under a lock *by design* — the job store's journal
append intentionally serializes durability with state mutation so a
reader can never observe un-journaled state.  Those carry inline
``kondo: allow`` suppressions whose reasons document the invariant.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, register

#: Packages whose locks must never be held across a blocking operation.
SCOPED_PACKAGES = ("repro.audit", "repro.service", "repro.resilience")


def _in_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in SCOPED_PACKAGES)


@register
class BlockingUnderLockRule(Rule):
    rule_id = "KND012"
    name = "blocking-under-lock"
    severity = Severity.ERROR
    summary = ("no fsync/recv/subprocess/sleep/journal-append may be "
               "reachable while an audit/service/resilience lock is held")
    rationale = __doc__ or ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        if not _in_scope(pf.module):
            return
        ctx = project.concurrency()
        for fn in ctx.functions_in(pf.path):
            direct_lines = set()
            for b in fn.blocking:
                if not b.held:
                    continue
                direct_lines.add(b.lineno)
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"{b.op} ({b.call}) while holding "
                             f"{', '.join(b.held)}: every waiter stalls "
                             f"for the full blocking operation"),
                    path=pf.path, module=pf.module,
                    line=b.lineno, col=b.col + 1,
                    severity=self.severity, snippet=pf.line(b.lineno),
                )
            for call in ctx.resolved_calls(fn.qualname):
                rec = call.rec
                if not rec.held or rec.lineno in direct_lines:
                    # direct_lines: a qualified blocking call is both a
                    # direct site and a resolvable callee — report once.
                    continue
                blocked = ctx.blocking.get(call.callee)
                if not blocked:
                    continue
                kind = min(blocked)
                yield Finding(
                    rule_id=self.rule_id,
                    message=(f"call to {call.callee} reaches {kind} "
                             f"while holding {', '.join(rec.held)}"),
                    path=pf.path, module=pf.module,
                    line=rec.lineno, col=rec.col + 1,
                    severity=self.severity, snippet=pf.line(rec.lineno),
                    witness=(call.callee,) + blocked[kind],
                )
