"""Per-function concurrency summaries: locks, blocking ops, forks, threads.

This module is the *intra*procedural half of the concurrency analyzer
(the interprocedural half — linking, fixpoints, the lock-order graph —
lives in :mod:`repro.analysis.callgraph`).  For every function in a file
it produces a :class:`FuncSummary` recording, in source order and with
the set of locks held at each point:

* **acquisitions** — ``with <lock>:`` blocks and ``.acquire()`` /
  ``.release()`` pairs.  Lock *identity* is the qualified attribute path
  of the lock expression: ``self._lock`` inside class ``C`` of module
  ``m`` is ``m:C._lock`` (one identity per class attribute — the
  standard static-lockset abstraction), a module-level lock is ``m:L``,
  a function local is ``m:f.L``, and an attribute of an opaque receiver
  (``buf.lock``) is ``*.lock`` (merged by attribute name — conservative
  for deadlock detection).
* **calls** — every call that *could* resolve to a project function
  (``self.m()``, a module-level name, an import-qualified chain),
  carrying the locks held at the call site so the interprocedural pass
  can propagate lockset and blocking effects through it.  Calls on
  receivers the analyzer cannot type are dropped: an unknown callee
  contributes nothing to any lockset (the documented conservative
  choice — Kondo's own invariants are what the rules enforce, and those
  live in project code the resolver *can* see).
* **blocking operations** — ``fsync``/``fdatasync``, socket
  ``recv``/``accept``/``connect``, ``select``, ``sleep``,
  ``subprocess.*``, and the durability-journal appends
  (``durable_append``/``fsync_dir``), matched either by import-qualified
  name or, for opaque receivers, by terminal attribute name (the same
  deliberate name-based matching KND008 uses).
* **fork and thread-creation sites** — ``os.fork``/``forkpty`` and
  ``threading.Thread(...)``, for the fork-safety rule.

An expression is treated as a lock when it was *registered* — assigned
from a ``threading.Lock()``/``RLock()``/``Condition()``/``Semaphore()``
factory anywhere in the same file (module level, ``self.X = ...`` in a
class body, or a function local) — or when its terminal name contains
``lock``/``mutex``.  ``with open(...)`` and other non-lock context
managers never match (the expression must be a plain name or attribute).

Everything here is picklable and free of AST references, so the
``--jobs`` process pool can compute summaries in workers and the
``.kondo-cache`` can persist them alongside the parsed tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.scopes import AliasTable

#: Constructors whose result is registered as a lock object.
LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Substrings marking a name as lock-like even without registration.
LOCK_NAME_HINTS = ("lock", "mutex")

#: Import-qualified call -> blocking kind.
QUALIFIED_BLOCKING: Dict[str, str] = {
    "os.fsync": "fsync",
    "os.fdatasync": "fsync",
    "time.sleep": "sleep",
    "select.select": "select",
    "select.poll": "select",
    "socket.create_connection": "socket connect",
    "subprocess.run": "subprocess",
    "subprocess.call": "subprocess",
    "subprocess.check_call": "subprocess",
    "subprocess.check_output": "subprocess",
    "subprocess.Popen": "subprocess",
    "repro.ioutil.durable_append": "journal append",
    "repro.ioutil.fsync_dir": "journal append",
}

#: Terminal attribute name (opaque receiver) -> blocking kind.
TERMINAL_BLOCKING: Dict[str, str] = {
    "fsync": "fsync",
    "fdatasync": "fsync",
    "recv": "socket recv",
    "recv_into": "socket recv",
    "recvfrom": "socket recv",
    "accept": "socket accept",
    "sleep": "sleep",
    "durable_append": "journal append",
}

#: Terminal names treated as a process fork on an opaque receiver.
FORK_TERMINALS = frozenset({"fork", "forkpty"})


def _hinted(name: str) -> bool:
    low = name.lower()
    return any(h in low for h in LOCK_NAME_HINTS)


def _terminal(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted text of a name/attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    return ".".join(reversed(parts))


def _has_lock_factory(expr: ast.AST) -> bool:
    """Does ``expr`` contain a ``Lock()``-family constructor call?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and _terminal(node.func) in LOCK_FACTORIES:
            return True
    return False


@dataclass(frozen=True)
class AcquireRec:
    """One lock acquisition, with the locks already held at that point."""

    lock_id: str
    lineno: int
    col: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class CallRec:
    """One potentially-resolvable call site.

    ``kind`` selects the resolution strategy the linker applies:
    ``"self"``/``"cls"`` (method on the lexically enclosing class or its
    bases), ``"local"`` (module-level function or class of the same
    file), or ``"qual"`` (import-qualified dotted chain resolved against
    the project module table).
    """

    kind: str
    target: str
    name: str
    lineno: int
    col: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class BlockRec:
    """A direct blocking operation and the locks held around it."""

    op: str
    call: str
    lineno: int
    col: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class ForkRec:
    call: str
    lineno: int
    col: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class ThreadRec:
    lineno: int
    col: int


@dataclass
class FuncSummary:
    """Everything the interprocedural pass needs about one function."""

    qualname: str            # "module:func" or "module:Class.method"
    module: str
    path: str
    name: str
    cls: Optional[str]
    lineno: int
    col: int
    acquires: List[AcquireRec] = field(default_factory=list)
    calls: List[CallRec] = field(default_factory=list)
    blocking: List[BlockRec] = field(default_factory=list)
    forks: List[ForkRec] = field(default_factory=list)
    threads: List[ThreadRec] = field(default_factory=list)


@dataclass
class FileConcurrency:
    """Per-file summary bundle plus the name tables the linker needs."""

    path: str
    module: str
    functions: List[FuncSummary] = field(default_factory=list)
    #: Module-level function names defined in this file.
    module_defs: Tuple[str, ...] = ()
    #: Class name -> method names.
    classes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Class name -> dotted base-class expressions.
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Import alias table (local name -> dotted target).
    aliases: Dict[str, str] = field(default_factory=dict)


class _FuncWalker:
    """Walks one function body tracking the ordered set of held locks."""

    def __init__(self, summary: FuncSummary, file_ctx: "_FileContext"):
        self.s = summary
        self.ctx = file_ctx
        self.held: List[str] = []
        #: Function-local lock registrations (name -> lock id).
        self.local_locks: Dict[str, str] = {}

    # -- lock identity -------------------------------------------------------

    def _lock_id(self, expr: ast.AST, assume: bool = False) -> Optional[str]:
        if isinstance(expr, ast.Name):
            n = expr.id
            if n in self.local_locks:
                return self.local_locks[n]
            if n in self.ctx.module_locks:
                return f"{self.s.module}:{n}"
            if assume or _hinted(n):
                return f"{self.s.module}:{self._func_label()}.{n}"
            return None
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            base = expr.value
            if (isinstance(base, ast.Name) and base.id in ("self", "cls")
                    and self.s.cls is not None):
                registered = attr in self.ctx.class_locks.get(self.s.cls, ())
                if registered or assume or _hinted(attr):
                    return f"{self.s.module}:{self.s.cls}.{attr}"
                return None
            if assume or _hinted(attr):
                return f"*.{attr}"
        return None

    def _func_label(self) -> str:
        return self.s.qualname.split(":", 1)[1]

    # -- held-set bookkeeping ------------------------------------------------

    def _acquire(self, lock_id: str, node: ast.AST) -> None:
        self.s.acquires.append(AcquireRec(
            lock_id=lock_id, lineno=node.lineno, col=node.col_offset,
            held=tuple(self.held)))
        if lock_id not in self.held:
            self.held.append(lock_id)

    def _release(self, lock_id: str) -> None:
        if lock_id in self.held:
            self.held.remove(lock_id)

    # -- statements ----------------------------------------------------------

    def walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs run later, under their own locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed: List[str] = []
            for item in stmt.items:
                lock_id = self._lock_id(item.context_expr)
                if lock_id is not None:
                    self._acquire(lock_id, item.context_expr)
                    pushed.append(lock_id)
                else:
                    self._scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._scan_expr(item.optional_vars)
            self.walk(stmt.body)
            for lock_id in reversed(pushed):
                self._release(lock_id)
            return
        if isinstance(stmt, ast.Assign):
            self._maybe_register_local(stmt)
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self._scan_expr(value)
            elif isinstance(value, ast.stmt):
                self._walk_stmt(value)
            elif isinstance(value, ast.ExceptHandler):
                if value.type is not None:
                    self._scan_expr(value.type)
                self.walk(value.body)

    def _maybe_register_local(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        if _has_lock_factory(stmt.value):
            self.local_locks[name] = \
                f"{self.s.module}:{self._func_label()}.{name}"
            return
        # ``lk = self._lock`` — a local alias to an existing lock.
        alias_id = self._lock_id(stmt.value)
        if alias_id is not None:
            self.local_locks[name] = alias_id

    # -- expressions / calls -------------------------------------------------

    def _scan_expr(self, expr: ast.expr) -> None:
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred body; runs under unknown locks
            if isinstance(node, ast.Call):
                self._classify_call(node)
            stack.extend(ast.iter_child_nodes(node))

    def _classify_call(self, call: ast.Call) -> None:
        func = call.func
        name = _terminal(func)
        held = tuple(self.held)
        # Explicit acquire/release: the receiver is a lock by definition.
        if isinstance(func, ast.Attribute) and name in ("acquire", "release"):
            lock_id = self._lock_id(func.value, assume=True)
            if lock_id is not None:
                if name == "acquire":
                    self._acquire(lock_id, call)
                else:
                    self._release(lock_id)
            return
        qual = self.ctx.aliases.qualify(func)
        dotted = qual or _dotted(func)
        # Fork sites.
        if qual == "os.fork" or (qual is None and name in FORK_TERMINALS
                                 and isinstance(func, ast.Attribute)):
            self.s.forks.append(ForkRec(
                call=dotted, lineno=call.lineno, col=call.col_offset,
                held=held))
            return
        # Thread creation.
        if qual == "threading.Thread" or name == "Thread":
            self.s.threads.append(ThreadRec(
                lineno=call.lineno, col=call.col_offset))
            return
        # Blocking primitives: import-qualified, or terminal-name match
        # on an opaque receiver (``conn.recv()``), never on a bare local
        # name the resolver might know better.
        kind = QUALIFIED_BLOCKING.get(qual) if qual else None
        if kind is None and qual is None and isinstance(func, ast.Attribute):
            kind = TERMINAL_BLOCKING.get(name)
        if kind is not None:
            self.s.blocking.append(BlockRec(
                op=kind, call=dotted, lineno=call.lineno,
                col=call.col_offset, held=held))
        # Resolvable project calls.
        rec = self._call_rec(func, name, qual, held, call)
        if rec is not None:
            self.s.calls.append(rec)

    def _call_rec(self, func: ast.AST, name: str, qual: Optional[str],
                  held: Tuple[str, ...], call: ast.Call
                  ) -> Optional[CallRec]:
        if isinstance(func, ast.Name):
            if qual is not None:
                return CallRec("qual", qual, name, call.lineno,
                               call.col_offset, held)
            if (name in self.ctx.module_defs or name in self.ctx.classes):
                return CallRec("local", name, name, call.lineno,
                               call.col_offset, held)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                    and self.s.cls is not None:
                return CallRec("self", func.attr, name, call.lineno,
                               call.col_offset, held)
            if qual is not None:
                return CallRec("qual", qual, name, call.lineno,
                               call.col_offset, held)
        return None


class _FileContext:
    """Name tables shared by every function walker of one file."""

    def __init__(self, module: str, tree: ast.Module):
        self.aliases = AliasTable.scan(tree)
        self.module_locks: Dict[str, bool] = {}
        self.module_defs: List[str] = []
        self.classes: Dict[str, List[str]] = {}
        self.class_bases: Dict[str, List[str]] = {}
        self.class_locks: Dict[str, List[str]] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs.append(node.name)
            elif isinstance(node, ast.ClassDef):
                methods = [n.name for n in node.body
                           if isinstance(n, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))]
                self.classes[node.name] = methods
                self.class_bases[node.name] = [
                    _dotted(b) for b in node.bases if _dotted(b)]
                self.class_locks[node.name] = _class_lock_attrs(node)
            elif isinstance(node, ast.Assign):
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and _has_lock_factory(node.value)):
                    self.module_locks[node.targets[0].id] = True


def _class_lock_attrs(cls: ast.ClassDef) -> List[str]:
    """``self.X`` attributes assigned a lock factory anywhere in ``cls``."""
    attrs: List[str] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _has_lock_factory(node.value)
                    and target.attr not in attrs):
                attrs.append(target.attr)
    return attrs


def collect_file(path: str, module: str,
                 tree: ast.Module) -> FileConcurrency:
    """Summarize every (module-level and method) function of one file."""
    ctx = _FileContext(module, tree)
    out = FileConcurrency(
        path=path, module=module,
        module_defs=tuple(ctx.module_defs),
        classes={c: tuple(m) for c, m in ctx.classes.items()},
        class_bases={c: tuple(b) for c, b in ctx.class_bases.items()},
        aliases=dict(ctx.aliases.aliases),
    )

    def summarize(fn: ast.AST, cls: Optional[str]) -> None:
        label = fn.name if cls is None else f"{cls}.{fn.name}"
        summary = FuncSummary(
            qualname=f"{module}:{label}", module=module, path=path,
            name=fn.name, cls=cls, lineno=fn.lineno, col=fn.col_offset,
        )
        walker = _FuncWalker(summary, ctx)
        walker.walk(fn.body)
        out.functions.append(summary)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize(node, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summarize(item, node.name)
    return out
