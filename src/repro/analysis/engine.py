"""The check runner: load -> run rules -> suppress -> baseline -> report.

Exit codes: 0 clean (every finding suppressed or baselined), 1 when new
findings remain, 2 on usage errors.  ``kondo check`` and ``python -m
repro.analysis`` are two doors into :func:`main`.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.model import Finding
from repro.analysis.project import Project
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rulebase import Rule, all_rules
from repro.ioutil import atomic_write


@dataclass
class CheckResult:
    """Everything one ``kondo check`` run produced."""

    new: List[Finding]
    grandfathered: List[Finding]
    suppressed: List[Finding]
    n_files: int
    rules: List[Rule] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def run_check(paths: Sequence[str],
              select: Optional[Sequence[str]] = None,
              baseline: Optional[Baseline] = None) -> CheckResult:
    """Run the selected rules over ``paths`` (no reporting/IO)."""
    project = Project.load(paths)
    rules = all_rules()
    if select:
        wanted = {s.upper() for s in select}
        rules = [r for r in rules if r.rule_id in wanted]
    findings: List[Finding] = list(project.load_findings)
    suppressed: List[Finding] = []
    for pf in project.files:
        findings.extend(pf.suppressions.malformed_findings(
            pf.path, pf.module, pf.lines))
        for rule in rules:
            for f in rule.check(pf, project):
                sup = pf.suppressions.match(f.rule_id, f.line)
                if sup is not None:
                    suppressed.append(dataclasses.replace(
                        f, suppression_reason=sup.reason))
                else:
                    findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if baseline is not None:
        new, old = baseline.split(findings)
    else:
        new, old = findings, []
    return CheckResult(new=new, grandfathered=old,
                       suppressed=suppressed,
                       n_files=len(project.files), rules=rules)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the checker's arguments to ``parser`` (shared with cli)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", help="write the report to this file "
                                         "(atomic) instead of stdout")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule IDs to run "
                             "(e.g. KND001,KND004)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def build_arg_parser(prog: str = "kondo check"
                     ) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST invariant linter for the Kondo codebase",
    )
    add_arguments(parser)
    return parser


def _resolve_baseline(args) -> Tuple[Optional[Baseline], Optional[str]]:
    if args.no_baseline:
        return None, None
    path = args.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None)
    if path is None or not os.path.exists(path):
        return None, path
    return Baseline.load(path), path


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "kondo check") -> int:
    return run_from_args(build_arg_parser(prog).parse_args(argv))


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a check described by parsed arguments; returns exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:18s} "
                  f"[{rule.severity.value}]  {rule.summary}")
        return 0
    for p in args.paths:
        if not os.path.exists(p):
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2
    try:
        baseline, baseline_path = _resolve_baseline(args)
    except (ValueError, OSError) as exc:
        print(f"error: bad baseline: {exc}", file=sys.stderr)
        return 2
    select = (args.select.split(",") if args.select else None)
    result = run_check(args.paths, select=select, baseline=baseline)
    if args.write_baseline:
        target = args.baseline or baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(
            result.new + result.grandfathered).save(target)
        print(f"wrote {len(result.new) + len(result.grandfathered)} "
              f"finding(s) to {target}")
        return 0
    if args.format == "text":
        report = render_text(result.new, result.grandfathered,
                             result.n_files)
    elif args.format == "json":
        report = render_json(result.new, result.grandfathered)
    else:
        report = render_sarif(result.new, result.rules)
    if args.output:
        with atomic_write(args.output, "w") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(report)
    return result.exit_code
