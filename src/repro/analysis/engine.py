"""The check runner: load -> summarize -> run rules -> suppress -> report.

The run is two-phase.  **Phase 1** (parallelizable, cacheable) parses
every file and computes its per-file concurrency summary — with
``--jobs N`` this fans out over a process pool, and with the
``.kondo-cache`` enabled unchanged files skip the parse entirely.
**Phase 2** (always sequential, always deterministic) links the
interprocedural context on demand and runs the rules; because phase 1's
results are order-normalized before phase 2 starts, ``--jobs 4`` output
is byte-identical to a sequential run.

Exit codes: 0 clean (every finding suppressed or baselined), 1 when new
findings remain, 2 when the analyzer itself fails (usage errors, an
unreadable baseline, an internal crash).  A *rule* raising is not an
analyzer failure: it becomes a KND000 internal-error finding and the run
continues.  ``kondo check`` and ``python -m repro.analysis`` are two
doors into :func:`main`.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.cache import DEFAULT_CACHE_DIR
from repro.analysis.model import FRAMEWORK_RULE_ID, Finding, Severity
from repro.analysis.project import Project, discover_sources, load_file
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rulebase import Rule, all_rules
from repro.ioutil import atomic_write


@dataclass
class CheckResult:
    """Everything one ``kondo check`` run produced."""

    new: List[Finding]
    grandfathered: List[Finding]
    suppressed: List[Finding]
    n_files: int
    rules: List[Rule] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def _load_project(paths: Sequence[str], jobs: int,
                  cache_dir: Optional[str]) -> Project:
    """Phase 1: parse + summarize every file, optionally in parallel."""
    sources = discover_sources(paths)
    loader = partial(load_file, cache_dir=cache_dir)
    if jobs > 1 and len(sources) > 1:
        from concurrent.futures import ProcessPoolExecutor
        chunk = max(1, len(sources) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # ``map`` preserves input order, so assembly — and therefore
            # every downstream report byte — matches the sequential run.
            results = list(pool.map(loader, sources, chunksize=chunk))
    else:
        results = [loader(p) for p in sources]
    return Project.assemble(results)


def _crash_finding(rule: Rule, path: str, module: str,
                   exc: Exception) -> Finding:
    return Finding(
        rule_id=FRAMEWORK_RULE_ID,
        message=(f"rule {rule.rule_id} ({rule.name}) crashed: "
                 f"{type(exc).__name__}: {exc} — results for this rule "
                 f"may be incomplete"),
        path=path, module=module, line=1,
        severity=Severity.ERROR,
    )


def run_check(paths: Sequence[str],
              select: Optional[Sequence[str]] = None,
              baseline: Optional[Baseline] = None,
              jobs: int = 1,
              cache_dir: Optional[str] = None) -> CheckResult:
    """Run the selected rules over ``paths`` (no reporting/IO)."""
    project = _load_project(paths, jobs=jobs, cache_dir=cache_dir)
    rules = all_rules()
    if select:
        wanted = {s.upper() for s in select}
        rules = [r for r in rules if r.rule_id in wanted]
    findings: List[Finding] = list(project.load_findings)
    suppressed: List[Finding] = []

    def admit(pf, f: Finding) -> None:
        sup = pf.suppressions.match(f.rule_id, f.line)
        if sup is not None:
            suppressed.append(dataclasses.replace(
                f, suppression_reason=sup.reason))
        else:
            findings.append(f)

    for pf in project.files:
        findings.extend(pf.suppressions.malformed_findings(
            pf.path, pf.module, pf.lines))
        for rule in rules:
            try:
                produced = list(rule.check(pf, project))
            # kondo: allow[KND003] a crashing rule is converted into a
            # visible KND000 finding on the file (exit 1), per the
            # exit-code contract; aborting the run would hide every
            # other rule's findings behind one rule bug
            except Exception as exc:  # noqa: BLE001
                findings.append(_crash_finding(rule, pf.path, pf.module,
                                               exc))
                continue
            for f in produced:
                admit(pf, f)
    by_path = {pf.path: pf for pf in project.files}
    for rule in rules:
        try:
            produced = list(rule.check_project(project))
        # kondo: allow[KND003] same contract as the per-file pass: the
        # crash surfaces as a KND000 finding instead of killing the run
        except Exception as exc:  # noqa: BLE001
            findings.append(_crash_finding(rule, "<project>", "<project>",
                                           exc))
            continue
        for f in produced:
            pf = by_path.get(f.path)
            if pf is not None:
                admit(pf, f)
            else:
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if baseline is not None:
        new, old = baseline.split(findings)
    else:
        new, old = findings, []
    return CheckResult(new=new, grandfathered=old,
                       suppressed=suppressed,
                       n_files=len(project.files), rules=rules)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the checker's arguments to ``parser`` (shared with cli)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", help="write the report to this file "
                                         "(atomic) instead of stdout")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule IDs to run "
                             "(e.g. KND001,KND004)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse/summarize files with N worker "
                             "processes (output is byte-identical to "
                             "--jobs 1; default 1)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="per-file analysis cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file analysis cache")


def build_arg_parser(prog: str = "kondo check"
                     ) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST invariant linter for the Kondo codebase",
    )
    add_arguments(parser)
    return parser


def _resolve_baseline(args) -> Tuple[Optional[Baseline], Optional[str]]:
    if args.no_baseline:
        return None, None
    path = args.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None)
    if path is None or not os.path.exists(path):
        return None, path
    return Baseline.load(path), path


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "kondo check") -> int:
    return run_from_args(build_arg_parser(prog).parse_args(argv))


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a check described by parsed arguments; returns exit code.

    The exit-code contract: 0 clean, 1 findings (including a rule crash
    surfaced as KND000), 2 analyzer failure (usage error, bad baseline,
    internal crash).
    """
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name:18s} "
                  f"[{rule.severity.value}]  {rule.summary}")
        return 0
    for p in args.paths:
        if not os.path.exists(p):
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    try:
        baseline, baseline_path = _resolve_baseline(args)
    except (ValueError, OSError) as exc:
        print(f"error: bad baseline: {exc}", file=sys.stderr)
        return 2
    select = (args.select.split(",") if args.select else None)
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        result = run_check(args.paths, select=select, baseline=baseline,
                           jobs=args.jobs, cache_dir=cache_dir)
    # kondo: allow[KND003] the CLI boundary: an internal analyzer crash
    # must exit 2 (distinct from "findings" = 1) with a diagnostic, not
    # a bare traceback — the failure is reported, not swallowed
    except Exception as exc:  # noqa: BLE001
        print(f"error: internal analyzer failure: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = args.baseline or baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(
            result.new + result.grandfathered).save(target)
        print(f"wrote {len(result.new) + len(result.grandfathered)} "
              f"finding(s) to {target}")
        return 0
    if args.format == "text":
        report = render_text(result.new, result.grandfathered,
                             result.n_files)
    elif args.format == "json":
        report = render_json(result.new, result.grandfathered)
    else:
        report = render_sarif(result.new, result.rules)
    if args.output:
        with atomic_write(args.output, "w") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(report)
    return result.exit_code
