"""``python -m repro.analysis`` — same door as ``kondo check``."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main(prog="python -m repro.analysis"))
