"""The pluggable rule protocol and registry.

A rule is a class with a stable ``rule_id``, catalog metadata, and a
``check(pf, project)`` generator yielding findings for one file.  Rules
register themselves with :func:`register` at import time; the engine runs
every registered (and selected) rule over every scanned file.  Adding a
rule is: write the class in ``repro/analysis/rules/``, decorate it,
import the module from ``rules/__init__``, add a fixture-pair test.

Rules can also request **project-level context**:

* ``project.concurrency()`` inside ``check`` hands a rule the
  interprocedural call-graph/lockset context
  (:mod:`repro.analysis.callgraph`), built once per run and shared;
* overriding :meth:`Rule.check_project` lets a rule emit findings that
  belong to the whole project rather than any single file — the engine
  calls it exactly once, after the per-file pass, and still routes the
  findings through inline suppressions and the baseline.

A rule that raises does not abort the run: the engine converts the crash
into a KND000 internal-error finding on the offending file (or project)
and keeps going — the exit-code contract reserves ``2`` for the analyzer
itself failing, not for a rule bug.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile


class Rule:
    """Base class for all checks.  Subclasses set the class attributes."""

    rule_id: str = "KND999"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    #: One-line summary shown by ``--list-rules`` and in SARIF metadata.
    summary: str = ""
    #: Longer rationale (docstring-style), also exported to SARIF.
    rationale: str = ""

    def check(self, pf: ProjectFile, project: Project
              ) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Project-wide findings, emitted once per run (default: none)."""
        return iter(())

    def finding(self, pf: ProjectFile, node, message: str) -> Finding:
        return pf.finding(self.rule_id, message, node,
                          severity=self.severity)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by ID."""
    # The rules package registers on import; import here so callers that
    # reached the registry through the engine need no explicit import.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]
