"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

SARIF output targets the subset GitHub code scanning and most SARIF
viewers consume: one run, driver metadata with the rule catalog, one
result per finding with a physical location.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.analysis.model import Finding
from repro.analysis.rulebase import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "kondo-check"
TOOL_URI = "https://github.com/kondo-repro/kondo"


def render_text(new: List[Finding], grandfathered: List[Finding],
                n_files: int) -> str:
    parts: List[str] = []
    for f in new:
        parts.append(f.format())
        if f.snippet:
            parts.append(f"    {f.snippet}")
        for hop in f.witness:
            parts.append(f"      via {hop}")
    by_sev = Counter(f.severity.value for f in new)
    sev_text = ", ".join(
        f"{by_sev[s]} {s}" for s in ("error", "warning", "note")
        if by_sev.get(s))
    tail = (f"kondo check: {len(new)} finding(s)"
            f"{' (' + sev_text + ')' if sev_text else ''} "
            f"in {n_files} file(s)")
    if grandfathered:
        tail += f"; {len(grandfathered)} baselined finding(s) not shown"
    parts.append(tail)
    return "\n".join(parts)


def render_json(new: List[Finding],
                grandfathered: List[Finding]) -> str:
    def encode(f: Finding) -> dict:
        return {
            "rule": f.rule_id,
            "severity": f.severity.value,
            "path": f.path,
            "module": f.module,
            "line": f.line,
            "col": f.col,
            "message": f.message,
            "snippet": f.snippet,
            "witness": list(f.witness),
            "fingerprint": f.fingerprint(),
        }
    return json.dumps({
        "findings": [encode(f) for f in new],
        "baselined": [encode(f) for f in grandfathered],
    }, indent=2)


def render_sarif(new: List[Finding], rules: Sequence[Rule]) -> str:
    rule_meta = [{
        "id": r.rule_id,
        "name": r.name,
        "shortDescription": {"text": r.summary},
        "fullDescription": {"text": r.rationale.strip() or r.summary},
        "defaultConfiguration": {"level": r.severity.sarif_level},
    } for r in rules]
    results = [{
        "ruleId": f.rule_id,
        "level": f.severity.sarif_level,
        "message": {"text": f.message if not f.witness else
                    f.message + "\nwitness: "
                    + " -> ".join(f.witness)},
        "partialFingerprints": {"kondoFingerprint/v1": f.fingerprint()},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path.replace("\\", "/")},
                "region": {"startLine": f.line, "startColumn": f.col},
            },
        }],
    } for f in new]
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": rule_meta,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)
