"""Content-addressed per-file analysis cache under ``.kondo-cache/``.

Each entry stores one pickled :class:`~repro.analysis.project.ProjectFile`
— parse tree, suppression table, and concurrency summary — keyed by the
SHA-256 of the file's *path and content* plus the cache format version
and the interpreter's major.minor (pickled ASTs are not portable across
Python versions).  Invalidation is automatic by construction: any edit
changes the content hash, so the stale entry is simply never read again.
A second ``kondo check`` over an unchanged tree (CI runs the blocking
pass and the SARIF pass back to back) skips every parse.

Corrupt, truncated, or version-skewed entries are treated as misses —
the cache can be deleted (or disabled with ``--no-cache``) at any time
without changing any result.  Writes go through
:func:`repro.ioutil.atomic_write`, so a crashed run never leaves a torn
entry behind.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from typing import Optional

from repro.ioutil import atomic_write

#: Bump when the pickled payload shape changes (ProjectFile fields,
#: FileConcurrency schema, ...) so stale caches self-invalidate.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".kondo-cache"


def cache_key(path: str, source: str) -> str:
    """Stable entry key for one (path, content) pair."""
    h = hashlib.sha256()
    h.update(f"kondo-cache|{CACHE_VERSION}|py{sys.version_info[0]}."
             f"{sys.version_info[1]}|".encode("utf-8"))
    h.update(path.encode("utf-8", "replace"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "replace"))
    return h.hexdigest()


def _entry_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.pkl")


def load(cache_dir: str, key: str):
    """The cached payload for ``key``, or ``None`` on any kind of miss."""
    try:
        with open(_entry_path(cache_dir, key), "rb") as fh:
            return pickle.load(fh)
    # kondo: allow[KND003] a corrupt/skewed cache entry is not a fault
    # to classify — the contract is "any bad entry is a miss", and the
    # caller falls back to a fresh parse with identical results
    except Exception:  # noqa: BLE001
        return None


def store(cache_dir: str, key: str, payload) -> None:
    """Persist ``payload`` for ``key``; failures never fail the check."""
    try:
        os.makedirs(cache_dir, exist_ok=True)
        with atomic_write(_entry_path(cache_dir, key), "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    except OSError:
        pass  # a read-only or full disk degrades to cacheless operation
