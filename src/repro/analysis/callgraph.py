"""Project-wide call graph and interprocedural lockset/blocking analysis.

The linker resolves the symbolic call records of every
:class:`~repro.analysis.locks.FileConcurrency` against the project's
module table:

* ``self.m()`` / ``cls.m()`` — the lexically enclosing class, then its
  base classes (followed through same-file names and import aliases,
  depth-bounded);
* a bare module-level name — a function or class of the same file
  (a class call resolves to its ``__init__`` when one is defined);
* an import-qualified dotted chain — longest-prefix match against the
  project's modules, then function (``pkg.mod.f``) or method
  (``pkg.mod.Cls.m``) lookup in the matched module.

Anything else stays *unknown* and contributes nothing to any lockset —
the conservative choice documented in :mod:`repro.analysis.locks`.

On the linked graph three effect summaries are propagated to a fixpoint,
each mapping a function to the effects reachable from it with a
**witness chain** (the call path to the primitive, ending at its
``path:line`` site):

* ``may_acquire`` — lock ids possibly acquired by the function or any
  resolved callee;
* ``blocking`` — blocking-operation kinds (``fsync``, ``socket recv``,
  ``sleep``, ``subprocess``, ``journal append``, …) reachable from it;
* ``fork`` — whether ``os.fork``/``forkpty`` is reachable.

Chains are selected by lexicographic minimum over ``(length, hops)``,
which makes the whole fixpoint independent of file and iteration order —
a property the test suite pins with a shuffled-module hypothesis test
(order edges and effect sets must be byte-identical however the project
is enumerated).

Finally the **lock-order graph** is assembled: an edge ``a -> b`` means
some function acquires ``b`` (directly or through any chain of resolved
calls) while holding ``a``.  A cycle in that graph is a potential
deadlock; :meth:`ConcurrencyContext.lock_cycles` enumerates the cycles
with one deterministic witness per edge, and rule KND011 reports them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.locks import (
    CallRec,
    FileConcurrency,
    FuncSummary,
    collect_file,
)

Chain = Tuple[str, ...]

#: How many base-class hops method resolution follows.
MAX_BASE_DEPTH = 8


@dataclass(frozen=True)
class ResolvedCall:
    """One call site whose callee resolved to a project function."""

    callee: str
    rec: CallRec


@dataclass(frozen=True)
class EdgeWitness:
    """Where one lock-order edge ``held -> acquired`` was observed."""

    func: str
    path: str
    lineno: int
    chain: Chain

    def describe(self, held: str, acquired: str) -> str:
        via = f" via {' -> '.join(self.chain)}" if self.chain else ""
        return (f"{self.func} acquires {acquired} while holding {held} "
                f"({self.path}:{self.lineno}{via})")


class CallGraph:
    """Resolved call edges over every function of the project."""

    def __init__(self) -> None:
        self.files: Dict[str, FileConcurrency] = {}   # module -> file
        self.funcs: Dict[str, FuncSummary] = {}       # qualname -> summary
        self.calls: Dict[str, List[ResolvedCall]] = {}
        self.unresolved: Dict[str, int] = {}          # qualname -> count

    @classmethod
    def link(cls, files: Iterable[FileConcurrency]) -> "CallGraph":
        graph = cls()
        for fc in files:
            graph.files[fc.module] = fc
            for fn in fc.functions:
                graph.funcs[fn.qualname] = fn
        for fc in graph.files.values():
            for fn in fc.functions:
                resolved: List[ResolvedCall] = []
                unresolved = 0
                for rec in fn.calls:
                    callee = graph._resolve(fc, fn, rec)
                    if callee is not None:
                        resolved.append(ResolvedCall(callee, rec))
                    else:
                        unresolved += 1
                graph.calls[fn.qualname] = resolved
                graph.unresolved[fn.qualname] = unresolved
        return graph

    # -- resolution ----------------------------------------------------------

    def _resolve(self, fc: FileConcurrency, fn: FuncSummary,
                 rec: CallRec) -> Optional[str]:
        if rec.kind in ("self", "cls"):
            if fn.cls is None:
                return None
            return self._resolve_method(fc, fn.cls, rec.target,
                                        depth=MAX_BASE_DEPTH)
        if rec.kind == "local":
            if rec.target in fc.module_defs:
                return f"{fc.module}:{rec.target}"
            if rec.target in fc.classes:
                return self._resolve_method(fc, rec.target, "__init__",
                                            depth=MAX_BASE_DEPTH)
            return None
        if rec.kind == "qual":
            return self._resolve_qualified(rec.target)
        return None

    def _resolve_method(self, fc: FileConcurrency, cls: str, method: str,
                        depth: int) -> Optional[str]:
        if depth <= 0 or cls not in fc.classes:
            return None
        if method in fc.classes[cls]:
            return f"{fc.module}:{cls}.{method}"
        for base in fc.class_bases.get(cls, ()):
            located = self._locate_class(fc, base)
            if located is None:
                continue
            base_fc, base_cls = located
            hit = self._resolve_method(base_fc, base_cls, method, depth - 1)
            if hit is not None:
                return hit
        return None

    def _locate_class(self, fc: FileConcurrency, dotted: str
                      ) -> Optional[Tuple[FileConcurrency, str]]:
        """Find the file defining ``dotted`` as seen from ``fc``."""
        if dotted in fc.classes:
            return fc, dotted
        head = dotted.split(".", 1)[0]
        target = fc.aliases.get(head)
        if target is None:
            return None
        full = target + dotted[len(head):]
        module, rest = self._split_module(full)
        if module is None or len(rest) != 1:
            return None
        target_fc = self.files[module]
        if rest[0] in target_fc.classes:
            return target_fc, rest[0]
        return None

    def _resolve_qualified(self, dotted: str) -> Optional[str]:
        module, rest = self._split_module(dotted)
        if module is None:
            return None
        fc = self.files[module]
        if len(rest) == 1:
            if rest[0] in fc.module_defs:
                return f"{module}:{rest[0]}"
            if rest[0] in fc.classes:
                return self._resolve_method(fc, rest[0], "__init__",
                                            depth=MAX_BASE_DEPTH)
            return None
        if len(rest) == 2 and rest[0] in fc.classes:
            return self._resolve_method(fc, rest[0], rest[1],
                                        depth=MAX_BASE_DEPTH)
        return None

    def _split_module(self, dotted: str
                      ) -> Tuple[Optional[str], List[str]]:
        """Longest project-module prefix of ``dotted`` plus the rest."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.files:
                return module, parts[cut:]
        return None, parts


def _better(cand: Chain, cur: Optional[Chain]) -> bool:
    return cur is None or (len(cand), cand) < (len(cur), cur)


class ConcurrencyContext:
    """Linked graph + fixpoint effect summaries + the lock-order graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: func -> lock id -> witness chain to its acquisition site.
        self.may_acquire: Dict[str, Dict[str, Chain]] = {}
        #: func -> blocking kind -> witness chain to the primitive.
        self.blocking: Dict[str, Dict[str, Chain]] = {}
        #: func -> witness chain to a reachable fork, if any.
        self.fork: Dict[str, Optional[Chain]] = {}
        #: (held, acquired) -> deterministic witness.
        self.lock_edges: Dict[Tuple[str, str], EdgeWitness] = {}
        self._by_path: Dict[str, List[FuncSummary]] = {}
        for fn in graph.funcs.values():
            self._by_path.setdefault(fn.path, []).append(fn)
        self._seed()
        self._fixpoint()
        self._build_lock_edges()

    # -- construction --------------------------------------------------------

    def _seed(self) -> None:
        for q, fn in self.graph.funcs.items():
            may: Dict[str, Chain] = {}
            for a in fn.acquires:
                cand: Chain = (f"{fn.path}:{a.lineno}",)
                if _better(cand, may.get(a.lock_id)):
                    may[a.lock_id] = cand
            blocking: Dict[str, Chain] = {}
            for b in fn.blocking:
                cand = (f"{b.call}() at {fn.path}:{b.lineno}",)
                if _better(cand, blocking.get(b.op)):
                    blocking[b.op] = cand
            fork: Optional[Chain] = None
            for f in fn.forks:
                cand = (f"{f.call}() at {fn.path}:{f.lineno}",)
                if _better(cand, fork):
                    fork = cand
            self.may_acquire[q] = may
            self.blocking[q] = blocking
            self.fork[q] = fork

    def _fixpoint(self) -> None:
        """Propagate effects caller-ward until chains stop improving.

        Every update replaces a chain with a strictly smaller
        ``(length, hops)`` key, and keys are bounded below, so the loop
        terminates; because only the *minimum* survives, the result is
        independent of module and iteration order.
        """
        changed = True
        while changed:
            changed = False
            for q in sorted(self.graph.funcs):
                for call in self.graph.calls.get(q, ()):  # pragma: no branch
                    g = call.callee
                    if g not in self.graph.funcs:
                        continue
                    for lock, chain in self.may_acquire[g].items():
                        cand = (g,) + chain
                        if _better(cand, self.may_acquire[q].get(lock)):
                            self.may_acquire[q][lock] = cand
                            changed = True
                    for kind, chain in self.blocking[g].items():
                        cand = (g,) + chain
                        if _better(cand, self.blocking[q].get(kind)):
                            self.blocking[q][kind] = cand
                            changed = True
                    if self.fork[g] is not None:
                        cand = (g,) + self.fork[g]
                        if _better(cand, self.fork[q]):
                            self.fork[q] = cand
                            changed = True

    def _build_lock_edges(self) -> None:
        def offer(held: str, acquired: str, witness: EdgeWitness) -> None:
            if held == acquired:
                return  # re-entry on one identity is not an order edge
            key = (held, acquired)
            cur = self.lock_edges.get(key)
            cand_rank = (witness.path, witness.lineno, witness.chain)
            if cur is None or cand_rank < (cur.path, cur.lineno, cur.chain):
                self.lock_edges[key] = witness

        for q, fn in self.graph.funcs.items():
            for a in fn.acquires:
                for held in a.held:
                    offer(held, a.lock_id, EdgeWitness(
                        func=q, path=fn.path, lineno=a.lineno, chain=()))
            for call in self.graph.calls.get(q, ()):
                if not call.rec.held or call.callee not in self.graph.funcs:
                    continue
                for lock, chain in self.may_acquire[call.callee].items():
                    for held in call.rec.held:
                        offer(held, lock, EdgeWitness(
                            func=q, path=fn.path, lineno=call.rec.lineno,
                            chain=(call.callee,) + chain))

    # -- queries -------------------------------------------------------------

    def functions_in(self, path: str) -> List[FuncSummary]:
        return self._by_path.get(path, [])

    def resolved_calls(self, qualname: str) -> List[ResolvedCall]:
        return self.graph.calls.get(qualname, [])

    def lock_cycles(self) -> List[List[str]]:
        """Cycles in the lock-order graph, canonicalized and deduped.

        Each cycle is returned as ``[a, b, ..., a]`` rotated so the
        lexicographically smallest lock comes first.
        """
        adj: Dict[str, Set[str]] = {}
        for a, b in self.lock_edges:
            adj.setdefault(a, set()).add(b)
        cycles: List[List[str]] = []
        seen_keys: Set[Tuple[str, ...]] = set()
        visited: Set[str] = set()
        stack: List[str] = []
        on_stack: Set[str] = set()

        def canonical(cycle: List[str]) -> Tuple[str, ...]:
            body = cycle[:-1]
            pivot = body.index(min(body))
            return tuple(body[pivot:] + body[:pivot])

        def dfs(node: str) -> None:
            visited.add(node)
            stack.append(node)
            on_stack.add(node)
            for nxt in sorted(adj.get(node, ())):
                if nxt not in visited:
                    dfs(nxt)
                elif nxt in on_stack:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    key = canonical(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        rotated = list(key) + [key[0]]
                        cycles.append(rotated)
            stack.pop()
            on_stack.remove(node)

        for node in sorted(adj):
            if node not in visited:
                dfs(node)
        return cycles

    def edge_witness(self, held: str, acquired: str
                     ) -> Optional[EdgeWitness]:
        return self.lock_edges.get((held, acquired))


def build_context(files: Sequence) -> ConcurrencyContext:
    """Build the concurrency context for a list of project files.

    Accepts :class:`~repro.analysis.project.ProjectFile` objects; uses
    each file's precomputed ``summary`` (set by the parallel load phase
    or restored from the cache) and falls back to collecting one here.
    """
    summaries: List[FileConcurrency] = []
    for pf in files:
        summary = getattr(pf, "summary", None)
        if summary is None:
            summary = collect_file(pf.path, pf.module, pf.tree)
            pf.summary = summary
        summaries.append(summary)
    return ConcurrencyContext(CallGraph.link(summaries))


def build_context_from_trees(
        entries: Sequence[Tuple[str, str, "ast.Module"]],
) -> ConcurrencyContext:
    """Context straight from ``(path, module, tree)`` triples (tests)."""
    return ConcurrencyContext(CallGraph.link(
        [collect_file(p, m, t) for p, m, t in entries]))
