"""``kondo check`` — a from-scratch, pluggable AST invariant linter.

Kondo's correctness properties — bit-identical campaign replay, never a
torn artifact, failures surfacing through the error taxonomy, a layered
import DAG — are *whole-program dataflow properties* the test suite can
only sample.  This package enforces them statically: a project loader
and import-graph builder, per-file AST visitors with alias resolution,
a finding model with stable rule IDs, inline suppressions
(``# kondo: allow[KND00X] reason``), a committed baseline for
grandfathered findings, and text/JSON/SARIF reporters.

On top of the per-file rules sits a **project-wide concurrency
analysis**: per-function lockset/blocking/fork summaries
(:mod:`repro.analysis.locks`), a name-resolution call graph with
interprocedural fixpoints and a global lock-order graph
(:mod:`repro.analysis.callgraph`), and the flow-aware rules
KND011 (lock-order cycles), KND012 (blocking under a lock), and
KND013 (fork safety).  The run is two-phase — per-file summaries,
optionally parallel (``--jobs N``) and content-cached
(``.kondo-cache/``), then deterministic linking and rule execution —
so parallel runs are byte-identical to sequential ones.

Run it as ``kondo check src/repro`` or ``python -m repro.analysis``;
the rule catalog lives in :mod:`repro.analysis.rules`.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, ConcurrencyContext
from repro.analysis.engine import CheckResult, main, run_check
from repro.analysis.imports import ImportEdge, ImportGraph
from repro.analysis.locks import FileConcurrency, FuncSummary
from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, all_rules, register

__all__ = [
    "Baseline",
    "CallGraph",
    "CheckResult",
    "ConcurrencyContext",
    "FileConcurrency",
    "Finding",
    "FuncSummary",
    "ImportEdge",
    "ImportGraph",
    "Project",
    "ProjectFile",
    "Rule",
    "Severity",
    "all_rules",
    "main",
    "register",
    "run_check",
]
