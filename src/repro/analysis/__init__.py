"""``kondo check`` — a from-scratch, pluggable AST invariant linter.

Kondo's correctness properties — bit-identical campaign replay, never a
torn artifact, failures surfacing through the error taxonomy, a layered
import DAG — are *whole-program dataflow properties* the test suite can
only sample.  This package enforces them statically: a project loader
and import-graph builder, per-file AST visitors with alias resolution,
a finding model with stable rule IDs, inline suppressions
(``# kondo: allow[KND00X] reason``), a committed baseline for
grandfathered findings, and text/JSON/SARIF reporters.

Run it as ``kondo check src/repro`` or ``python -m repro.analysis``;
the rule catalog lives in :mod:`repro.analysis.rules`.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.engine import CheckResult, main, run_check
from repro.analysis.imports import ImportEdge, ImportGraph
from repro.analysis.model import Finding, Severity
from repro.analysis.project import Project, ProjectFile
from repro.analysis.rulebase import Rule, all_rules, register

__all__ = [
    "Baseline",
    "CheckResult",
    "Finding",
    "ImportEdge",
    "ImportGraph",
    "Project",
    "ProjectFile",
    "Rule",
    "Severity",
    "all_rules",
    "main",
    "register",
    "run_check",
]
