"""Project loading: discover sources, parse ASTs, infer module names.

The scanner is path-based, not import-based: it never imports the code it
checks.  Module names are inferred structurally — from a file, walk up
through every directory that contains an ``__init__.py``; the dotted path
from the topmost package directory is the module name.  That makes the
same loader work for ``src/repro`` and for the throwaway fixture trees
the test suite builds under ``tmp_path``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.model import FRAMEWORK_RULE_ID, Finding, Severity
from repro.analysis.suppress import SuppressionTable


def infer_module(path: str) -> str:
    """Dotted module name for ``path`` (see module docstring)."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        d = os.path.dirname(d)
    if parts[0] == "__init__":
        parts = parts[1:] or [os.path.basename(os.path.dirname(path))]
    return ".".join(reversed(parts))


@dataclass
class ProjectFile:
    """One parsed source file."""

    path: str            # as discovered (relative paths stay relative)
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: Optional[SuppressionTable] = None
    #: child AST node -> parent, filled lazily by :meth:`parents`.
    _parents: Optional[Dict[int, ast.AST]] = None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parents(self) -> Dict[int, ast.AST]:
        """``id(node) -> parent`` map over the whole tree."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[id(child)] = node
        return self._parents

    def finding(self, rule_id: str, message: str, node: ast.AST,
                severity: Severity = Severity.ERROR) -> Finding:
        """Build a finding anchored at ``node`` in this file."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=rule_id, message=message, path=self.path,
            module=self.module, line=lineno, col=col,
            severity=severity, snippet=self.line(lineno),
        )


@dataclass
class Project:
    """Every parsed file plus the findings produced while loading."""

    files: List[ProjectFile]
    load_findings: List[Finding]

    @property
    def modules(self) -> Dict[str, ProjectFile]:
        return {pf.module: pf for pf in self.files}

    @classmethod
    def load(cls, paths: Sequence[str]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or dirs)."""
        sources: List[str] = []
        for p in paths:
            if os.path.isdir(p):
                for root, dirs, names in os.walk(p):
                    dirs[:] = sorted(
                        d for d in dirs
                        if d != "__pycache__" and not d.startswith(".")
                    )
                    sources.extend(
                        os.path.join(root, n)
                        for n in sorted(names) if n.endswith(".py")
                    )
            elif p.endswith(".py"):
                sources.append(p)
        files: List[ProjectFile] = []
        load_findings: List[Finding] = []
        for path in sources:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            module = infer_module(path)
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                load_findings.append(Finding(
                    rule_id=FRAMEWORK_RULE_ID,
                    message=f"could not parse: {exc.msg}",
                    path=path, module=module,
                    line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                    severity=Severity.ERROR,
                ))
                continue
            lines = source.splitlines()
            pf = ProjectFile(path=path, module=module, source=source,
                             tree=tree, lines=lines)
            pf.suppressions = SuppressionTable.scan(lines)
            files.append(pf)
        return cls(files=files, load_findings=load_findings)
