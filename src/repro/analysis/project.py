"""Project loading: discover sources, parse ASTs, infer module names.

The scanner is path-based, not import-based: it never imports the code it
checks.  Module names are inferred structurally — from a file, walk up
through every directory that contains an ``__init__.py``; the dotted path
from the topmost package directory is the module name.  That makes the
same loader work for ``src/repro`` and for the throwaway fixture trees
the test suite builds under ``tmp_path``.

Loading is split into picklable top-level pieces —
:func:`discover_sources` and :func:`load_file` — so the engine's
``--jobs`` process pool can parse and summarize files in parallel, and
so the content-addressed ``.kondo-cache`` can persist one file's parse
(:mod:`repro.analysis.cache`) independently of the rest of the project.
``load_file`` also precomputes the file's concurrency summary
(:func:`repro.analysis.locks.collect_file`): it rides along in the
pickle, which is what makes the two-phase run — summaries in workers,
interprocedural analysis and rules in the parent — add up.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.analysis.model import FRAMEWORK_RULE_ID, Finding, Severity
from repro.analysis.suppress import SuppressionTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.callgraph import ConcurrencyContext
    from repro.analysis.locks import FileConcurrency


def infer_module(path: str) -> str:
    """Dotted module name for ``path`` (see module docstring)."""
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while os.path.isfile(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        d = os.path.dirname(d)
    if parts[0] == "__init__":
        parts = parts[1:] or [os.path.basename(os.path.dirname(path))]
    return ".".join(reversed(parts))


@dataclass
class ProjectFile:
    """One parsed source file."""

    path: str            # as discovered (relative paths stay relative)
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: Optional[SuppressionTable] = None
    #: Concurrency summary, precomputed by :func:`load_file` (and thus
    #: by pool workers / the cache); ``build_context`` fills it lazily
    #: for files constructed some other way.
    summary: Optional["FileConcurrency"] = None
    #: child AST node -> parent, filled lazily by :meth:`parents`.
    _parents: Optional[Dict[int, ast.AST]] = None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parents(self) -> Dict[int, ast.AST]:
        """``id(node) -> parent`` map over the whole tree."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[id(child)] = node
        return self._parents

    def finding(self, rule_id: str, message: str, node: ast.AST,
                severity: Severity = Severity.ERROR) -> Finding:
        """Build a finding anchored at ``node`` in this file."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=rule_id, message=message, path=self.path,
            module=self.module, line=lineno, col=col,
            severity=severity, snippet=self.line(lineno),
        )


def discover_sources(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files or dirs), sorted walk."""
    sources: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                sources.extend(
                    os.path.join(root, n)
                    for n in sorted(names) if n.endswith(".py")
                )
        elif p.endswith(".py"):
            sources.append(p)
    return sources


def load_file(path: str,
              cache_dir: Optional[str] = None
              ) -> Union[ProjectFile, Finding]:
    """Parse (or cache-restore) one source file.

    Returns the parsed :class:`ProjectFile` — suppression table and
    concurrency summary included — or a KND000 :class:`Finding` when the
    file does not parse.  Top-level and argument-picklable on purpose:
    this is the unit of work the ``--jobs`` process pool ships around.
    """
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    if cache_dir is not None:
        from repro.analysis import cache
        key = cache.cache_key(path, source)
        hit = cache.load(cache_dir, key)
        if hit is not None:
            return hit
    module = infer_module(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            rule_id=FRAMEWORK_RULE_ID,
            message=f"could not parse: {exc.msg}",
            path=path, module=module,
            line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            severity=Severity.ERROR,
        )
    from repro.analysis.locks import collect_file
    lines = source.splitlines()
    pf = ProjectFile(path=path, module=module, source=source,
                     tree=tree, lines=lines)
    pf.suppressions = SuppressionTable.scan(lines)
    pf.summary = collect_file(path, module, tree)
    if cache_dir is not None:
        from repro.analysis import cache
        cache.store(cache_dir, key, pf)
    return pf


@dataclass
class Project:
    """Every parsed file plus the findings produced while loading."""

    files: List[ProjectFile]
    load_findings: List[Finding]
    _concurrency: Optional["ConcurrencyContext"] = None

    @property
    def modules(self) -> Dict[str, ProjectFile]:
        return {pf.module: pf for pf in self.files}

    def concurrency(self) -> "ConcurrencyContext":
        """The interprocedural call-graph/lockset context, built once.

        Rules that need whole-program flow (KND011–KND013) call this;
        per-file rules never pay for it.
        """
        if self._concurrency is None:
            from repro.analysis.callgraph import build_context
            self._concurrency = build_context(self.files)
        return self._concurrency

    @classmethod
    def assemble(cls, results: Sequence[Union[ProjectFile, Finding]]
                 ) -> "Project":
        """Fold per-file load results (in input order) into a project."""
        files: List[ProjectFile] = []
        load_findings: List[Finding] = []
        for item in results:
            if isinstance(item, Finding):
                load_findings.append(item)
            else:
                files.append(item)
        return cls(files=files, load_findings=load_findings)

    @classmethod
    def load(cls, paths: Sequence[str],
             cache_dir: Optional[str] = None) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or dirs)."""
        return cls.assemble([load_file(p, cache_dir=cache_dir)
                             for p in discover_sources(paths)])
