"""Committed baseline of grandfathered findings.

The baseline is a JSON file mapping finding fingerprints (see
:meth:`~repro.analysis.model.Finding.fingerprint`) to an occurrence
count plus human-readable context.  ``kondo check`` subtracts baselined
occurrences before failing, so a legacy hazard can be burned down
incrementally while any *new* occurrence of the same hazard still fails
the build.  Fingerprints hash the offending source line, not its line
number, so unrelated edits don't churn the file.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.model import Finding
from repro.ioutil import atomic_write

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".kondo-baseline.json"


@dataclass
class Baseline:
    """Fingerprint -> allowed occurrence count (+ context for humans)."""

    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')}"
            )
        return cls(entries=dict(data.get("findings", {})))

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[str, dict] = {}
        for f in findings:
            fp = f.fingerprint()
            if fp in entries:
                entries[fp]["count"] += 1
            else:
                entries[fp] = {
                    "rule": f.rule_id,
                    "module": f.module,
                    "snippet": f.snippet,
                    "count": 1,
                }
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {"version": BASELINE_VERSION,
                   "findings": dict(sorted(self.entries.items()))}
        with atomic_write(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")

    def split(self, findings: List[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, grandfathered) against this baseline."""
        budget = Counter(
            {fp: e.get("count", 1) for fp, e in self.entries.items()})
        fresh: List[Finding] = []
        old: List[Finding] = []
        for f in findings:
            fp = f.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                old.append(f)
            else:
                fresh.append(f)
        return fresh, old

    def rules_present(self) -> Counter:
        """Rule ID -> number of grandfathered occurrences."""
        counts: Counter = Counter()
        for entry in self.entries.values():
            counts[entry.get("rule", "?")] += entry.get("count", 1)
        return counts
