"""The finding model: what a rule reports and how it is identified.

A :class:`Finding` is one violation at one source location.  Its
*fingerprint* deliberately ignores line numbers — it hashes the rule ID,
the module, and the stripped source line — so a committed baseline keeps
matching after unrelated edits shift code up or down, while any change to
the offending line itself surfaces the finding again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class Severity(Enum):
    """How bad a finding is; orders ``NOTE < WARNING < ERROR``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"note": 0, "warning": 1, "error": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        return {"note": "note", "warning": "warning",
                "error": "error"}[self.value]


#: Rule ID reserved for framework diagnostics (parse failures, malformed
#: suppression comments) rather than invariant violations.
FRAMEWORK_RULE_ID = "KND000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: stable rule identifier, e.g. ``"KND002"``.
        message: human-oriented description of this occurrence.
        path: file path as given to the scanner (kept relative when the
            scan root was relative, so reports are machine-portable).
        module: dotted module name, e.g. ``"repro.arraymodel.bundle"``.
        line: 1-based source line.
        col: 1-based source column.
        severity: :class:`Severity` of the rule (rules may override
            per-finding).
        snippet: the stripped source line, used for fingerprinting and
            human context in reports.
        witness: optional interprocedural evidence chain (call hops and
            ``path:line`` sites) attached by the flow-aware concurrency
            rules; purely informational — never part of the fingerprint,
            so a refactor that reroutes the chain does not churn the
            baseline.
    """

    rule_id: str
    message: str
    path: str
    module: str
    line: int
    col: int = 1
    severity: Severity = Severity.ERROR
    snippet: str = ""
    suppression_reason: Optional[str] = field(default=None, compare=False)
    witness: Tuple[str, ...] = field(default=(), compare=False)

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        raw = f"{self.rule_id}|{self.module}|{self.snippet}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col} "
                f"{self.rule_id} {self.severity.value}: {self.message}")
