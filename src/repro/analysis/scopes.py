"""Alias and scope resolution shared by the AST rules.

Two facilities:

* :class:`AliasTable` — maps local names to the qualified module paths
  they were imported as (``np`` → ``numpy``, ``perf_counter`` →
  ``time.perf_counter``), and resolves dotted call chains against that
  table.  Resolution only succeeds when the chain is rooted at a known
  import, which keeps rules from mistaking a local variable that happens
  to be called ``random`` for the stdlib module.
* module-global classification — which module-level names are *mutable*
  state (for the executor-purity rule): reassigned names and
  list/dict/set-valued bindings, excluding constants (``UPPER_CASE``),
  functions, classes, and imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class AliasTable:
    """Import aliases of one file (module-level and nested, flattened)."""

    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def scan(cls, tree: ast.Module) -> "AliasTable":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    name = a.asname or a.name.split(".")[0]
                    target = a.name if a.asname else a.name.split(".")[0]
                    table.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    if a.name == "*":
                        continue
                    name = a.asname or a.name
                    table.aliases[name] = f"{node.module}.{a.name}"
        return table

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Qualified dotted name of an expression, or None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` was imported as numpy;
        chains rooted at plain variables resolve to nothing.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or node.id not in self.aliases:
            return None
        parts.append(self.aliases[node.id])
        return ".".join(reversed(parts))


def mutable_module_globals(tree: ast.Module) -> Set[str]:
    """Module-level names that hold mutable, reassignable state."""
    assigned: Dict[str, int] = {}
    mutable: Set[str] = set()
    immutable_kinds: Set[str] = set()
    MUTABLE_VALUES = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                      ast.DictComp, ast.SetComp)
    MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict",
                     "Counter", "OrderedDict", "bytearray"}

    def record(target: ast.AST, value: Optional[ast.AST]) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        assigned[name] = assigned.get(name, 0) + 1
        if value is None:
            return
        if isinstance(value, MUTABLE_VALUES):
            mutable.add(name)
        elif isinstance(value, ast.Call):
            fn = value.func
            called = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else "")
            if called in MUTABLE_CALLS:
                mutable.add(name)

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                record(t, node.value)
        elif isinstance(node, ast.AnnAssign):
            record(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            record(node.target, None)
            if isinstance(node.target, ast.Name):
                mutable.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            immutable_kinds.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for a in node.names:
                immutable_kinds.add(
                    (a.asname or a.name).split(".")[0])
    reassigned = {n for n, count in assigned.items() if count > 1}
    out = (mutable | reassigned) - immutable_kinds
    return {n for n in out if not n.isupper()}


def function_locals(fn: ast.AST) -> Set[str]:
    """Names bound inside a function/lambda (params + assignments)."""
    bound: Set[str] = set()
    args = fn.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs
              + ([args.vararg] if args.vararg else [])
              + ([args.kwarg] if args.kwarg else [])):
        bound.add(a.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for a in node.names:
                    bound.add((a.asname or a.name).split(".")[0])
    return bound


def free_name_loads(fn: ast.AST) -> List[ast.Name]:
    """Name loads in a function body that are not locally bound."""
    bound = function_locals(fn)
    out: List[ast.Name] = []
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in bound):
                out.append(node)
    return out
