"""The ``kondo`` command-line interface.

Subcommands:

* ``kondo programs`` — list the benchmark/real-application programs.
* ``kondo analyze`` — run the fuzz+carve pipeline for a program, print the
  analysis summary (and optionally precision/recall vs ground truth).
* ``kondo debloat`` — analyze and write a debloated ``.knds`` subset of a
  ``.knd`` data file.
* ``kondo make-data`` — create a KND data file for experimentation.
* ``kondo run`` — execute a program against a ``.knd``/``.knds`` file and
  report hit/miss statistics (the user-side runtime).
* ``kondo experiment`` — regenerate a paper table/figure by name (or
  ``all`` for the complete evaluation).
* ``kondo visualize`` — ASCII overlay of a carved subset vs ground truth.
* ``kondo chaos`` — fault-injection drills: verify the pipeline survives
  flaky fetchers, killed workers, mid-campaign crashes, corrupted
  artifacts, hung runs, and leaky runs without changing its output
  (exit code = number of failed drills; ``--list`` names them).
* ``kondo check`` — static AST invariant linter: replay determinism,
  atomic writes, error taxonomy, layering, executor purity, resource
  hygiene, durable writes, bounded waits, vectorized audit hot paths,
  bounded service-layer queue/socket operations, plus the
  interprocedural concurrency rules — lock-order cycles, blocking
  under a lock, fork safety — shard-merge determinism, and fenced
  fleet-store writes (rules
  KND001–KND015; see ``kondo check --list-rules``).  Parallel parse
  with ``--jobs N`` and an automatic
  content-addressed cache under ``.kondo-cache/``; exits 0 clean, 1 on
  findings, 2 on analyzer failure.
* ``kondo fsck`` — deep-verify a KND/KNDS file: header envelope,
  every payload span, extent-directory consistency, journal state.
  Exit 0 clean / 1 localized span damage / 2 structural damage.
* ``kondo repair`` — re-fetch only the corrupt spans of a bundle from
  its origin file, committed through the durability journal.
* ``kondo rollback`` — restore a prior journal generation of a bundle
  (as a new generation, so history stays append-only).
* ``kondo serve`` — run the campaign-orchestrator daemon: a durable
  job queue over a unix socket, worker leases with heartbeats, retry
  budgets with dead-lettering, sharded campaigns with lost-shard
  recovery and straggler hedging (``--hedge-after``), and graceful
  drain on SIGTERM.
* ``kondo submit`` / ``kondo status`` / ``kondo cancel`` /
  ``kondo drain`` — client commands against a running ``kondo serve``
  (``submit --shards N`` shards a campaign; ``status --follow``
  streams its progress events live).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile, KondoRuntime
from repro.core import Kondo
from repro.errors import KondoError
from repro.fuzzing import FuzzConfig
from repro.perf.config import PerfConfig
from repro.metrics import accuracy
from repro.workloads import default_dims, get_program, program_names


def _parse_dims(text: Optional[str], program) -> tuple:
    if not text:
        return default_dims(program)
    dims = tuple(int(x) for x in text.split("x"))
    return dims


def cmd_programs(_args) -> int:
    for name in program_names():
        prog = get_program(name)
        print(f"{name:8s} {prog.ndim}D  {prog.description}")
    return 0


def cmd_analyze(args) -> int:
    program = get_program(args.program)
    if args.audit_data:
        with ArrayFile.open(args.audit_data) as f:
            data_dims = f.schema.dims
        dims = _parse_dims(args.dims, program) if args.dims else data_dims
        if tuple(dims) != tuple(data_dims):
            print(f"error: --dims {tuple(dims)} != --audit-data file dims "
                  f"{tuple(data_dims)}", file=sys.stderr)
            return 1
    else:
        dims = _parse_dims(args.dims, program)
    perf = PerfConfig(workers=args.workers) if args.workers else None
    supervised = (args.run_timeout is not None
                  or args.run_memory is not None)
    resilience = None
    if args.checkpoint or supervised:
        from repro.resilience.config import ResilienceConfig

        resilience = ResilienceConfig(
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            run_timeout_s=args.run_timeout,
            run_memory_mb=args.run_memory,
            # A supervised kill should quarantine the run and keep the
            # campaign going — that is the point of supervising.
            quarantine=supervised,
        )
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 1
    kondo = Kondo(
        program, dims,
        fuzz_config=FuzzConfig(rng_seed=args.seed),
        carver=args.carver,
        perf=perf,
        resilience=resilience,
        audit_capture=args.audit_capture,
    )
    test = None
    if args.audit_data:
        test = kondo.make_test(mode="audited", data_path=args.audit_data)
    result = kondo.analyze(
        time_budget_s=args.budget,
        test=test,
        resume_from=args.checkpoint if args.resume else None,
    )
    print(result.summary())
    if result.fuzz.quarantined:
        for q in result.fuzz.quarantined:
            label = q.verdict or "EXCEPTION"
            print(f"quarantined [{label}] iteration {q.iteration}: {q.error}")
    if args.save:
        from repro.core.persistence import AnalysisArtifact

        AnalysisArtifact.from_result(result).save(args.save)
        print(f"saved analysis artifact to {args.save}")
    if args.score:
        acc = accuracy(program.ground_truth_flat(dims), result.carved_flat)
        print(
            f"vs ground truth: precision={acc.precision:.3f} "
            f"recall={acc.recall:.3f}"
        )
    return 0


def cmd_debloat(args) -> int:
    program = get_program(args.program)
    with ArrayFile.open(args.data) as f:
        dims = f.schema.dims
        original = f.file_nbytes
    if args.analysis:
        from repro.core.persistence import AnalysisArtifact

        artifact = AnalysisArtifact.load(args.analysis)
        subset = artifact.debloat_file(args.data, args.out,
                                       granularity=args.granularity)
        print(f"debloated from saved analysis {args.analysis} "
              f"({artifact.iterations} tests, {artifact.n_hulls} hulls)")
    else:
        kondo = Kondo(program, dims,
                      fuzz_config=FuzzConfig(rng_seed=args.seed))
        result = kondo.analyze(time_budget_s=args.budget)
        subset = kondo.debloat_file(args.data, args.out, result,
                                    granularity=args.granularity)
        print(result.summary())
    print(
        f"wrote {args.out}: {subset.file_nbytes} bytes "
        f"({100 * (1 - subset.file_nbytes / original):.1f}% smaller than "
        f"{original} bytes)"
    )
    subset.close()
    return 0


def cmd_make_data(args) -> int:
    dims = tuple(int(x) for x in args.dims.split("x"))
    rng = np.random.default_rng(args.seed)
    data = rng.standard_normal(dims)
    chunks = (
        tuple(int(x) for x in args.chunks.split("x")) if args.chunks else None
    )
    f = ArrayFile.create(
        args.out, ArraySchema(dims, args.dtype, chunks=chunks), data
    )
    print(f"wrote {args.out}: dims={dims} dtype={args.dtype} "
          f"({f.file_nbytes} bytes)")
    f.close()
    return 0


def cmd_run(args) -> int:
    program = get_program(args.program)
    v = tuple(float(x) for x in args.value.split(","))
    if args.data.endswith("knds"):
        subset = DebloatedArrayFile.open(args.data)
        runtime = KondoRuntime(subset)
        stats = runtime.run_program(program, v, subset.schema.dims)
        subset.close()
        print(
            f"{program.name}{v}: {stats.reads} reads, {stats.hits} hits, "
            f"{stats.misses} data-missing"
        )
        return 0 if stats.misses == 0 else 2
    with ArrayFile.open(args.data) as f:
        reads = program.run(lambda idx: f.read_point(idx), v, f.schema.dims)
    print(f"{program.name}{v}: {reads} reads, all served")
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments.runall import experiment_runners, run_all

    runners = experiment_runners()
    if args.name == "all":
        result = run_all()
        print(result.format())
        return 0 if not result.failed else 1
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(runners) + ['all']}", file=sys.stderr)
        return 1
    print(runners[args.name]().format())
    return 0


def cmd_visualize(args) -> int:
    from repro.metrics import accuracy as _accuracy
    from repro.viz import render_comparison

    program = get_program(args.program)
    if program.ndim != 2:
        print("error: visualize supports 2-D programs only", file=sys.stderr)
        return 1
    dims = _parse_dims(args.dims, program)
    kondo = Kondo(program, dims, fuzz_config=FuzzConfig(rng_seed=args.seed))
    result = kondo.analyze(time_budget_s=args.budget)
    truth = program.ground_truth_flat(dims)
    acc = _accuracy(truth, result.carved_flat)
    print(f"{program.name}: precision={acc.precision:.3f} "
          f"recall={acc.recall:.3f} hulls={result.carve.n_hulls}")
    print(render_comparison(truth, result.carved_flat, dims,
                            width=args.width))
    return 0


def cmd_check(args) -> int:
    from repro.analysis.engine import run_from_args

    return run_from_args(args)


def cmd_fsck(args) -> int:
    import json as _json

    from repro.resilience.durability import fsck_file

    report = fsck_file(args.path, check_journal=not args.no_journal)
    if args.json:
        print(_json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return report.exit_code


def cmd_repair(args) -> int:
    import json as _json

    from repro.resilience.durability import repair_bundle

    report = repair_bundle(
        args.path, source_path=args.source,
        keep_generations=args.keep_generations,
    )
    if args.json:
        print(_json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.clean_after else 1


def cmd_rollback(args) -> int:
    from repro.resilience.durability import BundleJournal

    journal = BundleJournal.open(args.path)
    if args.list:
        current = journal.current_generation
        for gen in journal.generations():
            rec = journal.committed_record(gen) or {}
            mark = "*" if gen == current else " "
            print(f"{mark} gen {gen}  action={rec.get('action', '?')}"
                  + (f"  restored gen {rec['rolled_back_to']}"
                     if rec.get("rolled_back_to") is not None else ""))
        return 0
    gen = journal.rollback(to_gen=args.to)
    restored = args.to if args.to is not None else "previous generation"
    print(f"{args.path}: restored {restored} as generation {gen}")
    return 0


def cmd_chaos(args) -> int:
    from repro.resilience.chaos import DRILL_NAMES, run_chaos

    if args.list:
        for drill in DRILL_NAMES:
            print(drill)
        return 0
    if not args.program:
        print("error: a program is required (or use --list)",
              file=sys.stderr)
        return 2
    report = run_chaos(
        args.program,
        dims=_parse_dims(args.dims, get_program(args.program)),
        seed=args.seed,
        max_iter=args.max_iter,
        fetch_fail_rate=args.fail_rate,
        crash_at=args.crash_at,
        kill_workers=args.kill_workers,
    )
    print(report.format())
    # Exit code = number of failed drills, capped below the 126+ range
    # the shell reserves for "not executable"/signal statuses.
    return min(125, report.n_failed)


def cmd_serve(args) -> int:
    import signal as _signal

    from repro.service import KondoService

    if args.fleet:
        return _serve_fleet(args, _signal)
    service = KondoService(
        args.state_dir,
        socket_path=args.socket,
        workers=args.workers,
        queue_limit=args.queue_limit,
        lease_ttl_s=args.lease_ttl,
        default_deadline_s=args.deadline,
        supervised=not args.unsupervised,
        hedge_after_s=args.hedge_after,
        compact_on_start=args.compact,
    )
    service.start()

    def _on_signal(_signum, _frame):
        # Graceful drain off the signal context: stop admitting, let
        # leased jobs finish, seal the journal.
        import threading as _threading

        _threading.Thread(target=service.drain, name="kondo-serve-drain",
                          daemon=True).start()

    _signal.signal(_signal.SIGTERM, _on_signal)
    _signal.signal(_signal.SIGINT, _on_signal)
    recovered = len(service.store.recovered_jobs)
    print(f"kondo serve: listening on {service.socket_path} "
          f"({args.workers} worker(s), queue limit {args.queue_limit}"
          + (f", {recovered} job(s) requeued from recovery" if recovered
             else "") + ")")
    sys.stdout.flush()
    while not service.wait(timeout_s=1.0):
        pass
    print("kondo serve: drained")
    return 0


def _serve_fleet(args, _signal) -> int:
    """``kondo serve --fleet <shared-dir>``: join a multi-host fleet."""
    from repro.service import FleetService

    service = FleetService(
        args.fleet,
        args.state_dir,
        worker=args.worker_id,
        socket_path=args.socket,
        workers=args.workers,
        lease_ttl_s=args.lease_ttl,
        registry_ttl_s=args.registry_ttl,
        hedge_after_s=args.hedge_after,
    )
    service.start()

    def _on_signal(_signum, _frame):
        import threading as _threading

        _threading.Thread(target=service.drain, name="kondo-fleet-drain",
                          daemon=True).start()

    _signal.signal(_signal.SIGTERM, _on_signal)
    _signal.signal(_signal.SIGINT, _on_signal)
    print(f"kondo serve: fleet member {service.worker} "
          f"(epoch {service.store.epoch}) on {service.socket_path}, "
          f"shared store {args.fleet}")
    sys.stdout.flush()
    while not service.wait(timeout_s=1.0):
        pass
    print("kondo serve: left the fleet")
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.socket, timeout_s=args.timeout)


def cmd_submit(args) -> int:
    import json as _json

    from repro.service import JobSpec

    program = get_program(args.program)
    spec = JobSpec(
        program=args.program,
        dims=_parse_dims(args.dims, program),
        seed=args.seed,
        max_iter=args.max_iter,
        budget_s=args.budget,
        carver=args.carver,
        workers=args.workers,
        shards=args.shards,
        deadline_s=args.deadline,
    )
    client = _service_client(args)
    response = client.submit(spec)
    if not args.wait:
        print(_json.dumps(response, indent=2, sort_keys=True))
        return 0
    final = client.wait_for(response["job"], timeout_s=args.wait_timeout)
    print(_json.dumps(final, indent=2, sort_keys=True))
    return 0 if final["state"] == "done" else 1


def cmd_status(args) -> int:
    import json as _json

    client = _service_client(args)
    if args.follow:
        if not args.job:
            print("error: --follow needs a job id", file=sys.stderr)
            return 1
        final_state = None
        for event in client.follow(args.job, timeout_s=args.timeout):
            if event.get("kind") == "keepalive":
                continue
            if event.get("kind") == "end":
                final_state = event.get("state")
                print(_json.dumps(event, sort_keys=True))
                break
            print(_json.dumps(event, sort_keys=True))
            sys.stdout.flush()
        return 0 if final_state == "done" else 1
    response = client.status(args.job)
    if response.get("partitioned"):
        # Fleet daemon in degraded mode: what follows is its last good
        # local snapshot, not live shared-store state.
        print(f"warning: fleet daemon {response.get('worker', '?')} is "
              f"PARTITIONED from its shared store; status below is the "
              f"read-only local snapshot", file=sys.stderr)
    print(_json.dumps(response, indent=2, sort_keys=True))
    return 0


def cmd_cancel(args) -> int:
    import json as _json

    response = _service_client(args).cancel(args.job)
    print(_json.dumps(response, indent=2, sort_keys=True))
    return 0


def cmd_drain(args) -> int:
    client = _service_client(args)
    client.drain()
    print("drain requested")
    if not args.wait:
        return 0
    # The daemon removes its socket after the drain completes; poll the
    # ping until it stops answering, bounded by --timeout overall.
    import time as _time

    from repro.errors import ServiceProtocolError

    deadline = _time.monotonic() + args.wait_timeout
    while _time.monotonic() < deadline:
        try:
            client.ping()
        except ServiceProtocolError:
            print("drained")
            return 0
        _time.sleep(0.2)
    print("error: daemon still answering after drain timeout",
          file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kondo",
        description="Provenance-driven data debloating (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("programs", help="list available programs")

    p = sub.add_parser("analyze", help="fuzz + carve a program's data subset")
    p.add_argument("program")
    p.add_argument("--dims", help="array shape, e.g. 128x128")
    p.add_argument("--budget", type=float, help="time budget in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--carver", choices=("merge", "simple"), default="merge")
    p.add_argument("--workers", type=int, default=0,
                   help="debloat-test pool size (0 = serial); results are "
                        "seed-for-seed identical either way")
    p.add_argument("--score", action="store_true",
                   help="also report precision/recall vs ground truth")
    p.add_argument("--save", help="persist the analysis artifact (.npz)")
    p.add_argument("--checkpoint",
                   help="write periodic campaign checkpoints to this path")
    p.add_argument("--checkpoint-every", type=int, default=100,
                   help="iterations between checkpoints (default 100)")
    p.add_argument("--resume", action="store_true",
                   help="resume a crashed campaign from --checkpoint; the "
                        "resumed run completes exactly as the "
                        "uninterrupted one would have")
    p.add_argument("--run-timeout", type=float, metavar="SECONDS",
                   help="supervise every debloat test in its own child "
                        "process with this wall-clock budget (and a "
                        "matching CPU rlimit); killed runs are "
                        "quarantined with verdict TIMEOUT")
    p.add_argument("--run-memory", type=int, metavar="MIB",
                   help="address-space headroom per supervised run, "
                        "enforced by RLIMIT_AS in the child; overruns "
                        "are quarantined with verdict OOM")
    p.add_argument("--audit-capture", choices=("event", "block"),
                   default="event",
                   help="audit capture mode for audited debloat tests: "
                        "per-call events (seed default) or batched block "
                        "descriptors with flat interval stores "
                        "(flat-index-identical, lower overhead)")
    p.add_argument("--audit-data", metavar="KND",
                   help="run the debloat tests in audited mode against "
                        "this real KND file (offsets come from recorded "
                        "I/O events instead of direct offset replay)")

    p = sub.add_parser("debloat", help="write a debloated .knds subset")
    p.add_argument("program")
    p.add_argument("data", help="source .knd file")
    p.add_argument("out", help="destination .knds file")
    p.add_argument("--budget", type=float)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--analysis", help="reuse a saved analysis artifact")
    p.add_argument("--granularity", choices=("element", "chunk"),
                   default="element")

    p = sub.add_parser("make-data", help="create a KND data file")
    p.add_argument("out")
    p.add_argument("--dims", required=True, help="e.g. 128x128")
    p.add_argument("--dtype", default="f8")
    p.add_argument("--chunks", help="e.g. 16x16")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("run", help="run a program against a data file")
    p.add_argument("program")
    p.add_argument("data", help=".knd or .knds file")
    p.add_argument("--value", required=True, help="comma-separated v")

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", help="e.g. fig7, table3, ablations, or 'all'")

    p = sub.add_parser("visualize",
                       help="ASCII overlay of carved subset vs ground truth")
    p.add_argument("program")
    p.add_argument("--dims", help="array shape, e.g. 128x128")
    p.add_argument("--budget", type=float)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=64)

    p = sub.add_parser("chaos",
                       help="fault-injection drills against the pipeline "
                            "(exit code = number of failed drills)")
    p.add_argument("program", nargs="?",
                   help="workload under test (omit with --list)")
    p.add_argument("--list", action="store_true",
                   help="print the drill names and exit")
    p.add_argument("--dims", help="array shape, e.g. 32x32")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iter", type=int, default=400,
                   help="campaign iteration budget per drill")
    p.add_argument("--fail-rate", type=float, default=0.5,
                   help="injected remote-fetch failure probability")
    p.add_argument("--crash-at", type=int, default=150,
                   help="debloat-test call at which the campaign crashes")
    p.add_argument("--kill-workers", type=int, default=1,
                   help="pooled evaluations killed before recovery")

    p = sub.add_parser("fsck",
                       help="deep-verify a KND/KNDS file (exit 0 clean, "
                            "1 span damage, 2 structural)")
    p.add_argument("path", help=".knd or .knds file")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.add_argument("--no-journal", action="store_true",
                   help="skip journal inspection")

    p = sub.add_parser("repair",
                       help="re-fetch a bundle's corrupt spans from its "
                            "origin, journaled")
    p.add_argument("path", help="damaged .knds bundle")
    p.add_argument("--source",
                   help="origin .knd to re-fetch damaged spans from "
                        "(optional when a journal snapshot suffices)")
    p.add_argument("--keep-generations", type=int, default=0,
                   help="prune journal snapshots beyond the newest N "
                        "(0 = keep all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")

    p = sub.add_parser("rollback",
                       help="restore a prior journal generation of a bundle")
    p.add_argument("path", help=".knds bundle with a journal")
    p.add_argument("--to", type=int,
                   help="generation to restore (default: the previous one)")
    p.add_argument("--list", action="store_true",
                   help="list available generations and exit")

    p = sub.add_parser("serve",
                       help="run the campaign-orchestrator daemon "
                            "(durable queue, worker leases, graceful "
                            "drain on SIGTERM)")
    p.add_argument("state_dir",
                   help="durable state directory (job journal + socket)")
    p.add_argument("--socket",
                   help="unix socket path (default STATE_DIR/kondo.sock)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker threads executing jobs (default 1)")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="outstanding-job admission bound; submissions "
                        "beyond it are REJECTED-BUSY (default 16)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds a worker lease survives without a "
                        "heartbeat before its job requeues (default 30)")
    p.add_argument("--deadline", type=float, default=600.0,
                   help="default per-attempt wall budget for jobs that "
                        "do not carry their own (default 600)")
    p.add_argument("--unsupervised", action="store_true",
                   help="run jobs inline on worker threads instead of "
                        "in supervised child processes (testing only)")
    p.add_argument("--hedge-after", type=float,
                   help="straggler threshold in seconds: a shard still "
                        "on its first lease after this long gets a "
                        "speculative hedged duplicate (default off)")
    p.add_argument("--compact", action="store_true",
                   help="after a clean-shutdown recovery, drop DONE "
                        "jobs' journal records (results persist in the "
                        "on-disk result cache)")
    p.add_argument("--fleet", metavar="SHARED_DIR",
                   help="join the multi-host fleet coordinating over "
                        "this shared directory (fenced shard leases, "
                        "worker registry, cross-host hedging); "
                        "STATE_DIR stays per-daemon")
    p.add_argument("--worker-id",
                   help="fleet worker id, unique across hosts "
                        "(default: generated)")
    p.add_argument("--registry-ttl", type=float, default=10.0,
                   help="seconds without a heartbeat before fleet "
                        "peers treat this daemon as dead and reclaim "
                        "its shards (default 10)")

    def _client_args(p):
        p.add_argument("--socket", required=True,
                       help="the daemon's unix socket path")
        p.add_argument("--timeout", type=float, default=10.0,
                       help="per-request socket timeout (default 10s)")

    p = sub.add_parser("submit",
                       help="submit a debloat job to a running "
                            "kondo serve")
    _client_args(p)
    p.add_argument("program")
    p.add_argument("--dims", help="array shape, e.g. 128x128")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iter", type=int,
                   help="fuzz iteration budget override")
    p.add_argument("--budget", type=float,
                   help="campaign time budget in seconds")
    p.add_argument("--carver", choices=("merge", "simple"),
                   default="merge")
    p.add_argument("--workers", type=int, default=0,
                   help="debloat-test pool size inside the job")
    p.add_argument("--shards", type=int, default=0,
                   help="shard the campaign into N leasable units with "
                        "independent retry/hedging; the merged result "
                        "is bit-identical for every N (default 0 = "
                        "unsharded)")
    p.add_argument("--deadline", type=float,
                   help="per-attempt wall budget, propagated into the "
                        "supervised run timeout")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job reaches a terminal state")
    p.add_argument("--wait-timeout", type=float, default=300.0,
                   help="bound on --wait polling (default 300s)")

    p = sub.add_parser("status", help="query a kondo serve daemon")
    _client_args(p)
    p.add_argument("job", nargs="?",
                   help="job id (omit for the full table)")
    p.add_argument("--follow", action="store_true",
                   help="stream the job's progress events as JSON lines "
                        "until it reaches a terminal state (exit 0 iff "
                        "done)")

    p = sub.add_parser("cancel", help="cancel a queued job")
    _client_args(p)
    p.add_argument("job", help="job id to cancel")

    p = sub.add_parser("drain",
                       help="gracefully drain a kondo serve daemon")
    _client_args(p)
    p.add_argument("--wait", action="store_true",
                   help="block until the daemon actually exits")
    p.add_argument("--wait-timeout", type=float, default=120.0,
                   help="bound on --wait (default 120s)")

    from repro.analysis.engine import add_arguments as add_check_arguments

    p = sub.add_parser("check",
                       help="static AST invariant linter (KND001-KND015)")
    add_check_arguments(p)

    return parser


_COMMANDS = {
    "programs": cmd_programs,
    "visualize": cmd_visualize,
    "analyze": cmd_analyze,
    "debloat": cmd_debloat,
    "make-data": cmd_make_data,
    "run": cmd_run,
    "experiment": cmd_experiment,
    "chaos": cmd_chaos,
    "check": cmd_check,
    "fsck": cmd_fsck,
    "repair": cmd_repair,
    "rollback": cmd_rollback,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "cancel": cmd_cancel,
    "drain": cmd_drain,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KondoError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
