"""Bottom-up hull merging — Algorithm 2 of the paper.

Starting from per-cell hulls, repeatedly merge any two hulls that are
CLOSE until no close pair remains.  CLOSE combines two measures
(Section IV-B):

* center distance — euclidean distance between hull centroids, and
* boundary distance — minimum distance between the hulls' vertices.

The paper's discussion motivates an asymmetric role: "Initially the small
hulls are merged and boundary distance suffices, but as one hull keeps
becoming larger, merging with small hulls can still continue since center
distances are close."  The default ``close_mode="or"`` implements exactly
that (either criterion triggers a merge); ``"and"`` is provided as an
ablation.

The merge itself is the union-of-vertices hull (paper: "equivalent to
computing a hull with all respective points on which the original hulls
were computed" [22]) — which makes the procedure output-sensitive, unlike
classical divide-and-conquer hull merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.fuzzing.config import CarveConfig
from repro.geometry.hull import Hull


def close(h1: Hull, h2: Hull, config: CarveConfig) -> bool:
    """The CLOSE predicate of Algorithm 2."""
    # Cheap reject: if even the bounding boxes are farther apart than any
    # threshold could bridge, skip the exact distance computations.
    lo1, hi1 = h1.bounding_box()
    lo2, hi2 = h2.bounding_box()
    gap = np.maximum(0.0, np.maximum(lo1 - hi2, lo2 - hi1))
    bbox_gap = float(np.linalg.norm(gap))
    limit = max(config.center_d_thresh, config.bound_d_thresh)
    if bbox_gap > limit:
        # Boundary distance >= bbox gap always; center distance >= bbox gap
        # too (centers lie inside the boxes).  Nothing can be close.
        return False
    center_ok = h1.center_distance(h2) <= config.center_d_thresh
    boundary_ok = h1.boundary_distance(h2) <= config.bound_d_thresh
    if config.close_mode == "and":
        return center_ok and boundary_ok
    return center_ok or boundary_ok


@dataclass
class MergeStats:
    """Diagnostics from one merge run."""

    initial_hulls: int
    final_hulls: int
    merges: int
    passes: int


def merge_hulls(hulls: List[Hull], config: CarveConfig
                ) -> Tuple[List[Hull], MergeStats]:
    """Iteratively merge CLOSE hulls until a fixed point (Alg 2 lines 6-11).

    Each successful merge removes two hulls and inserts their union hull,
    so the loop terminates after at most ``len(hulls) - 1`` merges.
    """
    work = list(hulls)
    initial = len(work)
    merges = 0
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        i = 0
        while i < len(work):
            j = i + 1
            while j < len(work):
                if close(work[i], work[j], config):
                    merged = work[i].merge(work[j])
                    # Remove j first (higher index) to keep i valid.
                    work.pop(j)
                    work.pop(i)
                    work.append(merged)
                    merges += 1
                    changed = True
                    # Restart the inner scan for the (moved) hull at i.
                    j = i + 1
                else:
                    j += 1
            i += 1
    return work, MergeStats(
        initial_hulls=initial,
        final_hulls=len(work),
        merges=merges,
        passes=passes,
    )
