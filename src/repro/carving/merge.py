"""Bottom-up hull merging — Algorithm 2 of the paper.

Starting from per-cell hulls, repeatedly merge any two hulls that are
CLOSE until no close pair remains.  CLOSE combines two measures
(Section IV-B):

* center distance — euclidean distance between hull centroids, and
* boundary distance — minimum distance between the hulls' vertices.

The paper's discussion motivates an asymmetric role: "Initially the small
hulls are merged and boundary distance suffices, but as one hull keeps
becoming larger, merging with small hulls can still continue since center
distances are close."  The default ``close_mode="or"`` implements exactly
that (either criterion triggers a merge); ``"and"`` is provided as an
ablation.

The merge itself is the union-of-vertices hull (paper: "equivalent to
computing a hull with all respective points on which the original hulls
were computed" [22]) — which makes the procedure output-sensitive, unlike
classical divide-and-conquer hull merging.

Two engines implement the same fixed point:

* ``scan`` — the legacy loop: every pass re-evaluates CLOSE over all
  O(n^2) hull pairs until a pass makes no merge.
* ``grid`` — the fast engine: hulls are bucketed by bounding box into a
  uniform spatial grid whose cell edge is the CLOSE reach limit
  ``max(center_d_thresh, bound_d_thresh)``, so each hull only ever tests
  the hulls in its 3^d cell neighborhood; pairs once evaluated as
  not-CLOSE are cached and never re-evaluated (hulls are immutable, so a
  rejected pair stays rejected), which removes the per-pass O(n^2)
  rescans entirely.

The grid engine replays the *exact* pair-scan order of the legacy loop —
it only skips pairs whose CLOSE value is already known to be False
(bounding boxes further apart than the reach limit on some axis, or a
cached rejection) — so both engines produce the identical merge sequence,
identical final hull list, and identical :class:`MergeStats` counters.
The equivalence is asserted property-style in
``tests/carving/test_merge_equivalence.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.fuzzing.config import CarveConfig
from repro.geometry.hull import Hull


def close(h1: Hull, h2: Hull, config: CarveConfig) -> bool:
    """The CLOSE predicate of Algorithm 2."""
    # Cheap reject: if even the bounding boxes are farther apart than any
    # threshold could bridge, skip the exact distance computations.
    lo1, hi1 = h1.bounding_box()
    lo2, hi2 = h2.bounding_box()
    gap = np.maximum(0.0, np.maximum(lo1 - hi2, lo2 - hi1))
    bbox_gap = float(np.linalg.norm(gap))
    limit = max(config.center_d_thresh, config.bound_d_thresh)
    if bbox_gap > limit:
        # Boundary distance >= bbox gap always; center distance >= bbox gap
        # too (centers lie inside the boxes).  Nothing can be close.
        return False
    center_ok = h1.center_distance(h2) <= config.center_d_thresh
    boundary_ok = h1.boundary_distance(h2) <= config.bound_d_thresh
    if config.close_mode == "and":
        return center_ok and boundary_ok
    return center_ok or boundary_ok


@dataclass
class MergeStats:
    """Diagnostics from one merge run."""

    initial_hulls: int
    final_hulls: int
    merges: int
    passes: int
    #: Which engine produced the result ("scan" or "grid").
    engine: str = "scan"
    #: How many exact CLOSE evaluations the run performed (diagnostics;
    #: the grid engine's whole point is keeping this near-linear).
    close_calls: int = 0


def merge_hulls(
    hulls: List[Hull],
    config: CarveConfig,
    engine: Optional[str] = None,
) -> Tuple[List[Hull], MergeStats]:
    """Iteratively merge CLOSE hulls until a fixed point (Alg 2 lines 6-11).

    Each successful merge removes two hulls and inserts their union hull,
    so the loop terminates after at most ``len(hulls) - 1`` merges.

    Args:
        engine: "grid" or "scan"; defaults to ``config.perf.grid_merge``.
            Both engines return the identical hull list (same merge
            sequence — see the module docstring).
    """
    if engine is None:
        engine = "grid" if config.perf.grid_merge else "scan"
    if engine == "grid":
        return merge_hulls_grid(hulls, config)
    return merge_hulls_scan(hulls, config)


def merge_hulls_scan(hulls: List[Hull], config: CarveConfig
                     ) -> Tuple[List[Hull], MergeStats]:
    """The legacy engine: full O(n^2) pair rescans every pass."""
    work = list(hulls)
    initial = len(work)
    merges = 0
    passes = 0
    close_calls = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        i = 0
        while i < len(work):
            j = i + 1
            while j < len(work):
                close_calls += 1
                if close(work[i], work[j], config):
                    merged = work[i].merge(work[j])
                    # Remove j first (higher index) to keep i valid.
                    work.pop(j)
                    work.pop(i)
                    work.append(merged)
                    merges += 1
                    changed = True
                    # Restart the inner scan for the (moved) hull at i.
                    j = i + 1
                else:
                    j += 1
            i += 1
    return work, MergeStats(
        initial_hulls=initial,
        final_hulls=len(work),
        merges=merges,
        passes=passes,
        engine="scan",
        close_calls=close_calls,
    )


@dataclass
class _SpatialGrid:
    """Uniform grid over hull bounding boxes.

    Cell edge = the CLOSE reach limit, so any two hulls whose bounding
    boxes are within the limit on every axis share or neighbor a cell.
    Hulls whose box would span more than ``max_cells_per_hull`` grid
    cells (large merged hulls over fine grids) go into a catch-all ``big``
    bucket that every query includes — correctness never depends on a
    hull fitting the grid.
    """

    cell: float
    max_cells_per_hull: int = 2048
    cells: Dict[Tuple[int, ...], Set[int]] = field(default_factory=dict)
    where: Dict[int, Optional[List[Tuple[int, ...]]]] = field(
        default_factory=dict
    )
    big: Set[int] = field(default_factory=set)

    def _cell_range(self, hull: Hull) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = hull.bounding_box()
        return (
            np.floor(lo / self.cell).astype(np.int64),
            np.floor(hi / self.cell).astype(np.int64),
        )

    @staticmethod
    def _keys(lo_c: np.ndarray, hi_c: np.ndarray
              ) -> Iterator[Tuple[int, ...]]:
        return itertools.product(
            *(range(int(a), int(b) + 1) for a, b in zip(lo_c, hi_c))
        )

    def insert(self, hid: int, hull: Hull) -> None:
        lo_c, hi_c = self._cell_range(hull)
        span = int(np.prod(hi_c - lo_c + 1))
        if span > self.max_cells_per_hull:
            self.big.add(hid)
            self.where[hid] = None
            return
        keys = list(self._keys(lo_c, hi_c))
        for key in keys:
            self.cells.setdefault(key, set()).add(hid)
        self.where[hid] = keys

    def remove(self, hid: int) -> None:
        keys = self.where.pop(hid)
        if keys is None:
            self.big.discard(hid)
            return
        for key in keys:
            bucket = self.cells[key]
            bucket.discard(hid)
            if not bucket:
                del self.cells[key]

    def neighbors(self, hull: Hull) -> Set[int]:
        """Ids of hulls whose box could be within one reach limit.

        A strict superset of every CLOSE partner: outside the 3^d cell
        neighborhood some axis gap exceeds the cell edge (= reach limit),
        which forces the CLOSE bounding-box reject.
        """
        lo_c, hi_c = self._cell_range(hull)
        lo_c -= 1
        hi_c += 1
        out = set(self.big)
        span = int(np.prod(hi_c - lo_c + 1))
        if span > len(self.cells):
            # Query box covers more cells than are occupied: walk the
            # occupied cells instead.
            for key, ids in self.cells.items():
                if all(a <= k <= b for k, a, b in zip(key, lo_c, hi_c)):
                    out |= ids
            return out
        for key in self._keys(lo_c, hi_c):
            ids = self.cells.get(key)
            if ids:
                out |= ids
        return out


def merge_hulls_grid(hulls: List[Hull], config: CarveConfig
                     ) -> Tuple[List[Hull], MergeStats]:
    """The fast engine: grid-pruned candidates + rejected-pair caching.

    Replays the scan engine's exact merge sequence while skipping only
    pair evaluations that are provably False (see module docstring).
    """
    initial = len(hulls)
    limit = max(config.center_d_thresh, config.bound_d_thresh)
    grid = _SpatialGrid(cell=max(limit, 1.0))
    work: List[Tuple[int, Hull]] = list(enumerate(hulls))
    for hid, hull in work:
        grid.insert(hid, hull)
    next_id = len(hulls)
    # CLOSE is deterministic and hulls are immutable, so a pair evaluated
    # to False once can never merge later — cache and never re-test.
    rejected: Set[Tuple[int, int]] = set()
    merges = 0
    passes = 0
    close_calls = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        i = 0
        while i < len(work):
            hid_i, h_i = work[i]
            cand = grid.neighbors(h_i)
            j = i + 1
            while j < len(work):
                hid_j, h_j = work[j]
                if hid_j in cand:
                    pair = (
                        (hid_i, hid_j) if hid_i < hid_j else (hid_j, hid_i)
                    )
                    if pair not in rejected:
                        close_calls += 1
                        if close(h_i, h_j, config):
                            merged = h_i.merge(h_j)
                            grid.remove(hid_i)
                            grid.remove(hid_j)
                            work.pop(j)
                            work.pop(i)
                            mid = next_id
                            next_id += 1
                            grid.insert(mid, merged)
                            work.append((mid, merged))
                            merges += 1
                            changed = True
                            # Restart the inner scan for the (moved) hull
                            # at i, exactly like the scan engine.
                            hid_i, h_i = work[i]
                            cand = grid.neighbors(h_i)
                            j = i + 1
                            continue
                        rejected.add(pair)
                j += 1
            i += 1
    return [hull for _hid, hull in work], MergeStats(
        initial_hulls=initial,
        final_hulls=len(work),
        merges=merges,
        passes=passes,
        engine="grid",
        close_calls=close_calls,
    )
