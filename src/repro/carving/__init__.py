"""Carving subsystem: cell split, bottom-up hull merging, rasterization.

Implements Section IV-B (Algorithm 2) plus the Simple Convex baseline of
Section V-C.
"""

from repro.carving.carver import Carver, CarveResult
from repro.carving.cells import split_into_cells
from repro.carving.merge import MergeStats, close, merge_hulls
from repro.carving.simple_convex import SimpleConvexCarver

__all__ = [
    "Carver",
    "CarveResult",
    "SimpleConvexCarver",
    "split_into_cells",
    "merge_hulls",
    "close",
    "MergeStats",
]
