"""The Carver: from fuzz-discovered index points to the carved subset.

Combines SPLIT (per-cell hulls), the bottom-up merge (Algorithm 2), and
rasterization back to integer indices.  The carved subset always includes
every directly-observed index, so carving can only *add* (interior/
sandwiched) indices on top of what fuzzing proved accessible — precision
may drop, recall never does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arraymodel.layout import flatten_many, unflatten_many
from repro.carving.cells import split_into_cells
from repro.carving.merge import MergeStats, merge_hulls
from repro.errors import GeometryError
from repro.fuzzing.config import CarveConfig
from repro.geometry.hull import Hull
from repro.geometry.lattice import lattice_boundary_points
from repro.geometry.raster import flat_indices_in_hulls, integer_points_in_hulls
from repro.perf.bitmap import union_flat


def observed_flat_indices(points: np.ndarray,
                          dims: Sequence[int]) -> np.ndarray:
    """Flat offsets of the rounded observed points, clipped into ``dims``.

    Observed points sit on (or numerically next to) lattice points, but a
    boundary index like ``dims - 1 + 1e-9`` rounds out of the window and
    the flat-index encode would reject it — the carved subset must keep
    the nearest in-window index instead of crashing on it.
    """
    dims_arr = np.asarray(tuple(dims), dtype=np.int64)
    rounded = np.round(np.asarray(points, dtype=np.float64)).astype(np.int64)
    return flatten_many(np.clip(rounded, 0, dims_arr - 1), dims)


@dataclass
class CarveResult:
    """Output of one carving run.

    Attributes:
        hulls: the final set of merged hulls (the paper's ``H``).
        flat_indices: sorted flat indices of the carved subset
            ``I'_Theta`` (hull interiors plus all observed points).
        merge_stats: diagnostics from the merge loop.
        elapsed_seconds: wall-clock carving time.
    """

    hulls: List[Hull]
    flat_indices: np.ndarray
    merge_stats: MergeStats
    elapsed_seconds: float

    @property
    def n_hulls(self) -> int:
        return len(self.hulls)

    @property
    def n_indices(self) -> int:
        return int(self.flat_indices.size)


class Carver:
    """Convex-hull-set carver over a d-dimensional index space.

    Args:
        dims: array extents (defines both the flat<->tuple index mapping
            and the clip window for rasterization).
        config: carve configuration (cell size, merge thresholds, ...).
    """

    def __init__(self, dims: Sequence[int], config: Optional[CarveConfig] = None):
        self.dims = tuple(int(d) for d in dims)
        self.config = config if config is not None else CarveConfig()

    def build_cell_hulls(self, points: np.ndarray) -> List[Hull]:
        """SPLIT the points into cells and hull each cell (Alg 2, l. 3-5).

        Lattice-interior points of each cell are stripped first — they can
        never be hull vertices, and dense 3-D cells shrink by an order of
        magnitude.
        """
        cells = split_into_cells(points, self.config.cell_size)
        return [
            Hull.from_points(lattice_boundary_points(cell_points))
            for cell_points in cells.values()
        ]

    def carve_points(self, points: np.ndarray) -> CarveResult:
        """Carve from an ``(n, d)`` array of index points."""
        start = time.perf_counter()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != len(self.dims):
            raise GeometryError(
                f"expected (n, {len(self.dims)}) points, got {points.shape}"
            )
        if points.shape[0] == 0:
            return CarveResult(
                hulls=[],
                flat_indices=np.empty(0, dtype=np.int64),
                merge_stats=MergeStats(0, 0, 0, 0),
                elapsed_seconds=time.perf_counter() - start,
            )
        initial = self.build_cell_hulls(points)
        merged, stats = merge_hulls(initial, self.config)
        observed_flat = observed_flat_indices(points, self.dims)
        perf = self.config.perf
        if perf.bitmap_raster:
            # Fast path: stay in flat-offset space end to end — hull
            # rasterization and the union with the observed points both go
            # through the bitmap, no (n, d) point stacking or re-sort.
            carved_flat = flat_indices_in_hulls(
                merged, self.dims, tol=self.config.raster_tol, perf=perf
            )
            flat = union_flat(
                [carved_flat, observed_flat],
                int(np.prod(self.dims)),
                perf.bitmap_max_cells,
            )
        else:
            raster = integer_points_in_hulls(
                merged, dims=self.dims, tol=self.config.raster_tol, perf=perf
            )
            carved_flat = (
                flatten_many(raster, self.dims)
                if raster.size
                else np.empty(0, dtype=np.int64)
            )
            flat = np.union1d(carved_flat, observed_flat)
        return CarveResult(
            hulls=merged,
            flat_indices=flat.astype(np.int64),
            merge_stats=stats,
            elapsed_seconds=time.perf_counter() - start,
        )

    def carve_flat(self, flat_indices: np.ndarray) -> CarveResult:
        """Carve from flat offsets (the fuzz campaign's native output)."""
        flat = np.asarray(flat_indices, dtype=np.int64).reshape(-1)
        if flat.size == 0:
            return self.carve_points(np.empty((0, len(self.dims))))
        return self.carve_points(
            unflatten_many(flat, self.dims).astype(np.float64)
        )
