"""Simple Convex (SC) baseline carver.

Section V-C: "we use Kondo's Fuzzer with a regular convex hull computation
procedure [22]" — i.e. one global convex hull over all discovered points,
no cell split, no bottom-up merging.  On disjoint or holed subsets this
over-covers badly (paper Figure 6(b) and the SC bars in Figure 8), which
is precisely what motivates Kondo's merge-based carver.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.arraymodel.layout import flatten_many, unflatten_many
from repro.carving.carver import CarveResult, observed_flat_indices
from repro.carving.merge import MergeStats
from repro.errors import GeometryError
from repro.fuzzing.config import CarveConfig
from repro.geometry.hull import Hull
from repro.geometry.lattice import lattice_boundary_points
from repro.geometry.raster import integer_points_in_hull


class SimpleConvexCarver:
    """One global hull over all points — the paper's SC baseline."""

    def __init__(self, dims: Sequence[int], config: Optional[CarveConfig] = None):
        self.dims = tuple(int(d) for d in dims)
        self.config = config if config is not None else CarveConfig()

    def carve_points(self, points: np.ndarray) -> CarveResult:
        start = time.perf_counter()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != len(self.dims):
            raise GeometryError(
                f"expected (n, {len(self.dims)}) points, got {points.shape}"
            )
        if points.shape[0] == 0:
            return CarveResult(
                hulls=[], flat_indices=np.empty(0, dtype=np.int64),
                merge_stats=MergeStats(0, 0, 0, 0),
                elapsed_seconds=time.perf_counter() - start,
            )
        hull = Hull.from_points(lattice_boundary_points(points))
        raster = integer_points_in_hull(
            hull, dims=self.dims, tol=self.config.raster_tol
        )
        carved_flat = (
            flatten_many(raster, self.dims)
            if raster.size
            else np.empty(0, dtype=np.int64)
        )
        observed_flat = observed_flat_indices(points, self.dims)
        flat = np.union1d(carved_flat, observed_flat)
        return CarveResult(
            hulls=[hull],
            flat_indices=flat.astype(np.int64),
            merge_stats=MergeStats(1, 1, 0, 0),
            elapsed_seconds=time.perf_counter() - start,
        )

    def carve_flat(self, flat_indices: np.ndarray) -> CarveResult:
        flat = np.asarray(flat_indices, dtype=np.int64).reshape(-1)
        if flat.size == 0:
            return self.carve_points(np.empty((0, len(self.dims))))
        return self.carve_points(
            unflatten_many(flat, self.dims).astype(np.float64)
        )
