"""SPLIT: partition discovered index points into fixed-size cells.

Algorithm 2, line 3: "The d-dimensional offset space is divided into fixed
size cells.  Given a set of points that fall in cell i, a hull h_i is
computed.  If no points fall in a cell, it is discarded."

Computing several small per-cell hulls first (instead of one global hull)
is what lets the carver approximate non-convex, disjoint, or holed subsets
(paper Figure 6).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import GeometryError


def split_into_cells(points: np.ndarray, cell_size: float
                     ) -> Dict[Tuple[int, ...], np.ndarray]:
    """Group points by the fixed-size grid cell they fall into.

    Args:
        points: ``(n, d)`` array of index points.
        cell_size: edge length of the (hyper-cubic) cells.

    Returns:
        Mapping from cell grid coordinate to the ``(m, d)`` points inside
        it.  Empty cells simply do not appear (they are "discarded").
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise GeometryError(f"need a non-empty (n, d) point array, got {pts.shape}")
    if cell_size <= 0:
        raise GeometryError(f"cell_size must be positive, got {cell_size}")
    coords = np.floor(pts / cell_size).astype(np.int64)
    cells: Dict[Tuple[int, ...], list] = {}
    # Sort by cell to slice contiguous groups without a python-level loop
    # over every point.
    order = np.lexsort(coords.T[::-1])
    coords_sorted = coords[order]
    pts_sorted = pts[order]
    boundaries = np.flatnonzero((np.diff(coords_sorted, axis=0) != 0).any(axis=1))
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [pts_sorted.shape[0]]))
    out: Dict[Tuple[int, ...], np.ndarray] = {}
    for s, e in zip(starts, ends):
        key = tuple(int(c) for c in coords_sorted[s])
        out[key] = pts_sorted[s:e]
    return out
