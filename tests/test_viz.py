"""Unit tests for ASCII subset visualization."""

import numpy as np
import pytest

from repro.errors import KondoError
from repro.viz import render_comparison, render_mask, render_slice


class TestRenderMask:
    def test_small_exact(self):
        flat = np.array([0, 3, 12, 15])  # corners of a 4x4
        art = render_mask(flat, (4, 4), width=8)
        lines = art.splitlines()
        assert lines[0] == "#  #"
        assert lines[3] == "#  #"

    def test_empty(self):
        art = render_mask(np.array([]), (4, 4))
        assert set(art.replace("\n", "")) <= {" "}

    def test_downsampling_bounds_width(self):
        flat = np.arange(256 * 256)
        art = render_mask(flat, (256, 256), width=32)
        assert max(len(line) for line in art.splitlines()) <= 32

    def test_3d_rejected(self):
        with pytest.raises(KondoError):
            render_mask(np.array([0]), (4, 4, 4))

    def test_out_of_range_rejected(self):
        with pytest.raises(KondoError):
            render_mask(np.array([99]), (4, 4))


class TestRenderComparison:
    def test_legend_characters(self):
        truth = np.array([0, 1])        # (0,0), (0,1)
        carved = np.array([1, 2])       # (0,1), (0,2)
        art = render_comparison(truth, carved, (2, 4), width=8)
        top = art.splitlines()[0]
        assert top[0] == "."   # truth only: missed
        assert top[1] == "#"   # both: correct keep
        assert top[2] == "+"   # carved only: over-kept
        assert top[3] == " "   # neither

    def test_legend_line_present(self):
        art = render_comparison(np.array([0]), np.array([0]), (2, 2))
        assert "legend" in art.splitlines()[-1]


class TestRenderSlice:
    def test_plane_extraction(self):
        # Mark the full z=1 plane of a 3x3x3 cube.
        idx = [(x, y, 1) for x in range(3) for y in range(3)]
        flat = np.array([x * 9 + y * 3 + z for x, y, z in idx])
        art = render_slice(flat, (3, 3, 3), axis=2, index=1, width=8)
        assert art.splitlines() == ["###", "###", "###"]
        empty = render_slice(flat, (3, 3, 3), axis=2, index=0, width=8)
        assert set(empty.replace("\n", "")) <= {" "}

    def test_validation(self):
        with pytest.raises(KondoError):
            render_slice(np.array([0]), (3, 3), axis=0, index=0)
        with pytest.raises(KondoError):
            render_slice(np.array([0]), (3, 3, 3), axis=5, index=0)
        with pytest.raises(KondoError):
            render_slice(np.array([0]), (3, 3, 3), axis=0, index=9)
