"""Unit tests for image building, debloating, and the container runtime."""

import os

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.container import (
    ContainerRuntime,
    build_image,
    debloat_image,
    parse_spec,
)
from repro.errors import ContainerSpecError
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program

DIMS = (32, 32)

SPEC = """\
FROM ubuntu:20.04
ADD ./data.knd /app/data.knd
ADD ./main.py /app/main.py
PARAM [0-30, 0-30]
ENTRYPOINT ["/app/main.py"]
CMD [1, 2, /app/data.knd]
"""


@pytest.fixture
def context(tmp_path):
    ctx = tmp_path / "ctx"
    ctx.mkdir()
    rng = np.random.default_rng(0)
    ArrayFile.create(
        str(ctx / "data.knd"), ArraySchema(DIMS, "f8"),
        rng.standard_normal(DIMS),
    ).close()
    (ctx / "main.py").write_text("# entrypoint\n")
    return str(ctx)


@pytest.fixture
def image(tmp_path, context):
    return build_image(parse_spec(SPEC), context, str(tmp_path / "img"))


class TestBuildImage:
    def test_entries_copied(self, image):
        assert set(image.entries) == {"/app/data.knd", "/app/main.py"}
        assert os.path.exists(image.entry_path("/app/data.knd"))
        assert image.total_nbytes > DIMS[0] * DIMS[1] * 8

    def test_missing_source_rejected(self, tmp_path, context):
        spec = parse_spec("FROM b\nADD ./nope.bin /x\n")
        with pytest.raises(ContainerSpecError):
            build_image(spec, context, str(tmp_path / "img2"))

    def test_unknown_entry_rejected(self, image):
        with pytest.raises(ContainerSpecError):
            image.entry_path("/nope")


class TestDebloatImage:
    def test_reduces_size(self, image):
        program = get_program("CS")
        before = image.total_nbytes
        report = debloat_image(
            image, program, "/app/data.knd",
            fuzz_config=FuzzConfig(max_iter=600),
        )
        assert report.debloated_nbytes < report.original_nbytes
        assert image.total_nbytes < before
        assert 0 < report.file_reduction < 1
        assert 0 < report.image_reduction <= report.file_reduction
        # The image entry now points at the .knds subset.
        assert image.entry_path("/app/data.knd").endswith("knds")

    def test_unknown_data_file(self, image):
        with pytest.raises(ContainerSpecError):
            debloat_image(image, get_program("CS"), "/app/nope.knd")


class TestContainerRuntime:
    def test_run_on_full_image(self, image):
        runtime = ContainerRuntime(image, get_program("CS"), "/app/data.knd")
        result = runtime.run((1, 2))
        assert result.succeeded
        assert result.stats.reads > 0
        assert result.stats.misses == 0

    def test_run_default_cmd(self, image):
        runtime = ContainerRuntime(image, get_program("CS"), "/app/data.knd")
        result = runtime.run()
        assert result.parameter_value == (1.0, 2.0)
        assert result.succeeded

    def test_out_of_param_range_rejected(self, image):
        runtime = ContainerRuntime(image, get_program("CS"), "/app/data.knd")
        with pytest.raises(ContainerSpecError):
            runtime.run((99, 99))

    def test_run_on_debloated_image(self, image):
        program = get_program("CS")
        debloat_image(image, program, "/app/data.knd",
                      fuzz_config=FuzzConfig(max_iter=800))
        runtime = ContainerRuntime(image, program, "/app/data.knd")
        result = runtime.run((2, 3))
        assert result.stats.reads > 0
        # The subset serves supported runs (high recall on CS).
        assert result.stats.misses == 0

    def test_remote_fetcher_recovers_misses(self, image, context):
        program = get_program("CS")
        # Deliberately under-fuzz so some supported offsets get debloated.
        debloat_image(image, program, "/app/data.knd",
                      fuzz_config=FuzzConfig(max_iter=30, stop_iter=10))
        with ArrayFile.open(os.path.join(context, "data.knd")) as full:
            runtime = ContainerRuntime(
                image, program, "/app/data.knd",
                remote_fetcher=lambda idx: full.read_point(idx),
            )
            # Find some valuation that misses, if any; fetcher recovers it.
            for v in [(1, 1), (3, 7), (0, 5), (2, 9)]:
                result = runtime.run(v)
                assert result.succeeded  # fetched misses count as success
