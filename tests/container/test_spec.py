"""Unit tests for container-spec parsing (Figure 2a)."""

import pytest

from repro.container import parse_spec
from repro.errors import ContainerSpecError

PAPER_SPEC = """\
FROM ubuntu:20.04
RUN apt-get install -y gcc
RUN apt-get install -y libhdf5-dev
RUN mkdir /stencil
ADD ./mnist.knd /stencil/mnist.knd
ADD ./fuji.knd /stencil/fuji.knd
ADD Stencil.c /stencil/crossStencil.c
RUN cd stencil
PARAM [0-30, 300.00-1200.00, 0-50]
ENTRYPOINT ["/stencil/CS"]
CMD [30, 550.0, 10, /stencil/mnist.knd]
"""


class TestParse:
    def test_paper_spec(self):
        spec = parse_spec(PAPER_SPEC)
        assert spec.base_image == "ubuntu:20.04"
        assert len(spec.run_commands) == 4
        assert ("./mnist.knd", "/stencil/mnist.knd") in spec.adds
        assert spec.param_space.ndim == 3
        assert spec.entrypoint == ["/stencil/CS"]
        assert spec.cmd[0] == "30"

    def test_param_ranges(self):
        spec = parse_spec(PAPER_SPEC)
        r0, r1, r2 = spec.param_space.ranges
        assert (r0.lo, r0.hi, r0.integer) == (0.0, 30.0, True)
        assert (r1.lo, r1.hi, r1.integer) == (300.0, 1200.0, False)
        assert (r2.lo, r2.hi, r2.integer) == (0.0, 50.0, True)

    def test_default_parameter_value(self):
        spec = parse_spec(PAPER_SPEC)
        assert spec.default_parameter_value() == (30.0, 550.0, 10.0)

    def test_data_files(self):
        spec = parse_spec(PAPER_SPEC)
        assert "/stencil/mnist.knd" in spec.data_files
        assert "/stencil/fuji.knd" in spec.data_files

    def test_comments_and_blanks_ignored(self):
        spec = parse_spec("# hi\n\nFROM base\n  # indented comment\n")
        assert spec.base_image == "base"

    def test_missing_from_rejected(self):
        with pytest.raises(ContainerSpecError):
            parse_spec("RUN echo hi\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nVOLUME /data\n")

    def test_bad_add_rejected(self):
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nADD onlyone\n")

    def test_malformed_param_rejected(self):
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nPARAM [abc]\n")
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nPARAM 0-30\n")
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nPARAM [30-0]\n")
        with pytest.raises(ContainerSpecError):
            parse_spec("FROM base\nPARAM []\n")

    def test_cmd_value_count_mismatch(self):
        spec = parse_spec("FROM base\nPARAM [0-10, 0-10]\nCMD [5]\n")
        with pytest.raises(ContainerSpecError):
            spec.default_parameter_value()

    def test_cmd_value_out_of_range(self):
        spec = parse_spec("FROM base\nPARAM [0-10]\nCMD [99]\n")
        with pytest.raises(ContainerSpecError):
            spec.default_parameter_value()

    def test_entrypoint_json(self):
        spec = parse_spec('FROM base\nENTRYPOINT ["/bin/x", "-v"]\n')
        assert spec.entrypoint == ["/bin/x", "-v"]


class TestEffectiveParamSpace:
    def test_explicit_param_space_wins(self):
        from repro.workloads import get_program

        spec = parse_spec("FROM base\nPARAM [0-5, 0-5]\n")
        space = spec.effective_param_space(get_program("CS"), (32, 32))
        assert space is spec.param_space

    def test_default_from_program_when_omitted(self):
        """Section VI: no PARAM directive -> default ranges are derived."""
        from repro.workloads import get_program

        spec = parse_spec("FROM base\n")
        program = get_program("CS")
        space = spec.effective_param_space(program, (32, 32))
        assert space.ndim == 2
        assert space.ranges[0].hi == 30  # the program's natural 0..D-2
