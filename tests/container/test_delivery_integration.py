"""Integration: container debloat + Merkle delivery + replay certification.

The full developer-to-user supply chain: Alice builds and debloats an
image, publishes its Merkle root, a user syncs only missing chunks, runs
the app, and certifies the run against a shipped manifest.
"""

import os

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.audit import AuditSession, capture_manifest, verify_manifest
from repro.audit.replay import subset_range_reader
from repro.arraymodel.debloated import DebloatedArrayFile
from repro.container import (
    ContainerRuntime,
    MerkleTree,
    build_image,
    debloat_image,
    parse_spec,
    transfer_plan,
)
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program

SPEC = """\
FROM ubuntu:20.04
ADD ./data.knd /app/data.knd
ADD ./lib.bin /app/lib.bin
PARAM [0-30, 0-30]
ENTRYPOINT ["/app/main"]
CMD [1, 2, /app/data.knd]
"""

DIMS = (32, 32)


@pytest.fixture
def pipeline(tmp_path):
    ctx = tmp_path / "ctx"
    ctx.mkdir()
    rng = np.random.default_rng(0)
    ArrayFile.create(
        str(ctx / "data.knd"), ArraySchema(DIMS, "f8"),
        rng.standard_normal(DIMS),
    ).close()
    (ctx / "lib.bin").write_bytes(
        rng.integers(0, 256, 65_536).astype("u1").tobytes()
    )
    spec = parse_spec(SPEC)
    image = build_image(spec, str(ctx), str(tmp_path / "img"))
    program = get_program("CS")
    report = debloat_image(
        image, program, "/app/data.knd",
        fuzz_config=FuzzConfig(max_iter=800),
    )
    return tmp_path, ctx, image, program, report


def image_bytes(image):
    parts = []
    for dst in sorted(image.entries):
        parts.append(open(image.entries[dst].path, "rb").read())
    return b"".join(parts)


class TestSupplyChain:
    def test_debloated_image_smaller(self, pipeline):
        _tmp, _ctx, image, _program, report = pipeline
        assert report.image_nbytes_after < report.image_nbytes_before

    def test_merkle_sync_after_debloat(self, pipeline):
        tmp, ctx, image, _program, _report = pipeline
        # The original image the user may already hold.
        original = (
            open(str(ctx / "lib.bin"), "rb").read()
            + open(str(ctx / "data.knd"), "rb").read()
        )
        release = image_bytes(image)
        t_orig = MerkleTree.build(original, avg_bits=9, min_size=64)
        t_rel = MerkleTree.build(release, avg_bits=9, min_size=64)
        plan = transfer_plan(t_rel, release, held=t_orig)
        # The unchanged library chunks dedup; only data chunks transfer.
        assert plan.dedup_fraction > 0.4

    def test_runtime_plus_replay_certification(self, pipeline):
        tmp, ctx, image, program, _report = pipeline
        # Alice records a reference manifest against the ORIGINAL data.
        src = str(ctx / "data.knd")
        session = AuditSession()
        f = ArrayFile.open(src, recorder=session.record)
        program.run(lambda idx: f.read_point(idx), (1, 2), DIMS)
        manifest = capture_manifest(session, (1, 2), {src: f.read_extent})
        f.close()

        # The user runs the debloated container...
        runtime = ContainerRuntime(image, program, "/app/data.knd")
        result = runtime.run((1, 2))
        assert result.succeeded

        # ...and certifies: the shipped subset serves byte-identical data
        # for every extent the reference run touched.
        subset = DebloatedArrayFile.open(image.entry_path("/app/data.knd"))
        report = verify_manifest(
            manifest, {src: subset_range_reader(subset)}
        )
        assert report.ok, (report.mismatches, report.missing)
        subset.close()
