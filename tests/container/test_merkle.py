"""Unit + property tests for content-defined Merkle delivery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container.merkle import (
    MerkleTree,
    TransferPlan,
    gear_chunks,
    transfer_plan,
)
from repro.errors import KondoError


def random_bytes(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n).astype("u1").tobytes()


class TestGearChunking:
    def test_empty(self):
        assert gear_chunks(b"") == []

    def test_covers_exactly(self):
        data = random_bytes(100_000)
        chunks = gear_chunks(data)
        assert chunks[0][0] == 0
        pos = 0
        for off, size in chunks:
            assert off == pos
            assert size > 0
            pos += size
        assert pos == len(data)

    def test_deterministic(self):
        data = random_bytes(50_000, seed=3)
        assert gear_chunks(data) == gear_chunks(data)

    def test_size_bounds(self):
        data = random_bytes(200_000, seed=1)
        for off, size in gear_chunks(data, min_size=256, max_size=4096)[:-1]:
            assert 256 <= size <= 4096

    def test_avg_size_tracks_bits(self):
        data = random_bytes(400_000, seed=2)
        small = gear_chunks(data, avg_bits=9, min_size=64, max_size=8192)
        large = gear_chunks(data, avg_bits=13, min_size=64, max_size=65536)
        assert len(small) > len(large)

    def test_boundary_shift_locality(self):
        """Content-defined: inserting bytes early only perturbs nearby
        chunks — most chunk payloads (hence digests) survive."""
        data = random_bytes(200_000, seed=4)
        shifted = data[:1000] + b"INSERTED" + data[1000:]
        t1 = MerkleTree.build(data)
        t2 = MerkleTree.build(shifted)
        shared = set(t1.leaves) & set(t2.leaves)
        assert len(shared) > 0.8 * min(t1.n_chunks, t2.n_chunks)

    def test_bad_bounds_rejected(self):
        with pytest.raises(KondoError):
            gear_chunks(b"xx", min_size=0)
        with pytest.raises(KondoError):
            gear_chunks(b"xx", min_size=100, max_size=50)


class TestMerkleTree:
    def test_root_deterministic(self):
        data = random_bytes(30_000)
        assert MerkleTree.build(data).root == MerkleTree.build(data).root

    def test_root_changes_with_content(self):
        a = MerkleTree.build(random_bytes(30_000, seed=0))
        b = MerkleTree.build(random_bytes(30_000, seed=1))
        assert a.root != b.root

    def test_empty_data_has_root(self):
        t = MerkleTree.build(b"")
        assert len(t.root) == 32
        assert t.n_chunks == 0

    def test_proofs_verify(self):
        data = random_bytes(150_000, seed=5)
        t = MerkleTree.build(data)
        for i in range(t.n_chunks):
            proof = t.proof(i)
            assert MerkleTree.verify_proof(t.leaves[i], proof, t.root)

    def test_bad_proof_rejected(self):
        data = random_bytes(150_000, seed=6)
        t = MerkleTree.build(data)
        proof = t.proof(0)
        wrong_leaf = bytes(32)
        assert not MerkleTree.verify_proof(wrong_leaf, proof, t.root)

    def test_proof_index_bounds(self):
        t = MerkleTree.build(random_bytes(10_000))
        with pytest.raises(KondoError):
            t.proof(t.n_chunks)

    @given(st.binary(min_size=1, max_size=5000))
    @settings(max_examples=30, deadline=None)
    def test_all_proofs_verify_property(self, data):
        t = MerkleTree.build(data, avg_bits=8, min_size=16, max_size=1024)
        for i in range(t.n_chunks):
            assert MerkleTree.verify_proof(t.leaves[i], t.proof(i), t.root)


class TestTransferPlan:
    def test_cold_receiver_downloads_everything(self):
        data = random_bytes(80_000)
        t = MerkleTree.build(data)
        plan = transfer_plan(t, data, held=None)
        assert plan.missing_nbytes == len(data)
        assert plan.dedup_fraction == 0.0

    def test_identical_holder_downloads_nothing(self):
        data = random_bytes(80_000)
        t = MerkleTree.build(data)
        plan = transfer_plan(t, data, held=t)
        assert plan.missing_chunks == 0
        assert plan.dedup_fraction == 1.0

    def test_debloated_file_mostly_deduped(self):
        """The Kondo delivery story: the debloated file shares most chunks
        with the original, so users with the original fetch little."""
        data = random_bytes(300_000, seed=7)
        debloated = data[:100_000] + data[220_000:]  # middle carved out
        t_orig = MerkleTree.build(data)
        t_sub = MerkleTree.build(debloated)
        plan = transfer_plan(t_sub, debloated, held=t_orig)
        assert plan.dedup_fraction > 0.7

    def test_plan_counts_consistent(self):
        data = random_bytes(60_000, seed=8)
        t = MerkleTree.build(data)
        plan = transfer_plan(t, data, held=None)
        assert isinstance(plan, TransferPlan)
        assert plan.total_chunks == t.n_chunks
        assert plan.missing_chunks == t.n_chunks
