"""Shared fixtures for the Kondo reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema


@pytest.fixture
def rng():
    """A deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_data():
    """A 10x10 float64 array with distinct values."""
    return np.arange(100, dtype="f8").reshape(10, 10)


@pytest.fixture
def knd_file(tmp_path, small_data):
    """A 10x10 row-major KND file on disk."""
    path = str(tmp_path / "small.knd")
    f = ArrayFile.create(path, ArraySchema((10, 10), "f8"), small_data)
    yield f
    f.close()


@pytest.fixture
def chunked_knd_file(tmp_path, small_data):
    """A 10x10 KND file with 4x4 chunks (edge chunks padded)."""
    path = str(tmp_path / "chunked.knd")
    f = ArrayFile.create(
        path, ArraySchema((10, 10), "f8", chunks=(4, 4)), small_data
    )
    yield f
    f.close()
