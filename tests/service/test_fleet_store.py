"""The fenced fleet store: tokens, leases, epochs, clocks, crash points.

Everything here runs on :class:`FakeClock` — expiry is a function call,
not a sleep — and the hypothesis property drives *interleavings* of two
workers racing one shard, asserting the two invariants the protocol
exists for: exactly one token-valid completion per shard, and a merged
digest bit-identical to the no-fault reference.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError, InjectedFault, StaleTokenError
from repro.resilience.faults import GateCrashPoint, PartitionGate
from repro.service import JobSpec, run_sharded_reference
from repro.service.fleet import (
    ClockSource,
    FakeClock,
    FleetStore,
    SkewedClock,
    WorkerRegistry,
    create_sealed_exclusive,
    publish_sealed,
    read_sealed,
    stamp,
)
from repro.service.shards import execute_shard, merge_shard_results

DIMS = (16, 16)


def spec(seed=0, shards=2, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=12,
                   shards=shards, **kw)


def make_store(shared, worker, clock, ttl=5.0, gate=None):
    return FleetStore(str(shared), worker, clock,
                      registry=WorkerRegistry(str(shared), clock, ttl_s=ttl),
                      lease_ttl_s=ttl, fault_gate=gate)


_RESULT_CACHE = {}


def _shard_result(job_spec, shard=0):
    """Memoized shard payload: the protocol tests race *bookkeeping*,
    and shard execution is deterministic (PR 9), so one solve per
    (spec, shard) serves every interleaving and crash point."""
    key = (job_spec.key, shard)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = execute_shard(job_spec.to_json(), shard)
    return _RESULT_CACHE[key]


def run_campaign(store, job_spec):
    """Drive one store through a whole campaign, single-mindedly."""
    job = job_spec.key
    store.submit(job_spec)
    while store.read_result(job) is None:
        claim = store.claim_shard(job)
        if claim is not None:
            store.publish_done(claim, _shard_result(job_spec, claim.shard))
            continue
        done = store.shards_done(job)
        if len(done) == job_spec.shards:
            merged = merge_shard_results(job_spec, done)
            store.publish_result(
                job, merged, max(d["token"] for d in done.values()))
    return store.read_result(job)


class TestClocks:
    def test_wall_expired_honours_skew_allowance(self):
        clock = FakeClock(start=1000.0)
        # A deadline 1s in the past is NOT expired under a 2s skew
        # allowance — another host's clock may legitimately sit there.
        assert not clock.wall_expired(clock.wall() - 1.0)
        assert clock.wall_expired(clock.wall() - 2.5)

    def test_fake_clock_advances_both_faces(self):
        clock = FakeClock(start=50.0)
        m0, w0 = clock.monotonic(), clock.wall()
        clock.advance(7.0)
        assert clock.monotonic() - m0 == pytest.approx(7.0)
        assert clock.wall() - w0 == pytest.approx(7.0)

    def test_skewed_clock_biases_wall_only(self):
        base = FakeClock(start=100.0)
        skewed = SkewedClock(base, bias_s=30.0)
        assert skewed.wall() - base.wall() == pytest.approx(30.0)
        assert skewed.monotonic() == pytest.approx(base.monotonic())

    def test_cross_host_skew_within_allowance_is_not_expiry(self):
        base = FakeClock(start=100.0)
        fast_host = SkewedClock(base, bias_s=1.5)  # < allowance (2s)
        deadline = base.wall() + 0.5
        assert not fast_host.wall_expired(deadline)
        far_host = SkewedClock(base, bias_s=10.0)
        assert far_host.wall_expired(deadline)

    def test_real_clock_source_validates_allowance(self):
        with pytest.raises(FleetError):
            ClockSource(skew_allowance_s=-1.0)


class TestFencingHelpers:
    def test_stamp_rejects_tokenless_records(self):
        with pytest.raises(FleetError):
            stamp({}, job="a" * 8, shard=0, token=0, worker="w", epoch=1)

    def test_stamp_adds_identity_without_mutating_input(self):
        rec = {"x": 1}
        out = stamp(rec, job="a" * 8, shard=3, token=2, worker="w", epoch=1)
        assert out["token"] == 2 and out["shard"] == 3
        assert rec == {"x": 1}

    def test_exclusive_create_is_first_writer_wins(self, tmp_path):
        path = str(tmp_path / "done.rec")
        assert create_sealed_exclusive(path, {"winner": "a"})
        assert not create_sealed_exclusive(path, {"winner": "b"})
        assert read_sealed(path)["winner"] == "a"

    def test_read_sealed_degrades_corruption_to_absent(self, tmp_path):
        path = str(tmp_path / "lease.rec")
        assert read_sealed(path) is None  # missing
        publish_sealed(path, {"token": 1})
        with open(path, "rb") as fh:
            raw = fh.read()
        with open(path, "wb") as fh:  # torn mid-write
            fh.write(raw[: len(raw) // 2])
        assert read_sealed(path) is None
        with open(path, "wb") as fh:  # flipped bytes, right length
            fh.write(b"\xff" * len(raw))
        assert read_sealed(path) is None


class TestWorkerRegistry:
    def test_reregistration_bumps_epoch(self, tmp_path):
        clock = FakeClock()
        reg = WorkerRegistry(str(tmp_path), clock, ttl_s=5.0)
        first = reg.register("alpha")
        second = reg.register("alpha")
        assert second.epoch == first.epoch + 1
        assert reg.current_epoch("alpha") == second.epoch

    def test_liveness_expires_without_heartbeats(self, tmp_path):
        clock = FakeClock()
        reg = WorkerRegistry(str(tmp_path), clock, ttl_s=5.0)
        rec = reg.register("alpha")
        assert reg.is_live("alpha")
        clock.advance(4.0)
        reg.heartbeat("alpha", rec.epoch)
        clock.advance(4.0)
        assert reg.is_live("alpha")  # heartbeat pushed the horizon
        clock.advance(10.0)
        assert not reg.is_live("alpha")

    def test_members_and_live_map(self, tmp_path):
        clock = FakeClock()
        reg = WorkerRegistry(str(tmp_path), clock, ttl_s=5.0)
        reg.register("alpha")
        reg.register("beta")
        clock.advance(10.0)
        reg.heartbeat("beta", reg.current_epoch("beta"))
        live = reg.live_map()
        assert live == {"alpha": False, "beta": True}
        assert sorted(m.worker for m in reg.members()) == ["alpha", "beta"]

    def test_rejects_hostile_worker_names(self, tmp_path):
        clock = FakeClock()
        reg = WorkerRegistry(str(tmp_path), clock, ttl_s=5.0)
        with pytest.raises(FleetError):
            reg.register("../escape")


class TestFleetStoreProtocol:
    def test_submit_is_first_writer_wins(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        a.enlist(), b.enlist()
        assert a.submit(spec())
        assert not b.submit(spec())  # dedupe, not a fork

    def test_claims_hand_out_shards_in_index_order_once(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        store.enlist()
        store.submit(spec(shards=2))
        job = spec(shards=2).key
        first, second = store.claim_shard(job), store.claim_shard(job)
        assert (first.shard, second.shard) == (0, 1)
        assert first.token == 1 and second.token == 1
        assert store.claim_shard(job) is None  # all leased

    def test_expired_lease_reclaims_under_higher_token(self, tmp_path):
        clock = FakeClock()
        stale = make_store(tmp_path, "stale", clock, ttl=2.0)
        peer = make_store(tmp_path, "peer", clock, ttl=2.0)
        stale.enlist(), peer.enlist()
        stale.submit(spec(shards=1))
        job = spec(shards=1).key
        old = stale.claim_shard(job)
        clock.advance(60.0)
        peer.heartbeat()
        new = peer.claim_shard(job)
        assert new.shard == old.shard and new.token > old.token
        result = _shard_result(spec(shards=1))
        assert peer.publish_done(new, result)
        with pytest.raises(StaleTokenError):
            stale.publish_done(old, result)

    def test_same_token_replay_is_a_dedupe_not_a_conflict(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        store.enlist()
        store.submit(spec(shards=1))
        job = spec(shards=1).key
        claim = store.claim_shard(job)
        result = _shard_result(spec(shards=1))
        assert store.publish_done(claim, result)
        # A rejoining worker replaying its own landed completion.
        assert not store.publish_done(claim, result)

    def test_orphaned_claim_is_immediately_reclaimable(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock, ttl=100.0)
        b = make_store(tmp_path, "b", clock, ttl=100.0)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        # "a" dies between winning the token marker and writing the
        # lease: simulate by claiming the marker directly.
        assert a._claim_token(job, 0) == 1
        claim = b.claim_shard(job)  # no TTL wait — marker > lease token
        assert claim is not None and claim.token == 2

    def test_dead_owner_epoch_bump_fences_old_completion(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock, ttl=100.0)
        b = make_store(tmp_path, "b", clock, ttl=100.0)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        old = a.claim_shard(job)
        # "a" restarts: re-enlisting bumps the registry epoch, which
        # makes its pre-restart lease reclaimable without any TTL.
        a.enlist()
        claim = b.claim_shard(job)
        assert claim is not None and claim.token > old.token

    def test_renew_pushes_deadline_and_rejects_stale(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock, ttl=5.0)
        peer = make_store(tmp_path, "b", clock, ttl=5.0)
        store.enlist(), peer.enlist()
        store.submit(spec(shards=1))
        job = spec(shards=1).key
        claim = store.claim_shard(job)
        clock.advance(3.0)
        renewed = store.renew(claim)
        assert renewed.deadline_wall > claim.deadline_wall
        clock.advance(60.0)
        peer.heartbeat()
        peer.claim_shard(job)
        with pytest.raises(StaleTokenError):
            store.renew(renewed)

    def test_stale_renew_cannot_clobber_newer_lease(self, tmp_path):
        """A renewer that loses the token race after its staleness
        check passed writes only to its own token's lease path — the
        newer owner's lease survives and no third worker sees a
        spuriously orphaned shard."""
        clock = FakeClock()
        stale = make_store(tmp_path, "stale", clock, ttl=2.0)
        owner = make_store(tmp_path, "owner", clock, ttl=2.0)
        peer = make_store(tmp_path, "peer", clock, ttl=2.0)
        for s in (stale, owner, peer):
            s.enlist()
        stale.submit(spec(shards=1))
        job = spec(shards=1).key
        old = stale.claim_shard(job)
        clock.advance(60.0)
        owner.heartbeat(), peer.heartbeat()
        new = owner.claim_shard(job)
        assert new.token > old.token
        # Simulate the lost interleaving: the stale renewer's write
        # lands *after* the new owner's lease.  Per-token paths mean it
        # cannot touch the newer record.
        stale._publish_lease(old)
        lease = peer.read_lease(job, 0)
        assert lease["token"] == new.token and lease["worker"] == "owner"
        assert peer.claim_shard(job) is None  # owner not spuriously fenced

    def test_unknown_job_reads_as_token_zero(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        assert store.current_token("deadbeef", 0) == 0
        assert store.granted_tokens("deadbeef", 0) == []

    def test_partial_store_failure_propagates_from_token_reads(
            self, tmp_path, monkeypatch):
        """Reads failing while writes still land must NOT read as
        'token zero' — that would skip the staleness check and let a
        fenced-out worker renew or publish as if no newer token
        existed.  The OSError propagates and the daemon partitions."""
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        store.enlist()
        store.submit(spec(shards=1))
        job = spec(shards=1).key
        claim = store.claim_shard(job)
        real_listdir = os.listdir

        def failing(path):
            if "tokens" in str(path):
                raise OSError("injected I/O error")
            return real_listdir(path)

        monkeypatch.setattr(os, "listdir", failing)
        with pytest.raises(OSError):
            store.renew(claim)
        with pytest.raises(OSError):
            store.publish_done(claim, _shard_result(spec(shards=1)))

    def test_hedge_publish_loses_to_landed_completion(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        claim = a.claim_shard(job)
        result = _shard_result(spec(shards=1))
        a.publish_done(claim, result)
        assert b.hedge_publish(job, 0, result) is None

    def test_hedge_publish_wins_over_a_stalled_primary(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        a.claim_shard(job)  # primary stalls, never publishes
        result = _shard_result(spec(shards=1))
        hedged = b.hedge_publish(job, 0, result)
        assert hedged is not None and hedged.worker == "b"
        assert b.read_done(job, 0)["worker"] == "b"

    def test_mid_hedge_shard_is_not_an_orphaned_claim(self, tmp_path,
                                                      monkeypatch):
        """Between the hedge's token claim and its done create, peers
        must see an ordinary live lease — not an orphaned marker they
        would instantly reclaim (fencing the hedge for nothing)."""
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        c = make_store(tmp_path, "c", clock)
        for s in (a, b, c):
            s.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        a.claim_shard(job)  # healthy primary, mid-run
        result = _shard_result(spec(shards=1))
        observed = {}
        real_publish_done = b.publish_done

        def peer_scans_mid_hedge(claim, res):
            observed["peer_claim"] = c.claim_shard(job)
            return real_publish_done(claim, res)

        monkeypatch.setattr(b, "publish_done", peer_scans_mid_hedge)
        hedged = b.hedge_publish(job, 0, result)
        assert observed["peer_claim"] is None
        assert hedged is not None and hedged.worker == "b"

    def test_hedge_losing_the_token_race_is_a_loss_not_an_error(
            self, tmp_path, monkeypatch):
        """A reclaim squeezed into the hedge's marker-to-done window
        fences the hedge; that is a normal 'hedge lost' outcome and
        must not escape as StaleTokenError (it would kill the caller's
        claim loop)."""
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        a.claim_shard(job)
        result = _shard_result(spec(shards=1))

        def fenced(claim, res):
            raise StaleTokenError("fenced mid-hedge", token=claim.token,
                                  current=claim.token + 1)

        monkeypatch.setattr(b, "publish_done", fenced)
        assert b.hedge_publish(job, 0, result) is None

    def test_result_is_first_merger_wins(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", clock)
        b = make_store(tmp_path, "b", clock)
        a.enlist(), b.enlist()
        a.submit(spec(shards=1))
        job = spec(shards=1).key
        assert a.publish_result(job, {"carved_sha256": "x"}, token=1)
        assert not b.publish_result(job, {"carved_sha256": "y"}, token=1)
        assert a.read_result(job)["carved_sha256"] == "x"

    def test_campaign_matches_reference_and_audits_clean(self, tmp_path):
        job_spec = spec(shards=2)
        reference = run_sharded_reference(job_spec)
        clock = FakeClock()
        store = make_store(tmp_path, "solo", clock)
        store.enlist()
        merged = run_campaign(store, job_spec)
        assert merged["carved_sha256"] == reference["carved_sha256"]
        audit = store.token_audit(job_spec.key)
        assert audit["ok"], audit
        assert all(s["landed_events"] == 1 for s in audit["shards"])

    def test_audit_forgives_crash_between_done_record_and_event(
            self, tmp_path, monkeypatch):
        """A worker dying between landing the done record and appending
        its 'done' event leaves zero 'done' events forever; its rejoin
        replay logs 'done-dedup' under the same (token, worker), which
        the audit accepts as the exactly-one-done attestation."""
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        store.enlist()
        store.submit(spec(shards=1))
        job = spec(shards=1).key
        claim = store.claim_shard(job)
        result = _shard_result(spec(shards=1))
        real_event = store._event

        def crashed_before_event(op, jb, shard, token):
            if op == "done":
                return  # died between the create and the append
            real_event(op, jb, shard, token)

        monkeypatch.setattr(store, "_event", crashed_before_event)
        assert store.publish_done(claim, result)
        monkeypatch.undo()
        assert not store.publish_done(claim, result)  # the rejoin replay
        audit = store.token_audit(job)
        assert audit["ok"], audit
        assert audit["shards"][0]["landed_events"] == 0
        assert audit["shards"][0]["dedup_attested"] is True

    def test_bad_job_keys_and_unsharded_specs_rejected(self, tmp_path):
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock)
        store.enlist()
        with pytest.raises(FleetError):
            store.claim_shard("../../etc")
        with pytest.raises(FleetError):
            store.submit(JobSpec(program="CS", dims=DIMS, seed=0,
                                 max_iter=12))


#: The interleaving alphabet: which worker acts, and how.  "expire"
#: advances the fake clock past every lease + heartbeat horizon, so
#: both workers look dead and all leases look stale — the harshest
#: reordering the protocol must absorb.
ACTIONS = st.lists(
    st.sampled_from(["a:claim", "b:claim", "a:publish", "b:publish",
                     "a:beat", "b:beat", "expire"]),
    min_size=1, max_size=14,
)


class TestInterleavedFencedWrites:
    @given(actions=ACTIONS)
    @settings(max_examples=30, deadline=None)
    def test_exactly_one_token_valid_completion(self, tmp_path_factory,
                                                actions):
        tmp_path = tmp_path_factory.mktemp("fleet-interleave")
        job_spec = spec(shards=1)
        job = job_spec.key
        # The shard payload is deterministic (PR 9), so compute it once:
        # the property is about the *protocol*, not the solver.
        result = _shard_result(job_spec)
        clock = FakeClock()
        stores = {"a": make_store(tmp_path, "a", clock, ttl=2.0),
                  "b": make_store(tmp_path, "b", clock, ttl=2.0)}
        held = {"a": None, "b": None}
        for store in stores.values():
            store.enlist()
        stores["a"].submit(job_spec)
        for action in actions:
            if action == "expire":
                clock.advance(60.0)
                continue
            who, what = action.split(":")
            store = stores[who]
            if what == "beat":
                store.heartbeat()
            elif what == "claim" and held[who] is None:
                held[who] = store.claim_shard(job)
            elif what == "publish" and held[who] is not None:
                try:
                    store.publish_done(held[who], result)
                except StaleTokenError:
                    pass  # fenced out whole — exactly the contract
                held[who] = None
        # Whatever the interleaving left behind, a live worker finishes.
        finisher = stores["a"]
        finisher.heartbeat()
        while finisher.read_done(job, 0) is None:
            claim = finisher.claim_shard(job)
            if claim is None:
                clock.advance(60.0)
                finisher.heartbeat()
                continue
            try:
                finisher.publish_done(claim, result)
            except StaleTokenError:
                pass
        done = finisher.shards_done(job)
        merged = merge_shard_results(job_spec, done)
        reference = run_sharded_reference(job_spec)
        assert merged["carved_sha256"] == reference["carved_sha256"]
        audit = finisher.token_audit(job)
        assert audit["ok"], audit
        assert audit["shards"][0]["landed_events"] == 1


class TestCrashPointReplay:
    def _count_ops(self, tmp_path):
        """A no-fault campaign, counting every shared-store operation."""
        counter = GateCrashPoint(crash_on_op=10_000)  # never fires
        clock = FakeClock()
        store = make_store(tmp_path / "probe", "probe", clock, gate=counter)
        store.enlist()
        run_campaign(store, spec(shards=2))
        return counter.calls

    def test_survivor_completes_from_every_crash_point(self, tmp_path):
        """Crash worker "a" at the n-th store operation, for every n a
        campaign performs; worker "b" must always finish bit-identical
        to the reference with a clean token audit."""
        job_spec = spec(shards=2)
        reference = run_sharded_reference(job_spec)
        total_ops = self._count_ops(tmp_path)
        assert total_ops >= 8  # enlist, submit, claims, publishes, merge
        for crash_on in range(1, total_ops + 1):
            shared = tmp_path / f"crash-{crash_on:02d}"
            clock = FakeClock()
            doomed = make_store(shared, "doomed", clock, ttl=2.0,
                                gate=GateCrashPoint(crash_on))
            with pytest.raises(InjectedFault):
                doomed.enlist()
                run_campaign(doomed, job_spec)
            survivor = make_store(shared, "survivor", clock, ttl=2.0)
            clock.advance(60.0)  # the dead worker's leases all expire
            survivor.enlist()
            merged = run_campaign(survivor, job_spec)
            assert merged["carved_sha256"] == reference["carved_sha256"], \
                f"diverged after crash at op {crash_on}"
            audit = survivor.token_audit(job_spec.key)
            assert audit["ok"], (crash_on, audit)


class TestPartitionGate:
    def test_partitioned_store_raises_oserror_everywhere(self, tmp_path):
        gate = PartitionGate()
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock, gate=gate)
        store.enlist()
        store.submit(spec(shards=1))
        gate.begin()
        for op in (store.enlist, lambda: store.claim_shard(spec().key),
                   store.heartbeat, store.jobs):
            with pytest.raises(OSError):
                op()
        gate.heal()
        assert store.jobs() == [spec(shards=1).key]

    def test_heal_after_auto_heals(self, tmp_path):
        gate = PartitionGate(heal_after=3)
        gate.begin()
        clock = FakeClock()
        store = make_store(tmp_path, "a", clock, gate=gate)
        failures = 0
        for _ in range(10):
            try:
                store.jobs()
                break
            except OSError:
                failures += 1
        assert failures == 2  # third blocked call heals the gate
        assert not gate.partitioned
