"""Daemon-level sharded campaigns: recovery, hedging, PARTIAL, streaming.

Like ``test_daemon.py`` these run ``supervised=False`` so shards execute
inline on worker threads; the forked/SIGKILL paths are exercised by the
service chaos drills.
"""

import queue
import threading
import time

import pytest

from repro.errors import (
    JobRejectedError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.resilience.retry import RetryPolicy
from repro.service import (
    JobSpec,
    KondoService,
    ServiceClient,
    missing_theta_manifest,
    plan_shards,
    run_sharded_reference,
)

DIMS = (16, 16)

FAST_RETRY = RetryPolicy(retries=2, backoff_s=0.01, backoff_factor=2.0,
                         backoff_max_s=0.02, jitter="full")


def spec(seed=0, shards=4, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=12,
                   shards=shards, **kw)


def make_service(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("queue_limit", 4)
    kw.setdefault("retry_policy", FAST_RETRY)
    kw.setdefault("drain_timeout_s", 10.0)
    return KondoService(str(tmp_path), supervised=False, **kw)


def client_of(svc, timeout_s=5.0):
    return ServiceClient(svc.socket_path, timeout_s=timeout_s)


class TestShardedCampaign:
    def test_sharded_result_is_bit_identical_to_reference(self, tmp_path):
        reference = run_sharded_reference(spec(shards=1))
        svc = make_service(tmp_path).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=4))["job"]
            final = client.wait_for(job, timeout_s=60.0)
            assert final["state"] == "done"
            assert final["result"] == reference
            for i in range(4):
                assert svc.store.shard_done_count(job, i) == 1
        finally:
            svc.abort()

    def test_status_lists_per_shard_progress(self, tmp_path):
        svc = make_service(tmp_path).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=4))["job"]
            client.wait_for(job, timeout_s=60.0)
            status = client.status(job)
            shards = status["shards"]
            assert [s["shard"] for s in shards] == [0, 1, 2, 3]
            assert all(s["state"] == "done" for s in shards)
        finally:
            svc.abort()

    def test_expired_shard_lease_requeues_only_that_shard(self, tmp_path):
        # Shard 1's first attempt parks past the lease TTL; the sweeper
        # expires it and only shard 1 is retried.
        parked = threading.Event()
        release = threading.Event()
        seen = []
        lock = threading.Lock()

        def runner(spec_json, shard, progress=None):
            with lock:
                seen.append(shard)
                first = seen.count(shard) == 1
            if shard == 1 and first:
                parked.set()
                release.wait(timeout=30.0)
            from repro.service.shards import execute_shard
            return execute_shard(spec_json, shard)

        svc = make_service(tmp_path, shard_runner=runner,
                           lease_ttl_s=0.2).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=3))["job"]
            assert parked.wait(timeout=10.0)
            final = client.wait_for(job, timeout_s=60.0)
            release.set()
            assert final["state"] == "done"
            assert final["result"] == run_sharded_reference(spec(shards=1))
            view = svc.store.view(job)
            assert view.shards[1].verdicts == ["LEASE-EXPIRED"]
            assert "shard1:LEASE-EXPIRED" in view.verdicts
            assert view.shards[0].verdicts == []
            assert view.shards[2].verdicts == []
            assert all(svc.store.shard_done_count(job, i) == 1
                       for i in range(3))
        finally:
            release.set()
            svc.abort()

    def test_straggler_hedge_first_completion_wins(self, tmp_path):
        # Shard 0's primary parks; the straggler sweeper launches a
        # hedge which finishes first, and the result is still
        # bit-identical (no double-counted shard).
        parked = threading.Event()
        release = threading.Event()
        first = threading.Lock()
        claimed = []

        def runner(spec_json, shard, progress=None):
            if shard == 0:
                with first:
                    mine = not claimed
                    claimed.append(1)
                if mine:
                    parked.set()
                    release.wait(timeout=30.0)
            from repro.service.shards import execute_shard
            return execute_shard(spec_json, shard)

        svc = make_service(tmp_path, shard_runner=runner,
                           hedge_after_s=0.2, lease_ttl_s=30.0).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=2))["job"]
            assert parked.wait(timeout=10.0)
            final = client.wait_for(job, timeout_s=60.0)
            assert final["state"] == "done"
            assert final["result"] == run_sharded_reference(spec(shards=1))
            hedged = [r for r in svc.store.records
                      if r["op"] == "slease" and r.get("hedge")]
            assert [r["shard"] for r in hedged] == [0]
            assert svc.store.shard_done_count(job, 0) == 1
            # The revoked straggler burned no retry budget.
            assert svc.store.view(job).shards[0].verdicts == []
        finally:
            release.set()
            svc.abort()

    def test_dead_shard_yields_partial_with_manifest(self, tmp_path):
        def runner(spec_json, shard, progress=None):
            if shard == 2:
                raise ValueError("synthetic shard fault")
            from repro.service.shards import execute_shard
            return execute_shard(spec_json, shard)

        svc = make_service(tmp_path, shard_runner=runner).start()
        try:
            client = client_of(svc)
            s = spec(shards=4)
            job = client.submit(s)["job"]
            final = client.wait_for(job, timeout_s=60.0)
            assert final["state"] == "partial"
            result = final["result"]
            assert result["partial"] is True
            assert result["missing"] == missing_theta_manifest(
                plan_shards(s), [2])
            # PARTIAL is not deduped: a resubmission must re-run.
            assert svc.store.cached_result(job) is None
        finally:
            svc.abort()

    def test_all_shards_dead_is_a_dead_job(self, tmp_path):
        def runner(spec_json, shard, progress=None):
            raise ValueError("synthetic shard fault")

        svc = make_service(tmp_path, shard_runner=runner).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=2))["job"]
            final = client.wait_for(job, timeout_s=60.0)
            assert final["state"] == "dead"
            assert "ALL-SHARDS-DEAD" in final["verdicts"]
        finally:
            svc.abort()

    def test_restart_requeues_only_lost_shards(self, tmp_path):
        # First daemon: shard 0 lands, then the daemon dies abruptly
        # with shard 1 leased.  The restarted daemon re-runs only the
        # lost shards and the merged result matches the reference.
        landed = threading.Event()
        hang = threading.Event()

        def crashy(spec_json, shard, progress=None):
            from repro.service.shards import execute_shard
            if shard == 0:
                out = execute_shard(spec_json, shard)
                landed.set()
                return out
            hang.wait(timeout=30.0)
            raise ValueError("daemon died first")

        svc = make_service(tmp_path, workers=1, shard_runner=crashy).start()
        job = client_of(svc).submit(spec(shards=3))["job"]
        assert landed.wait(timeout=30.0)
        deadline = time.monotonic() + 10.0
        while (svc.store.shard_done_count(job, 0) < 1
               and time.monotonic() < deadline):
            time.sleep(0.02)
        hang.set()
        svc.abort()

        runs = []

        def counting(spec_json, shard, progress=None):
            runs.append(shard)
            from repro.service.shards import execute_shard
            return execute_shard(spec_json, shard)

        svc2 = make_service(tmp_path, shard_runner=counting).start()
        try:
            final = client_of(svc2).wait_for(job, timeout_s=60.0)
            assert final["state"] == "done"
            assert final["result"] == run_sharded_reference(spec(shards=1))
            assert 0 not in runs  # the landed shard was never re-run
            assert sorted(set(runs)) == [1, 2]
        finally:
            svc2.abort()


class TestStreamingProgress:
    def test_follow_streams_shard_events_to_the_end(self, tmp_path):
        svc = make_service(tmp_path).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=2))["job"]
            kinds = []
            for ev in client.follow(job, timeout_s=60.0):
                if ev.get("kind") == "keepalive":
                    continue
                kinds.append(ev["kind"])
                if ev["kind"] == "end":
                    assert ev["state"] == "done"
            assert kinds[0] == "submitted"
            assert kinds.count("shard-done") == 2
            assert "done" in kinds
            assert kinds[-1] == "end"
            # Events arrive in sequence order, no duplicates.
            seqs = [e["seq"] for e in svc._events[job]]
            assert seqs == sorted(set(seqs))
        finally:
            svc.abort()

    def test_follow_unknown_job_is_rejected(self, tmp_path):
        svc = make_service(tmp_path).start()
        try:
            with pytest.raises(JobRejectedError) as exc:
                list(client_of(svc).follow("no-such-job", timeout_s=5.0))
            assert exc.value.code == "UNKNOWN-JOB"
        finally:
            svc.abort()

    def test_offer_drops_oldest_when_follower_is_full(self):
        follower = queue.Queue(maxsize=3)
        for i in range(8):
            KondoService._offer(follower, {"seq": i})
        drained = []
        while not follower.empty():
            drained.append(follower.get_nowait()["seq"])
        assert drained == [5, 6, 7]  # oldest dropped, newest kept

    def test_event_buffer_is_bounded_per_job(self, tmp_path):
        svc = make_service(tmp_path, workers=0, event_buffer=4)
        job = "j-bounded"
        for i in range(10):
            svc._publish(job, "tick", i=i)
        buffered = list(svc._events[job])
        assert len(buffered) == 4
        assert [e["i"] for e in buffered] == [6, 7, 8, 9]
        # Seq numbers keep counting even through drops.
        assert buffered[-1]["seq"] == 10


class TestClientResilience:
    def test_unreachable_daemon_is_a_typed_error(self, tmp_path):
        client = ServiceClient(str(tmp_path / "absent.sock"),
                               timeout_s=0.5)
        with pytest.raises(ServiceUnavailableError):
            client.ping()
        # The typed error still satisfies pre-existing handlers.
        assert issubclass(ServiceUnavailableError, ServiceProtocolError)

    def test_wait_for_uses_full_jitter_with_a_hard_deadline(self, tmp_path):
        svc = make_service(tmp_path, workers=0).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=0))["job"]
            naps = []

            def fake_sleep(s):
                naps.append(s)

            with pytest.raises(ServiceError, match="still"):
                client.wait_for(job, timeout_s=1.0, poll_s=0.05,
                                sleep=fake_sleep)
            assert naps, "wait_for never backed off"
            # Full jitter: delays vary below the doubling cap.
            caps = [min(0.05 * 2 ** min(i, 16), 2.0)
                    for i in range(len(naps))]
            assert all(0.0 <= n <= c + 1e-9
                       for n, c in zip(naps, caps))
            assert len(set(naps)) > 1
            # Every delay is clamped to the remaining deadline budget.
            assert all(n <= 1.0 + 1e-9 for n in naps)
        finally:
            svc.abort()

    def test_wait_for_is_deterministic_per_job(self, tmp_path):
        svc = make_service(tmp_path, workers=0).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(shards=0))["job"]
            runs = []
            for _ in range(2):
                naps = []
                with pytest.raises(ServiceError, match="still"):
                    client.wait_for(job, timeout_s=0.5, poll_s=0.05,
                                    sleep=naps.append)
                runs.append(naps)
            # The jitter stream is seeded by the job id; the deadline
            # clamp depends on real elapsed time, so compare only the
            # early, unclamped draws.
            assert runs[0][:3] == runs[1][:3]
        finally:
            svc.abort()
