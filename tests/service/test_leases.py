"""Lease grant/heartbeat/expiry with an injected clock — no sleeping."""

import pytest

from repro.errors import ServiceError
from repro.service import LeaseManager


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def leases(clock):
    return LeaseManager(ttl_s=10.0, clock=clock)


class TestGrant:
    def test_grant_claims_a_job(self, leases):
        lease = leases.grant("job-a", "w0")
        assert lease.job_id == "job-a"
        assert leases.for_job("job-a") is lease
        assert leases.count == 1

    def test_one_live_lease_per_job(self, leases):
        leases.grant("job-a", "w0")
        with pytest.raises(ServiceError, match="already leased"):
            leases.grant("job-a", "w1")

    def test_release_frees_the_job(self, leases):
        lease = leases.grant("job-a", "w0")
        leases.release(lease.lease_id)
        assert leases.for_job("job-a") is None
        leases.grant("job-a", "w1")  # re-claimable

    def test_lease_ids_are_unique(self, leases):
        a = leases.grant("job-a", "w0")
        leases.release(a.lease_id)
        b = leases.grant("job-a", "w0")
        assert a.lease_id != b.lease_id


class TestExpiry:
    def test_unbeaten_lease_expires_after_ttl(self, leases, clock):
        lease = leases.grant("job-a", "w0")
        clock.now = 9.9
        assert leases.expired() == []
        clock.now = 10.0
        assert leases.expired() == [lease]
        assert leases.count == 0
        assert leases.for_job("job-a") is None

    def test_heartbeat_extends_the_lease(self, leases, clock):
        lease = leases.grant("job-a", "w0")
        clock.now = 8.0
        assert leases.heartbeat(lease.lease_id)
        clock.now = 17.9  # inside the refreshed window
        assert leases.expired() == []
        clock.now = 18.0
        assert [l.lease_id for l in leases.expired()] == [lease.lease_id]

    def test_heartbeat_after_expiry_reports_dead(self, leases, clock):
        lease = leases.grant("job-a", "w0")
        clock.now = 30.0
        leases.expired()
        assert not leases.heartbeat(lease.lease_id)

    def test_expiry_only_collects_the_overdue(self, leases, clock):
        old = leases.grant("job-a", "w0")
        clock.now = 8.0
        fresh = leases.grant("job-b", "w1")
        clock.now = 12.0
        assert leases.expired() == [old]
        assert leases.for_job("job-b") is fresh

    def test_beats_are_counted(self, leases):
        lease = leases.grant("job-a", "w0")
        for _ in range(3):
            leases.heartbeat(lease.lease_id)
        assert lease.beats == 3


class TestChildPid:
    def test_child_pid_pins_onto_the_lease(self, leases):
        lease = leases.grant("job-a", "w0")
        leases.set_child_pid(lease.lease_id, 4242)
        assert leases.for_job("job-a").child_pid == 4242

    def test_set_pid_on_dead_lease_is_a_noop(self, leases):
        leases.set_child_pid("L999999", 4242)  # must not raise


class TestValidation:
    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ServiceError):
            LeaseManager(ttl_s=0.0)
