"""Sharded campaigns: planner determinism, N-invariance, shard journal.

The hypothesis properties here pin the tentpole contract: the sharded
campaign's merged output equals the shard-count-1 run bit-identically
for *arbitrary* shard counts, the merge is order-free, and a shard
journal cut at ANY byte recovers to old-or-new state with every landed
``sdone`` preserved (lost shards — and only lost shards — requeue).
"""

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.resilience.durability.records import parse_log
from repro.service import JobSpec, JobStore
from repro.service.shards import (
    DEFAULT_SLICES,
    ShardPlanner,
    decode_runs,
    derive_slice_seed,
    encode_runs,
    execute_shard,
    merge_shard_results,
    missing_theta_manifest,
    plan_shards,
    run_sharded_reference,
)

DIMS = (16, 16)
MAX_ITER = 12


def spec(shards=4, seed=3, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=MAX_ITER,
                   shards=shards, **kw)


class TestShardPlanner:
    def test_plan_is_deterministic(self):
        a = ShardPlanner().plan(spec())
        b = ShardPlanner().plan(spec())
        assert a == b
        assert a.to_json() == b.to_json()

    def test_slice_grid_is_shard_count_invariant(self):
        # The slice set depends only on the spec's Θ, never on N —
        # the property that makes the merged result N-invariant.
        grids = {n: plan_shards(spec(shards=n)).slices
                 for n in (1, 2, 5, 16, 64)}
        reference = grids.pop(1)
        assert all(g == reference for g in grids.values())

    def test_slices_partition_the_iteration_budget(self):
        plan = plan_shards(spec())
        assert sum(s.max_iter for s in plan.slices) == MAX_ITER
        assert all(s.max_iter >= 1 for s in plan.slices)
        # Strided grouping: every slice belongs to exactly one shard.
        owned = [s.index for i in range(plan.n_shards)
                 for s in plan.shard_slices(i)]
        assert sorted(owned) == [s.index for s in plan.slices]

    def test_slice_seeds_derive_from_the_job_key(self):
        plan = plan_shards(spec())
        for s in plan.slices:
            assert s.seed == derive_slice_seed(plan.job_key, s.index)
        # A different Θ is a different key, hence different seeds.
        other = plan_shards(spec(seed=4))
        assert other.slices[0].seed != plan.slices[0].seed

    def test_shard_count_clamped_to_slice_count(self):
        tiny = JobSpec(program="CS", dims=DIMS, max_iter=3, shards=64)
        plan = plan_shards(tiny)
        assert len(plan.slices) == 3
        assert plan.n_shards == 3

    def test_slice_count_capped(self):
        big = JobSpec(program="CS", dims=DIMS, max_iter=500, shards=2)
        assert len(plan_shards(big).slices) == DEFAULT_SLICES

    def test_shard_index_bounds_checked(self):
        plan = plan_shards(spec(shards=2))
        with pytest.raises(ServiceError, match="out of range"):
            plan.shard_slices(2)

    def test_sharded_is_part_of_theta_but_count_is_not(self):
        unsharded = JobSpec(program="CS", dims=DIMS, max_iter=MAX_ITER)
        assert spec(shards=2).key == spec(shards=7).key
        assert spec(shards=2).key != unsharded.key

    def test_shards_out_of_range_rejected(self):
        from repro.errors import JobRejectedError

        with pytest.raises(JobRejectedError, match="shards"):
            JobSpec(program="CS", dims=DIMS, shards=65)


class TestRunCodec:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2000),
                    max_size=200))
    def test_roundtrip_is_sorted_unique_identity(self, offsets):
        runs = encode_runs(np.asarray(offsets, dtype=np.int64))
        back = decode_runs(runs)
        assert np.array_equal(back, np.unique(offsets).astype(np.int64))

    def test_canonical_encoding(self):
        # Same offset *set*, any order/duplication → same encoding.
        assert encode_runs([5, 1, 2, 3, 5]) == encode_runs([1, 2, 3, 5])
        assert encode_runs([0, 1, 2, 7]) == [[0, 3], [7, 1]]
        assert encode_runs([]) == []
        assert decode_runs([]).size == 0


class _Reference:
    """The no-fault sharded run, computed once for the whole module."""

    RESULT = None
    SHARDS = None

    @classmethod
    def get(cls):
        if cls.RESULT is None:
            s = spec(shards=1)
            cls.RESULT = run_sharded_reference(s)
            plan = plan_shards(spec(shards=4))
            cls.SHARDS = {
                i: execute_shard(spec(shards=4).to_json(), i)
                for i in range(plan.n_shards)
            }
        return cls.RESULT, cls.SHARDS


class TestNInvariance:
    """sharded(N) output == sharded(1) output bit-identically, any N."""

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(min_value=1, max_value=MAX_ITER))
    def test_any_shard_count_is_bit_identical(self, n):
        reference, _ = _Reference.get()
        assert run_sharded_reference(spec(shards=n)) == reference

    def test_retried_shard_is_bit_identical(self):
        # The recovery guarantee rests on re-execution determinism.
        _, shards = _Reference.get()
        again = execute_shard(spec(shards=4).to_json(), 2)
        assert again == shards[2]

    def test_merge_is_order_free(self):
        reference, shards = _Reference.get()
        shuffled = {i: shards[i] for i in (3, 0, 2, 1)}
        assert merge_shard_results(spec(shards=4), shuffled) == reference

    def test_merged_result_carries_no_timings(self):
        reference, shards = _Reference.get()
        assert "elapsed" not in reference
        assert all("elapsed" not in r for r in shards.values())


class TestPartialManifest:
    def test_manifest_names_exactly_the_dead_shards_slices(self):
        s = spec(shards=4)
        plan = plan_shards(s)
        manifest = missing_theta_manifest(plan, [3, 1])
        assert [m["shard"] for m in manifest] == [1, 3]
        for m in manifest:
            want = [sl.to_json() for sl in plan.shard_slices(m["shard"])]
            assert m["slices"] == want

    def test_partial_merge_marks_itself_and_unions_the_rest(self):
        reference, shards = _Reference.get()
        s = spec(shards=4)
        plan = plan_shards(s)
        done = {i: shards[i] for i in (0, 1, 3)}
        missing = missing_theta_manifest(plan, [2])
        partial = merge_shard_results(s, done, missing=missing)
        assert partial["partial"] is True
        assert [m["shard"] for m in partial["missing"]] == [2]
        # The partial cloud is a subset of the full union.
        assert partial["observed"] <= reference["observed"]


def shard_spec(**kw):
    return spec(shards=3, **kw)


class TestShardStore:
    def test_shard_lease_and_done(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        assert view.state == "running"
        assert view.shards[0].state == "leased"
        assert store.record_shard_done(job, 0, "L1", {"n_indices": 5})
        assert view.shards[0].state == "done"
        assert store.shard_done_count(job, 0) == 1

    def test_first_completion_wins(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        store.record_shard_lease(job, 0, "L2", "w1", hedge=True)
        assert store.record_shard_done(job, 0, "L2", {"winner": "hedge"})
        # The straggling primary reports in late: dropped.
        assert not store.record_shard_done(job, 0, "L1", {"loser": 1})
        assert view.shards[0].result == {"winner": "hedge"}
        assert store.shard_done_count(job, 0) == 1

    def test_hedge_requires_a_live_primary(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        with pytest.raises(ServiceError, match="not hedgeable"):
            store.record_shard_lease(view.job_id, 0, "L1", "w0",
                                     hedge=True)

    def test_one_lease_failure_keeps_shard_leased(self, tmp_path):
        # Losing one of the primary/hedge pair is not a requeue: the
        # other lease is still running the shard.
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        store.record_shard_lease(job, 0, "L2", "w1", hedge=True)
        state = store.record_shard_failure(job, 0, "L1", "SIGNALED")
        assert state == "leased"
        assert view.shards[0].hedge_lease_id == "L2"
        # Now the hedge dies too → requeue.
        state = store.record_shard_failure(job, 0, "L2", "SIGNALED")
        assert state == "queued"

    def test_stale_shard_failure_is_ignored(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        store.record_shard_done(job, 0, "L1", {"ok": 1})
        # A revoked loser's failure arrives after the shard sealed.
        state = store.record_shard_failure(job, 0, "L1", "SIGNALED")
        assert state == "done"
        assert view.shards[0].verdicts == []

    def test_retry_budget_dead_letters_the_shard(self, tmp_path):
        store = JobStore.open(str(tmp_path), retries=1)
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        assert store.record_shard_failure(job, 0, "L1", "TIMEOUT") \
            == "queued"
        store.record_shard_lease(job, 0, "L2", "w0")
        assert store.record_shard_failure(job, 0, "L2", "TIMEOUT") \
            == "dead"
        assert view.shards[0].state == "dead"
        # Other shards are untouched by one shard's death.
        store.record_shard_lease(job, 1, "L3", "w0")
        assert view.shards[1].state == "leased"

    def test_partial_seal_and_no_cache_spill(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        assert store.record_partial(job, {"partial": True})
        assert view.state == "partial"
        # PARTIAL results must not populate the dedupe cache.
        assert store.cached_result(job) is None
        # The seal is sticky: a second terminal write is refused.
        assert not store.record_merge(job, {"late": 1})

    def test_merge_seal_spills_to_cache(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        store.record_shard_done(job, 0, "L1", {"ok": 1})
        assert store.record_merge(job, {"merged": True})
        assert view.state == "done"
        assert store.cached_result(job) == {"merged": True}

    def test_recovery_requeues_only_lost_shards(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        view, _ = store.submit(shard_spec())
        job = view.job_id
        store.record_shard_lease(job, 0, "L1", "w0")
        store.record_shard_done(job, 0, "L1", {"ok": 1})
        store.record_shard_lease(job, 1, "L2", "w0")
        # Daemon dies here: shard 1 leased, shard 0 done, shard 2 untouched.
        again = JobStore.open(str(tmp_path))
        v = again.view(job)
        assert v.shards[0].state == "done"
        assert v.shards[0].result == {"ok": 1}
        assert v.shards[1].state == "queued"
        assert v.shards[1].lease_id is None
        assert job in again.recovered_jobs


def _build_sharded_journal(state_dir) -> tuple:
    """A representative sharded journal: leases, a hedge race, a
    failure, a dead-letter, a done shard, and a merged seal."""
    store = JobStore.open(state_dir, retries=1)
    a, _ = store.submit(shard_spec(seed=3))
    store.record_shard_lease(a.job_id, 0, "L1", "w0")
    store.record_shard_lease(a.job_id, 1, "L2", "w1")
    store.record_shard_lease(a.job_id, 1, "L3", "w0", hedge=True)
    store.record_shard_done(a.job_id, 1, "L3", {"cloud": [[0, 4]],
                                                "n_indices": 4})
    store.record_shard_failure(a.job_id, 0, "L1", "SIGNALED")
    store.record_shard_lease(a.job_id, 0, "L4", "w1")
    store.record_shard_done(a.job_id, 0, "L4", {"cloud": [[9, 2]],
                                                "n_indices": 2})
    store.record_shard_lease(a.job_id, 2, "L5", "w0")
    store.record_shard_failure(a.job_id, 2, "L5", "TIMEOUT")
    store.record_shard_lease(a.job_id, 2, "L6", "w0")
    store.record_shard_failure(a.job_id, 2, "L6", "TIMEOUT")  # -> dead
    store.record_partial(a.job_id, {"partial": True, "observed": 6})
    b, _ = store.submit(shard_spec(seed=4))
    store.record_shard_lease(b.job_id, 0, "L7", "w0")
    with open(store.log_path, "rb") as fh:
        raw = fh.read()
    return raw, store.records


class TestShardCrashPointProperty:
    """A shard journal cut at ANY byte recovers old-or-new, exactly-once."""

    RAW = None
    RECORDS = None

    @classmethod
    def _reference(cls):
        if cls.RAW is None:
            ref_dir = tempfile.mkdtemp(prefix="kondo-shard-ref-")
            try:
                cls.RAW, cls.RECORDS = _build_sharded_journal(ref_dir)
            finally:
                shutil.rmtree(ref_dir, ignore_errors=True)
        return cls.RAW, cls.RECORDS

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_recovery_is_a_record_prefix(self, data):
        raw, records = self._reference()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)),
                        label="crash byte")
        work = tempfile.mkdtemp(prefix="kondo-shard-cut-")
        try:
            with open(os.path.join(work, "jobs.log"), "wb") as fh:
                fh.write(raw[:cut])
            store = JobStore.open(work, retries=1)
            intact, _, _ = parse_log(raw[:cut])
            assert store.records == intact
            assert store.records == records[: len(store.records)]
            # Reopen is stable, shard-for-shard.
            again = JobStore.open(work, retries=1)
            assert {(j, i): sv.state
                    for j, v in again.jobs.items()
                    for i, sv in v.shards.items()} == \
                   {(j, i): sv.state
                    for j, v in store.jobs.items()
                    for i, sv in v.shards.items()}
            for view in store.jobs.values():
                # No lease survives the crash — at job or shard level.
                assert view.state != "leased"
                for sv in view.shards.values():
                    assert sv.state != "leased"
                    assert sv.lease_id is None
                    assert sv.hedge_lease_id is None
            # Every landed sdone is never lost, exactly-once per shard.
            for rec in intact:
                if rec["op"] == "sdone":
                    sv = store.view(rec["job"]).shards[rec["shard"]]
                    assert sv.state == "done"
                    assert sv.result == rec["result"]
                    assert store.shard_done_count(
                        rec["job"], rec["shard"]) == 1
        finally:
            shutil.rmtree(work, ignore_errors=True)
