"""Multi-daemon fleet campaigns over one shared store.

These run real :class:`FleetService` daemons (threads + unix sockets)
against a shared tmpdir, with short lease/registry TTLs so failover is
fast.  The two headline scenarios from the PR's acceptance criteria —
a daemon killed mid-campaign and a daemon partitioned from the store —
both must end with a merged digest bit-identical to the single-host
reference and a clean token audit (zero double-executed shards).
"""

import time

import pytest

from repro import cli
from repro.errors import FleetError, FleetPartitionedError
from repro.resilience.faults import PartitionGate
from repro.service import JobSpec, ServiceClient, run_sharded_reference
from repro.service.fleet import FleetService
from repro.service.shards import execute_shard

DIMS = (16, 16)


def spec(seed=0, shards=2, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=12,
                   shards=shards, **kw)


def make_daemon(tmp_path, name, **kw):
    kw.setdefault("lease_ttl_s", 1.0)
    kw.setdefault("registry_ttl_s", 1.0)
    kw.setdefault("heartbeat_interval_s", 0.1)
    kw.setdefault("rejoin_base_s", 0.02)
    kw.setdefault("rejoin_max_s", 0.2)
    return FleetService(str(tmp_path / "shared"), str(tmp_path / name),
                        worker=name, **kw)


def client_of(svc, timeout_s=5.0):
    return ServiceClient(svc.socket_path, timeout_s=timeout_s)


def wait_until(predicate, timeout_s=10.0, poll_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


class TestFleetCampaign:
    def test_two_daemons_complete_bit_identical_to_reference(self,
                                                             tmp_path):
        reference = run_sharded_reference(spec(shards=4))
        alpha = make_daemon(tmp_path, "alpha").start()
        beta = make_daemon(tmp_path, "beta").start()
        try:
            client = client_of(alpha)
            ping = client.ping()
            assert ping["fleet"] and ping["members"] == {"alpha": True,
                                                         "beta": True}
            job = client.submit(spec(shards=4))["job"]
            final = client.wait_for(job, timeout_s=120.0)
            assert final["state"] == "done"
            assert final["result"]["carved_sha256"] \
                == reference["carved_sha256"]
            audit = client.request("audit", job=job)
            assert audit["ok"] is True
            assert all(s["landed_events"] == 1 for s in audit["shards"])
            # Either daemon serves the same finished result.
            assert client_of(beta).status(job)["result"]["carved_sha256"] \
                == reference["carved_sha256"]
        finally:
            alpha.drain()
            beta.drain()

    def test_resubmission_on_any_daemon_is_a_dedupe(self, tmp_path):
        alpha = make_daemon(tmp_path, "alpha").start()
        beta = make_daemon(tmp_path, "beta").start()
        try:
            first = client_of(alpha).submit(spec())
            second = client_of(beta).submit(spec())
            assert first["job"] == second["job"]
            assert not first["deduped"] and second["deduped"]
        finally:
            alpha.drain()
            beta.drain()

    def test_unsharded_submissions_are_rejected(self, tmp_path):
        alpha = make_daemon(tmp_path, "alpha").start()
        try:
            from repro.errors import JobRejectedError
            with pytest.raises(JobRejectedError):
                client_of(alpha).submit(
                    JobSpec(program="CS", dims=DIMS, seed=0, max_iter=12))
        finally:
            alpha.drain()


class TestDaemonKilledMidCampaign:
    def test_survivor_completes_with_reference_digest(self, tmp_path):
        """Kill beta while it holds a lease: its store connection is
        severed (every op fails, like a yanked mount) and the process
        "dies" (abort = heartbeats stop).  Alpha must reclaim beta's
        shard under a higher token and finish bit-identically, with
        the token audit proving no shard executed twice."""
        reference = run_sharded_reference(spec(shards=2))
        gate = PartitionGate()
        claimed = []

        def slow_runner(spec_json, shard):
            claimed.append(shard)
            time.sleep(0.4)  # hold the lease long enough to die with it
            return execute_shard(spec_json, shard)

        alpha = make_daemon(tmp_path, "alpha").start()
        beta = make_daemon(tmp_path, "beta", shard_runner=slow_runner,
                           fault_gate=gate).start()
        try:
            job = client_of(alpha).submit(spec(shards=2))["job"]
            assert wait_until(lambda: claimed), \
                "beta never claimed a shard"
            gate.begin()  # sever beta's store...
            beta.abort()  # ...and kill the daemon
            final = client_of(alpha).wait_for(job, timeout_s=120.0)
            assert final["state"] == "done"
            assert final["result"]["carved_sha256"] \
                == reference["carved_sha256"]
            audit = client_of(alpha).request("audit", job=job)
            assert audit["ok"] is True, audit
            assert all(s["landed_events"] == 1 for s in audit["shards"])
        finally:
            alpha.drain()
            gate.heal()
            beta.abort()


class TestPartitionedDaemon:
    def test_degrades_to_readonly_heals_and_rejoins(self, tmp_path,
                                                    capsys):
        reference = run_sharded_reference(spec(shards=2))
        gate = PartitionGate()
        alpha = make_daemon(tmp_path, "alpha").start()
        beta = make_daemon(tmp_path, "beta", fault_gate=gate).start()
        try:
            first_epoch = beta.store.epoch
            gate.begin()
            assert wait_until(lambda: beta.partitioned), \
                "beta never noticed the partition"
            # Typed error out of the client, degraded state in status.
            with pytest.raises(FleetPartitionedError):
                client_of(beta).submit(spec(shards=2))
            status = client_of(beta).status()
            assert status["partitioned"] is True
            # ... and the CLI renders the degradation loudly.
            rc = cli.main(["status", "--socket", beta.socket_path])
            assert rc == 0
            assert "PARTITIONED" in capsys.readouterr().err
            # The rest of the fleet is not impaired.
            job = client_of(alpha).submit(spec(shards=2))["job"]
            final = client_of(alpha).wait_for(job, timeout_s=120.0)
            assert final["result"]["carved_sha256"] \
                == reference["carved_sha256"]
            # Heal: beta rejoins under a bumped epoch and serves the
            # finished campaign — without having run anything twice.
            gate.heal()
            assert wait_until(lambda: not beta.partitioned), \
                "beta never rejoined after the heal"
            assert beta.store.epoch > first_epoch
            healed = client_of(beta).status(job)
            assert healed["partitioned"] is False
            assert healed["state"] == "done"
            audit = client_of(alpha).request("audit", job=job)
            assert audit["ok"] is True, audit
        finally:
            alpha.drain()
            gate.heal()
            beta.drain()


class TestCrossHostHedging:
    def test_hedge_completes_a_stalled_primary_shard(self, tmp_path):
        """Alpha grabs the only shard and stalls; beta, hedging after
        0.2s, executes speculatively and wins the completion under the
        next token.  First token-valid completion wins; the audit still
        shows exactly one landed completion."""
        reference = run_sharded_reference(spec(shards=1))

        def stalled_runner(spec_json, shard):
            time.sleep(4.0)
            return execute_shard(spec_json, shard)

        alpha = make_daemon(tmp_path, "alpha", shard_runner=stalled_runner,
                            lease_ttl_s=30.0, registry_ttl_s=30.0).start()
        beta = make_daemon(tmp_path, "beta", hedge_after_s=0.2,
                           lease_ttl_s=30.0, registry_ttl_s=30.0)
        try:
            job = client_of(alpha).submit(spec(shards=1))["job"]
            # Let the doomed primary win the claim before the hedger
            # even joins, so the hedge path is what completes the shard.
            assert wait_until(
                lambda: alpha.store.read_lease(job, 0) is not None)
            beta.start()
            final = client_of(beta).wait_for(job, timeout_s=120.0)
            assert final["state"] == "done"
            assert final["result"]["carved_sha256"] \
                == reference["carved_sha256"]
            assert beta.store.read_done(job, 0)["worker"] == "beta"
            hedges = [e for e in beta.store.fenced_events()
                      if e.get("op") == "hedge"]
            assert hedges and hedges[0]["worker"] == "beta"
            audit = client_of(beta).request("audit", job=job)
            assert audit["ok"] is True, audit
        finally:
            alpha.abort()
            beta.drain()


class TestClaimLoopResilience:
    def test_claim_loop_survives_typed_errors(self, tmp_path):
        """A typed KondoError escaping a store call must not silently
        kill the claim loop — the daemon would keep heartbeating as
        healthy while never claiming again, stalling the campaign
        forever.  Three injected failures, then the campaign must
        still complete."""
        reference = run_sharded_reference(spec(shards=2))
        alpha = make_daemon(tmp_path, "alpha")
        real_claim = alpha.store.claim_shard
        injected = {"left": 3}

        def flaky_claim(job):
            if injected["left"] > 0:
                injected["left"] -= 1
                raise FleetError("transient typed failure")
            return real_claim(job)

        alpha.store.claim_shard = flaky_claim
        alpha.start()
        try:
            job = client_of(alpha).submit(spec(shards=2))["job"]
            final = client_of(alpha).wait_for(job, timeout_s=120.0)
            assert final["state"] == "done"
            assert final["result"]["carved_sha256"] \
                == reference["carved_sha256"]
        finally:
            alpha.drain()
        assert injected["left"] == 0


class TestFleetServiceValidation:
    def test_rejects_bad_configuration(self, tmp_path):
        for kw in ({"workers": 0}, {"heartbeat_interval_s": 0.0},
                   {"hedge_after_s": -1.0}):
            with pytest.raises(FleetError):
                make_daemon(tmp_path, "bad", **kw)

    def test_double_start_is_an_error(self, tmp_path):
        svc = make_daemon(tmp_path, "alpha").start()
        try:
            with pytest.raises(FleetError):
                svc.start()
        finally:
            svc.drain()
