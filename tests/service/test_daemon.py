"""Socket-level daemon tests with an injected (inline) job runner.

``supervised=False`` runs jobs inline on worker threads — no forking —
so these tests exercise the daemon's own machinery (admission control,
lease expiry, retry scheduling, drain, the wire protocol) fast; the
forked path is covered by the service chaos drills.
"""

import socket
import time

import pytest

from repro.errors import JobRejectedError, ServiceProtocolError
from repro.resilience.retry import RetryPolicy
from repro.service import JobSpec, KondoService, ServiceClient

DIMS = (16, 16)

#: Fast retry shape so retry/dead-letter tests finish in milliseconds.
FAST_RETRY = RetryPolicy(retries=2, backoff_s=0.01, backoff_factor=2.0,
                         backoff_max_s=0.02, jitter="full")


def spec(seed=0, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=10, **kw)


def make_service(tmp_path, runner, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("queue_limit", 4)
    kw.setdefault("retry_policy", FAST_RETRY)
    kw.setdefault("drain_timeout_s", 10.0)
    return KondoService(str(tmp_path), supervised=False,
                        job_runner=runner, **kw)


@pytest.fixture
def service(tmp_path):
    """A started daemon whose runner echoes the spec seed; drained on
    teardown."""
    svc = make_service(tmp_path, lambda sj: {"seed": sj["seed"]}).start()
    yield svc
    svc.abort()


def client_of(svc, timeout_s=5.0):
    return ServiceClient(svc.socket_path, timeout_s=timeout_s)


class TestSubmitToCompletion:
    def test_submit_runs_to_done(self, service):
        client = client_of(service)
        job = client.submit(spec(seed=5))["job"]
        final = client.wait_for(job, timeout_s=10.0)
        assert final["state"] == "done"
        assert final["result"] == {"seed": 5}

    def test_repeat_submission_serves_cache(self, service):
        client = client_of(service)
        job = client.submit(spec())["job"]
        client.wait_for(job, timeout_s=10.0)
        again = client.submit(spec())
        assert again["deduped"]
        assert again["state"] == "done"
        assert again["result"] == {"seed": 0}

    def test_status_of_unknown_job(self, service):
        with pytest.raises(JobRejectedError) as exc:
            client_of(service).status("no-such-job")
        assert exc.value.code == "UNKNOWN-JOB"

    def test_ping_reports_capacity(self, service):
        pong = client_of(service).ping()
        assert pong["workers"] == 1
        assert pong["queue_limit"] == 4
        assert not pong["draining"]


class TestAdmissionControl:
    def test_overload_degrades_to_rejected_busy(self, tmp_path):
        svc = make_service(tmp_path, lambda sj: {}, workers=0,
                           queue_limit=2).start()
        try:
            client = client_of(svc)
            client.submit(spec(seed=1))
            client.submit(spec(seed=2))
            with pytest.raises(JobRejectedError) as exc:
                client.submit(spec(seed=3))
            assert exc.value.code == "REJECTED-BUSY"
            # A rejected job was never accepted: nothing journaled.
            assert svc.store.active_count() == 2
        finally:
            svc.abort()

    def test_rejection_is_not_sticky(self, tmp_path):
        """Capacity freed by a completion re-opens admission."""
        svc = make_service(tmp_path, lambda sj: {}, workers=1,
                           queue_limit=1).start()
        try:
            client = client_of(svc)
            job = client.submit(spec(seed=1))["job"]
            client.wait_for(job, timeout_s=10.0)  # done -> not active
            client.submit(spec(seed=2))  # admitted again
        finally:
            svc.abort()

    def test_draining_daemon_rejects_submissions(self, tmp_path):
        svc = make_service(tmp_path, lambda sj: {}, workers=0).start()
        try:
            client = client_of(svc)
            client.drain()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    client.submit(spec())
                except JobRejectedError as exc:
                    assert exc.code == "DRAINING"
                    break
                time.sleep(0.02)  # drain flag not visible yet; retry
            else:
                pytest.fail("drain never started rejecting submissions")
        finally:
            svc.abort()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        svc = make_service(tmp_path, lambda sj: {}, workers=0).start()
        try:
            client = client_of(svc)
            job = client.submit(spec())["job"]
            client.cancel(job)
            assert client.status(job)["state"] == "cancelled"
        finally:
            svc.abort()

    def test_done_job_is_not_cancellable(self, service):
        client = client_of(service)
        job = client.submit(spec())["job"]
        client.wait_for(job, timeout_s=10.0)
        with pytest.raises(JobRejectedError) as exc:
            client.cancel(job)
        assert exc.value.code == "NOT-CANCELLABLE"


class TestRetryAndDeadLetter:
    def test_transient_failure_retries_to_success(self, tmp_path):
        attempts = []

        def flaky(sj):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient worker death")
            return {"attempt": len(attempts)}

        svc = make_service(tmp_path, flaky).start()
        try:
            client = client_of(svc)
            job = client.submit(spec())["job"]
            final = client.wait_for(job, timeout_s=10.0)
            assert final["state"] == "done"
            assert final["attempts"] == 1
            assert final["verdicts"] == ["EXCEPTION"]
            assert final["result"] == {"attempt": 2}
            assert svc.store.complete_count(job) == 1
        finally:
            svc.abort()

    def test_budget_exhaustion_dead_letters(self, tmp_path):
        def always_dies(sj):
            raise RuntimeError("deterministic failure")

        svc = make_service(tmp_path, always_dies).start()
        try:
            client = client_of(svc)
            job = client.submit(spec())["job"]
            final = client.wait_for(job, timeout_s=10.0)
            assert final["state"] == "dead"
            # retries=2 -> three attempts, then the typed dead letter.
            assert final["attempts"] == 3
            assert final["verdicts"] == ["EXCEPTION"] * 3
        finally:
            svc.abort()


class TestLeaseExpiry:
    def test_expired_lease_requeues_and_never_double_completes(
            self, tmp_path):
        """A worker that outlives its lease gets its result dropped; the
        retried attempt owns the only complete record."""
        finished = []

        def slow_then_fast(sj):
            if not finished:
                finished.append(1)
                time.sleep(1.0)  # far past the 0.15s lease ttl
                return {"attempt": "stale"}
            return {"attempt": "retry"}

        svc = make_service(tmp_path, slow_then_fast,
                           lease_ttl_s=0.15).start()
        try:
            client = client_of(svc)
            job = client.submit(spec())["job"]
            final = client.wait_for(job, timeout_s=20.0)
            assert final["state"] == "done"
            assert final["verdicts"] == ["LEASE-EXPIRED"]
            assert final["result"] == {"attempt": "retry"}
            assert svc.store.complete_count(job) == 1
        finally:
            svc.abort()


class TestDrain:
    def test_drain_finishes_leased_work_and_seals_journal(self, tmp_path):
        svc = make_service(tmp_path, lambda sj: {"ok": 1}).start()
        client = client_of(svc)
        job = client.submit(spec())["job"]
        client.drain()
        assert svc.wait(timeout_s=10.0)
        assert svc.store.clean_shutdown
        assert svc.store.view(job).state == "done"

    def test_recovery_requeues_accepted_jobs(self, tmp_path):
        svc = make_service(tmp_path, lambda sj: {}, workers=0).start()
        client = client_of(svc)
        jobs = [client.submit(spec(seed=i))["job"] for i in range(3)]
        svc.abort()  # crash: no shutdown marker
        restarted = make_service(tmp_path,
                                 lambda sj: {"recovered": True}).start()
        try:
            assert not restarted.store.clean_shutdown
            client = client_of(restarted)
            for job in jobs:
                final = client.wait_for(job, timeout_s=10.0)
                assert final["state"] == "done"
                assert final["result"] == {"recovered": True}
                assert restarted.store.complete_count(job) == 1
        finally:
            restarted.abort()


class TestWireProtocol:
    def test_malformed_request_gets_bad_request(self, service):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5.0)
        try:
            sock.connect(service.socket_path)
            sock.sendall(b"this is not json\n")
            response = sock.recv(4096)
        finally:
            sock.close()
        assert b'"BAD-REQUEST"' in response

    def test_unknown_op_rejected(self, service):
        with pytest.raises(JobRejectedError) as exc:
            client_of(service).request("frobnicate")
        assert exc.value.code == "BAD-REQUEST"

    def test_client_reports_unreachable_daemon(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nobody.sock"),
                               timeout_s=1.0)
        with pytest.raises(ServiceProtocolError, match="cannot reach"):
            client.ping()

    def test_deadline_propagates_into_spec(self, service):
        client = client_of(service)
        job = client.submit(spec(seed=11, deadline_s=45.0))["job"]
        view = service.store.view(job)
        assert view.spec.deadline_s == 45.0
