"""The durable job store: dedupe, state machine, crash recovery.

The hypothesis property at the bottom is the store's central promise:
for a journal cut at ANY byte (a daemon killed mid-append), recovery
yields exactly the fold of the records that fully landed — the state is
always "old or new at a record boundary", never a hybrid, never a loss
of an earlier record.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import JobRejectedError, ServiceError
from repro.resilience.durability.records import parse_log
from repro.service import JobSpec, JobStore

DIMS = (16, 16)


def spec(seed=0, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=10, **kw)


def open_store(tmp_path, retries=2):
    return JobStore.open(str(tmp_path), retries=retries)


class TestSubmitAndDedupe:
    def test_submit_queues_and_journals(self, tmp_path):
        store = open_store(tmp_path)
        view, fresh = store.submit(spec())
        assert fresh and view.state == "queued"
        assert os.path.exists(store.log_path)

    def test_same_triple_dedupes(self, tmp_path):
        store = open_store(tmp_path)
        first, fresh1 = store.submit(spec())
        again, fresh2 = store.submit(spec())
        assert fresh1 and not fresh2
        assert again is first
        assert len(store.records) == 1

    def test_different_theta_is_a_different_job(self, tmp_path):
        store = open_store(tmp_path)
        store.submit(spec(seed=0))
        view, fresh = store.submit(spec(seed=1))
        assert fresh
        assert len(store.jobs) == 2

    def test_workers_not_part_of_identity(self, tmp_path):
        # Pooled and serial campaigns are seed-for-seed identical, so
        # they must share one cache entry.
        assert spec(workers=0).key == spec(workers=4).key

    def test_done_job_serves_cached_result(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        store.record_complete(view.job_id, "L1", {"answer": 42})
        again, fresh = store.submit(spec())
        assert not fresh
        assert again.state == "done"
        assert again.result == {"answer": 42}

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(JobRejectedError, match="unknown job spec"):
            JobSpec.from_json({"program": "CS", "dims": [4], "bogus": 1})


class TestLeaseAndComplete:
    def test_complete_requires_owning_lease(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        assert store.record_complete(view.job_id, "L1", {"ok": 1})
        assert view.state == "done"

    def test_stale_lease_cannot_double_complete(self, tmp_path):
        """The never-double-complete guarantee: a worker whose lease
        expired (job requeued, re-leased, finished by someone else)
        gets its late result dropped."""
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        store.record_failure(view.job_id, "L1", "LEASE-EXPIRED")
        store.record_lease(view.job_id, "L2", "w1")
        assert store.record_complete(view.job_id, "L2", {"winner": 2})
        # The original worker finally reports in: rejected.
        assert not store.record_complete(view.job_id, "L1", {"stale": 1})
        assert view.result == {"winner": 2}
        assert store.complete_count(view.job_id) == 1

    def test_stale_failure_is_ignored(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        store.record_complete(view.job_id, "L1", {"ok": 1})
        assert store.record_failure(view.job_id, "L1", "SIGNALED") == "done"
        assert view.attempts == 0

    def test_lease_requires_queued(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        with pytest.raises(ServiceError, match="cannot lease"):
            store.record_lease(view.job_id, "L2", "w1")


class TestRetryBudgetAndDeadLetter:
    def test_failures_requeue_within_budget(self, tmp_path):
        store = open_store(tmp_path, retries=2)
        view, _ = store.submit(spec())
        for attempt in (1, 2):
            store.record_lease(view.job_id, f"L{attempt}", "w0")
            state = store.record_failure(view.job_id, f"L{attempt}",
                                         "TIMEOUT")
            assert state == "queued"
            assert view.attempts == attempt

    def test_budget_exhaustion_dead_letters(self, tmp_path):
        store = open_store(tmp_path, retries=1)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        assert store.record_failure(view.job_id, "L1", "OOM") == "queued"
        store.record_lease(view.job_id, "L2", "w0")
        assert store.record_failure(view.job_id, "L2", "OOM") == "dead"
        assert view.verdicts == ["OOM", "OOM"]
        # Dead is sticky: a resubmission serves the dead letter.
        again, fresh = store.submit(spec())
        assert not fresh and again.state == "dead"


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_cancel(view.job_id)
        assert view.state == "cancelled"

    def test_cancelled_key_reopens_with_fresh_budget(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        store.record_failure(view.job_id, "L1", "TIMEOUT")
        store.record_cancel(view.job_id)
        reopened, fresh = store.submit(spec())
        assert fresh
        assert reopened.state == "queued"
        assert reopened.attempts == 0

    def test_cannot_cancel_leased(self, tmp_path):
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        with pytest.raises(ServiceError, match="only queued"):
            store.record_cancel(view.job_id)


class TestRecovery:
    def test_clean_shutdown_marker(self, tmp_path):
        store = open_store(tmp_path)
        store.submit(spec())
        store.record_shutdown()
        reopened = open_store(tmp_path)
        assert reopened.clean_shutdown
        # Any new activity clears the marker until the next drain.
        reopened.submit(spec(seed=9))
        assert not reopened.clean_shutdown

    def test_missing_marker_reads_as_crash(self, tmp_path):
        store = open_store(tmp_path)
        store.submit(spec())
        assert not open_store(tmp_path).clean_shutdown

    def test_leased_jobs_requeue_on_recovery(self, tmp_path):
        """A lease never survives the daemon that granted it."""
        store = open_store(tmp_path)
        view, _ = store.submit(spec())
        store.record_lease(view.job_id, "L1", "w0")
        recovered = open_store(tmp_path)
        rv = recovered.view(view.job_id)
        assert rv.state == "queued"
        assert rv.lease_id is None
        assert recovered.recovered_jobs == [view.job_id]

    def test_terminal_states_survive_recovery(self, tmp_path):
        store = open_store(tmp_path)
        done, _ = store.submit(spec(seed=1))
        store.record_lease(done.job_id, "L1", "w0")
        store.record_complete(done.job_id, "L1", {"ok": 1})
        cancelled, _ = store.submit(spec(seed=2))
        store.record_cancel(cancelled.job_id)
        recovered = open_store(tmp_path)
        assert recovered.view(done.job_id).state == "done"
        assert recovered.view(done.job_id).result == {"ok": 1}
        assert recovered.view(cancelled.job_id).state == "cancelled"
        assert recovered.recovered_jobs == []


def _build_reference_journal(state_dir: str):
    """A journal exercising every record type; returns its raw bytes
    and the replayed record list."""
    store = JobStore.open(state_dir, retries=1)
    a, _ = store.submit(spec(seed=1))
    b, _ = store.submit(spec(seed=2))
    c, _ = store.submit(spec(seed=3))
    store.record_lease(a.job_id, "L1", "w0")
    store.record_complete(a.job_id, "L1", {"digest": "aaa"})
    store.record_lease(b.job_id, "L2", "w1")
    store.record_failure(b.job_id, "L2", "SIGNALED")       # requeue
    store.record_lease(b.job_id, "L3", "w1")
    store.record_failure(b.job_id, "L3", "TIMEOUT")        # dead-letter
    store.record_cancel(c.job_id)
    store.record_shutdown()
    with open(store.log_path, "rb") as fh:
        return fh.read(), list(store.records)


class TestCrashPointProperty:
    """Recovery from a journal cut at ANY byte yields old-or-new state."""

    RAW = None
    RECORDS = None

    @classmethod
    def _reference(cls):
        if cls.RAW is None:
            ref_dir = tempfile.mkdtemp(prefix="kondo-store-ref-")
            try:
                cls.RAW, cls.RECORDS = _build_reference_journal(ref_dir)
            finally:
                shutil.rmtree(ref_dir, ignore_errors=True)
        return cls.RAW, cls.RECORDS

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_recovery_is_a_record_prefix(self, data):
        raw, records = self._reference()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)),
                        label="crash byte")
        work = tempfile.mkdtemp(prefix="kondo-store-cut-")
        try:
            log_path = os.path.join(work, "jobs.log")
            with open(log_path, "wb") as fh:
                fh.write(raw[:cut])
            store = JobStore.open(work, retries=1)
            # Old-or-new at record granularity: the recovered journal is
            # exactly the records whose sealed lines fully landed.
            intact, _, _ = parse_log(raw[:cut])
            assert store.records == intact
            assert store.records == records[: len(store.records)]
            # Recovery truncated the torn tail: a reopen is stable.
            again = JobStore.open(work, retries=1)
            assert again.records == store.records
            assert {j: v.state for j, v in again.jobs.items()} == \
                {j: v.state for j, v in store.jobs.items()}
            # No LEASED state survives recovery, and every complete
            # record that landed is never lost.
            for view in store.jobs.values():
                assert view.state != "leased"
            for rec in intact:
                if rec["op"] == "complete":
                    assert store.view(rec["job"]).result == rec["result"]
        finally:
            shutil.rmtree(work, ignore_errors=True)
