"""Result-bundle cache: CRC seals, compaction survival, dedupe-after-restart."""

import os

import pytest

from repro.service import JobSpec, JobStore, KondoService, ServiceClient
from repro.service.bundles import ResultCache

DIMS = (16, 16)


def spec(seed=0, **kw):
    return JobSpec(program="CS", dims=DIMS, seed=seed, max_iter=10, **kw)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "results"))
        key = "ab12cd34"
        cache.put(key, {"observed": 7})
        assert cache.get(key) == {"observed": 7}
        assert cache.keys() == [key]

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "results"))
        assert cache.get("ab12cd34") is None
        assert cache.keys() == []

    def test_corrupt_entry_is_a_miss_never_a_wrong_result(self, tmp_path):
        cache = ResultCache(str(tmp_path / "results"))
        key = "ab12cd34"
        path = cache.put(key, {"observed": 7})
        raw = open(path, "rb").read()
        # Flip one payload byte: the CRC seal must catch it.
        with open(path, "wb") as fh:
            fh.write(raw[:20] + bytes([raw[20] ^ 0xFF]) + raw[21:])
        assert cache.get(key) is None
        # Truncation degrades the same way.
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        assert cache.get(key) is None

    def test_entry_keyed_to_the_wrong_job_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "results"))
        src = cache.put("ab12cd34", {"observed": 7})
        os.rename(src, os.path.join(cache.cache_dir, "ee99ff00.json"))
        assert cache.get("ee99ff00") is None

    def test_bad_keys_never_become_paths(self, tmp_path):
        cache = ResultCache(str(tmp_path / "results"))
        for bad in ("../escape", "UPPER00", "", "xyz"):
            with pytest.raises(ValueError, match="bad result-cache key"):
                cache.put(bad, {})


class TestCompaction:
    def test_compact_drops_done_jobs_and_keeps_live_ones(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        done, _ = store.submit(spec(seed=1))
        store.record_lease(done.job_id, "L1", "w0")
        store.record_complete(done.job_id, "L1", {"observed": 3})
        live, _ = store.submit(spec(seed=2))
        before = os.path.getsize(store.log_path)
        dropped = store.compact()
        assert dropped > 0
        assert os.path.getsize(store.log_path) < before
        assert done.job_id not in store.jobs
        assert store.view(live.job_id).state == "queued"
        # The dropped job's result survives in the bundle store.
        assert store.cached_result(done.job_id) == {"observed": 3}

    def test_compacted_journal_reopens_cleanly(self, tmp_path):
        store = JobStore.open(str(tmp_path))
        done, _ = store.submit(spec(seed=1))
        store.record_lease(done.job_id, "L1", "w0")
        store.record_complete(done.job_id, "L1", {"observed": 3})
        store.compact()
        again = JobStore.open(str(tmp_path))
        assert done.job_id not in again.jobs
        assert again.cached_result(done.job_id) == {"observed": 3}

    def test_dedupe_survives_compaction_and_restart(self, tmp_path):
        # End to end: run a job, compact its journal away, restart the
        # daemon, resubmit the identical spec — served from the bundle
        # store without re-running.
        ran = []

        def runner(sj):
            ran.append(sj["seed"])
            return {"seed": sj["seed"]}

        svc = KondoService(str(tmp_path), supervised=False,
                           job_runner=runner, workers=1).start()
        job = None
        try:
            client = ServiceClient(svc.socket_path, timeout_s=5.0)
            job = client.submit(spec(seed=5))["job"]
            first = client.wait_for(job, timeout_s=30.0)
            assert first["state"] == "done"
        finally:
            svc.drain()  # graceful: compact_on_start needs a clean seal

        svc2 = KondoService(str(tmp_path), supervised=False,
                            job_runner=runner, workers=1,
                            compact_on_start=True).start()
        try:
            assert job not in svc2.store.jobs  # compacted away
            client = ServiceClient(svc2.socket_path, timeout_s=5.0)
            again = client.submit(spec(seed=5))
            assert again["deduped"]
            assert again["cached"]
            assert again["result"] == {"seed": 5}
            assert ran == [5]  # the campaign ran exactly once
        finally:
            svc2.abort()
