"""Atomic artifact writes: all-or-nothing, never a torn file."""

import os

import pytest

import repro.ioutil
from repro.ioutil import atomic_write


class TestAtomicWrite:
    def test_writes_complete_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"hello ")
            fh.write(b"world")
        with open(path, "rb") as fh:
            assert fh.read() == b"hello world"

    def test_failure_leaves_no_file_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write(b"partial")
                raise RuntimeError("writer crashed")
        assert not os.path.exists(path)
        assert os.listdir(str(tmp_path)) == []  # temp file cleaned up too

    def test_failure_preserves_previous_version(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"version 1")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write(b"version 2 (torn)")
                raise RuntimeError("writer crashed")
        with open(path, "rb") as fh:
            assert fh.read() == b"version 1"

    def test_overwrites_existing_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        for payload in (b"first", b"second"):
            with atomic_write(path) as fh:
                fh.write(payload)
        with open(path, "rb") as fh:
            assert fh.read() == b"second"

    def test_text_mode(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path, mode="w") as fh:
            fh.write("text payload")
        with open(path) as fh:
            assert fh.read() == "text payload"

    def test_no_temp_files_linger_after_success(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"x")
        assert os.listdir(str(tmp_path)) == ["out.bin"]

    def test_directory_is_fsynced_after_rename(self, tmp_path,
                                               monkeypatch):
        """Regression: without an fsync of the containing directory
        after the rename, a crash can lose the *directory entry* even
        though the file data was fsynced — leaving neither the old nor
        the new version.  The fsync must come after the rename, i.e.
        once the destination already holds the complete payload."""
        path = str(tmp_path / "out.bin")
        dir_syncs = []

        real_fsync_dir = repro.ioutil.fsync_dir

        def recording_fsync_dir(directory):
            with open(path, "rb") as fh:
                dir_syncs.append((directory, fh.read()))
            real_fsync_dir(directory)

        monkeypatch.setattr(repro.ioutil, "fsync_dir",
                            recording_fsync_dir)
        with atomic_write(path) as fh:
            fh.write(b"durable payload")
        assert dir_syncs == [(str(tmp_path), b"durable payload")]

    def test_no_directory_fsync_when_writer_fails(self, tmp_path,
                                                  monkeypatch):
        dir_syncs = []
        monkeypatch.setattr(repro.ioutil, "fsync_dir", dir_syncs.append)
        with pytest.raises(RuntimeError):
            with atomic_write(str(tmp_path / "out.bin")) as fh:
                fh.write(b"partial")
                raise RuntimeError("writer crashed")
        assert dir_syncs == []
