"""Atomic artifact writes: all-or-nothing, never a torn file."""

import os

import pytest

from repro.ioutil import atomic_write


class TestAtomicWrite:
    def test_writes_complete_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"hello ")
            fh.write(b"world")
        with open(path, "rb") as fh:
            assert fh.read() == b"hello world"

    def test_failure_leaves_no_file_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write(b"partial")
                raise RuntimeError("writer crashed")
        assert not os.path.exists(path)
        assert os.listdir(str(tmp_path)) == []  # temp file cleaned up too

    def test_failure_preserves_previous_version(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"version 1")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write(b"version 2 (torn)")
                raise RuntimeError("writer crashed")
        with open(path, "rb") as fh:
            assert fh.read() == b"version 1"

    def test_overwrites_existing_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        for payload in (b"first", b"second"):
            with atomic_write(path) as fh:
                fh.write(payload)
        with open(path, "rb") as fh:
            assert fh.read() == b"second"

    def test_text_mode(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path, mode="w") as fh:
            fh.write("text payload")
        with open(path) as fh:
            assert fh.read() == "text payload"

    def test_no_temp_files_linger_after_success(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as fh:
            fh.write(b"x")
        assert os.listdir(str(tmp_path)) == ["out.bin"]
