"""Unit tests for the kondo CLI."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.cli import main


@pytest.fixture
def knd_path(tmp_path):
    path = str(tmp_path / "d.knd")
    rng = np.random.default_rng(0)
    ArrayFile.create(
        path, ArraySchema((32, 32), "f8"), rng.standard_normal((32, 32))
    ).close()
    return path


class TestCli:
    def test_programs_lists_all(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        for name in ("CS", "PRL2D", "LDC3D", "ARD", "MSI"):
            assert name in out

    def test_analyze_with_score(self, capsys):
        assert main(["analyze", "CS", "--dims", "32x32", "--score"]) == 0
        out = capsys.readouterr().out
        assert "Kondo[CS" in out
        assert "precision=" in out

    def test_analyze_unknown_program(self, capsys):
        assert main(["analyze", "NOPE"]) == 1
        assert "error" in capsys.readouterr().err

    def test_make_data_and_debloat_and_run(self, tmp_path, knd_path, capsys):
        out_path = str(tmp_path / "d.knds")
        assert main(["debloat", "CS", knd_path, out_path]) == 0
        text = capsys.readouterr().out
        assert "smaller" in text

        # A supported run against the subset succeeds.
        assert main(["run", "CS", out_path, "--value", "1,2"]) == 0
        assert "data-missing" in capsys.readouterr().out

    def test_run_on_full_file(self, knd_path, capsys):
        assert main(["run", "CS", knd_path, "--value", "2,3"]) == 0
        assert "all served" in capsys.readouterr().out

    def test_make_data(self, tmp_path, capsys):
        out = str(tmp_path / "x.knd")
        assert main(["make-data", out, "--dims", "16x16",
                     "--chunks", "4x4"]) == 0
        with ArrayFile.open(out) as f:
            assert f.schema.dims == (16, 16)
            assert f.schema.chunks == (4, 4)

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 1

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out


class TestCliPersistenceAndGranularity:
    def test_analyze_save_then_debloat_from_artifact(self, tmp_path, knd_path,
                                                     capsys):
        artifact = str(tmp_path / "a.npz")
        assert main(["analyze", "CS", "--dims", "32x32",
                     "--save", artifact]) == 0
        assert "saved analysis artifact" in capsys.readouterr().out
        out_path = str(tmp_path / "p.knds")
        assert main(["debloat", "CS", knd_path, out_path,
                     "--analysis", artifact]) == 0
        assert "from saved analysis" in capsys.readouterr().out

    def test_debloat_chunk_granularity(self, tmp_path, capsys):
        src = str(tmp_path / "c.knd")
        assert main(["make-data", src, "--dims", "32x32",
                     "--chunks", "8x8"]) == 0
        capsys.readouterr()
        out_path = str(tmp_path / "c.knds")
        assert main(["debloat", "CS", src, out_path,
                     "--granularity", "chunk"]) == 0
        assert "smaller" in capsys.readouterr().out

    def test_run_reports_missing_with_exit_code(self, tmp_path, knd_path,
                                                capsys):
        # An intentionally under-fuzzed subset misses supported offsets.
        import numpy as np

        from repro.arraymodel import ArrayFile, DebloatedArrayFile

        src = ArrayFile.open(knd_path)
        subset_path = str(tmp_path / "tiny.knds")
        DebloatedArrayFile.create(
            subset_path, src, keep_flat_indices=np.array([0])
        ).close()
        src.close()
        code = main(["run", "CS", subset_path, "--value", "1,2"])
        assert code == 2
        assert "data-missing" in capsys.readouterr().out
