"""Bitmap rasterization path vs the legacy np.unique union, and the
empty-input ``ndim``/``dims`` fallback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel.layout import flatten_many
from repro.geometry.hull import Hull
from repro.geometry.raster import (
    flat_indices_in_hulls,
    integer_points_in_hull,
    integer_points_in_hulls,
)
from repro.perf import SERIAL_PERF_CONFIG, PerfConfig


def _random_hulls(rng, d, n_hulls, extent):
    hulls = []
    for _ in range(n_hulls):
        c = rng.uniform(-2, extent + 2, size=d)
        m = int(rng.integers(1, 7))
        hulls.append(Hull.from_points(c + rng.uniform(-5, 5, (m, d))))
    return hulls


class TestEmptyInput:
    def test_no_hulls_no_hints_keeps_legacy_shape(self):
        assert integer_points_in_hulls([]).shape == (0, 0)

    def test_ndim_fallback(self):
        out = integer_points_in_hulls([], ndim=3)
        assert out.shape == (0, 3)
        assert out.dtype == np.int64

    def test_dims_fallback(self):
        out = integer_points_in_hulls([], dims=(4, 5))
        assert out.shape == (0, 2)
        # The fixed shape must survive the downstream flat encode.
        assert flatten_many(out, (4, 5)).shape == (0,)

    def test_flat_union_of_nothing(self):
        assert flat_indices_in_hulls([], (4, 4)).size == 0

    def test_hull_fully_outside_window(self):
        h = Hull.from_points(np.array([[50.0, 50.0], [52.0, 51.0]]))
        assert integer_points_in_hulls([h], dims=(4, 4)).shape == (0, 2)
        assert flat_indices_in_hulls([h], (4, 4)).size == 0


class TestBitmapEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        d=st.sampled_from([2, 3]),
        n_hulls=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_union(self, seed, d, n_hulls):
        rng = np.random.default_rng(seed)
        dims = (14,) * d
        hulls = _random_hulls(rng, d, n_hulls, extent=14)
        legacy = integer_points_in_hulls(hulls, dims=dims,
                                         perf=SERIAL_PERF_CONFIG)
        fast = integer_points_in_hulls(hulls, dims=dims, perf=PerfConfig())
        assert legacy.dtype == fast.dtype
        assert np.array_equal(legacy, fast)
        flat = flat_indices_in_hulls(hulls, dims)
        if legacy.size:
            assert np.array_equal(flat, flatten_many(legacy, dims))
        else:
            assert flat.size == 0

    def test_key_accumulator_beyond_bitmap_cutoff(self):
        dims = (1 << 14, 1 << 14)  # 2^28 cells > default bitmap cutoff
        h = Hull.from_points(
            np.array([[3.0, 5.0], [9.0, 11.0], [3.0, 11.0]])
        )
        legacy = integer_points_in_hulls([h], dims=dims,
                                         perf=SERIAL_PERF_CONFIG)
        fast = integer_points_in_hulls([h], dims=dims, perf=PerfConfig())
        assert np.array_equal(legacy, fast)

    def test_covered_hull_skip_keeps_union_exact(self):
        """A hull nested in an already-rasterized hull changes nothing."""
        big = Hull.from_points(
            np.array([[0.0, 0.0], [12.0, 0.0], [0.0, 12.0], [12.0, 12.0]])
        )
        small = Hull.from_points(np.array([[4.0, 4.0], [6.0, 5.0], [5.0, 7.0]]))
        dims = (16, 16)
        both = flat_indices_in_hulls([big, small], dims)
        alone = flat_indices_in_hulls([big], dims)
        assert np.array_equal(both, alone)
        # And in the other order the shortcut can't fire, same answer.
        assert np.array_equal(flat_indices_in_hulls([small, big], dims), both)


class TestBoxShortcut:
    def test_box_hull_needs_no_contains_calls(self):
        """A box hull's whole lattice window passes the corner shortcut —
        the result still matches the per-point path."""
        box = Hull.from_points(
            np.array([[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [9.0, 9.0]])
        )
        pts = integer_points_in_hull(box, dims=(12, 12), tol=0.0)
        xs = np.arange(1, 10)
        expect = np.array([[x, y] for x in xs for y in xs])
        assert np.array_equal(pts, expect)
