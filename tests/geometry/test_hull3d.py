"""Unit + property tests for the from-scratch incremental 3-D hull.

Cross-checked against scipy's Qhull on random point clouds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import ConvexHull as QhullHull

from repro.errors import GeometryError
from repro.geometry.hull3d import (
    hull3d_halfspaces,
    hull3d_vertices,
    hull3d_volume,
    incremental_hull3d,
)

points_3d = st.lists(
    st.tuples(*[st.integers(0, 20)] * 3),
    min_size=4, max_size=40,
).map(lambda pts: np.asarray(pts, dtype=float))


def full_rank(pts):
    c = pts - pts.mean(axis=0)
    return np.linalg.matrix_rank(c, tol=1e-8) == 3


class TestIncrementalHull3D:
    def test_tetrahedron(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
        )
        out_pts, faces = incremental_hull3d(pts)
        assert len(faces) == 4
        assert hull3d_volume(out_pts, faces) == pytest.approx(1 / 6)

    def test_cube_with_interior_points(self):
        corners = np.array(
            [[x, y, z] for x in (0, 4) for y in (0, 4) for z in (0, 4)],
            dtype=float,
        )
        interior = np.array([[2, 2, 2], [1, 1, 3], [3, 2, 1]], dtype=float)
        pts, faces = incremental_hull3d(np.vstack([corners, interior]))
        assert hull3d_volume(pts, faces) == pytest.approx(64.0)
        verts = {tuple(v) for v in hull3d_vertices(pts, faces)}
        assert verts == {tuple(c) for c in corners}

    def test_too_few_points(self):
        with pytest.raises(GeometryError):
            incremental_hull3d(np.zeros((3, 3)))

    def test_coplanar_rejected(self):
        pts = np.array(
            [[x, y, 1] for x in range(3) for y in range(3)], dtype=float
        )
        with pytest.raises(GeometryError):
            incremental_hull3d(pts)

    def test_collinear_rejected(self):
        pts = np.array([[i, i, i] for i in range(6)], dtype=float)
        with pytest.raises(GeometryError):
            incremental_hull3d(pts)

    def test_coincident_rejected(self):
        with pytest.raises(GeometryError):
            incremental_hull3d(np.ones((5, 3)))

    @given(points_3d)
    @settings(max_examples=60, deadline=None)
    def test_volume_matches_qhull(self, pts):
        pts = np.unique(pts, axis=0)
        if pts.shape[0] < 4 or not full_rank(pts):
            return
        own_pts, faces = incremental_hull3d(pts)
        own_vol = hull3d_volume(own_pts, faces)
        ref_vol = QhullHull(pts).volume
        assert own_vol == pytest.approx(ref_vol, rel=1e-6, abs=1e-9)

    @given(points_3d)
    @settings(max_examples=60, deadline=None)
    def test_all_points_satisfy_halfspaces(self, pts):
        pts = np.unique(pts, axis=0)
        if pts.shape[0] < 4 or not full_rank(pts):
            return
        own_pts, faces = incremental_hull3d(pts)
        normals, offsets = hull3d_halfspaces(own_pts, faces)
        slack = pts @ normals.T - offsets
        assert (slack <= 1e-6).all()

    @given(points_3d)
    @settings(max_examples=40, deadline=None)
    def test_vertices_subset_of_qhull_vertices(self, pts):
        pts = np.unique(pts, axis=0)
        if pts.shape[0] < 4 or not full_rank(pts):
            return
        own_pts, faces = incremental_hull3d(pts)
        own_verts = {tuple(v) for v in hull3d_vertices(own_pts, faces)}
        ref = QhullHull(pts)
        ref_verts = {tuple(pts[i]) for i in ref.vertices}
        # Our hull may keep coplanar boundary vertices Qhull drops, but
        # every Qhull vertex (a true extreme point) must be present.
        assert ref_verts <= own_verts
