"""Cross-check the two 3-D hull backends behind the Hull facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.geometry.hull as hull_mod
from repro.geometry import Hull


@pytest.fixture
def own_backend():
    saved = hull_mod.HULL3D_BACKEND
    hull_mod.HULL3D_BACKEND = "own"
    yield
    hull_mod.HULL3D_BACKEND = saved


points_3d = st.lists(
    st.tuples(*[st.integers(0, 12)] * 3),
    min_size=4, max_size=30,
).map(lambda pts: np.asarray(sorted(set(pts)), dtype=float))


class TestBackendEquivalence:
    def test_own_backend_selected(self, own_backend):
        corners = [[x, y, z] for x in (0, 2) for y in (0, 2) for z in (0, 2)]
        h = Hull.from_points(corners)
        assert h.volume == pytest.approx(8.0)

    @given(points_3d)
    @settings(max_examples=40, deadline=None)
    def test_same_containment_both_backends(self, pts):
        if pts.shape[0] < 4:
            return
        centered = pts - pts.mean(axis=0)
        if np.linalg.matrix_rank(centered, tol=1e-8) < 3:
            return
        probe = np.array(
            [[x, y, z] for x in range(0, 13, 3)
             for y in range(0, 13, 3) for z in range(0, 13, 3)],
            dtype=float,
        )
        saved = hull_mod.HULL3D_BACKEND
        try:
            hull_mod.HULL3D_BACKEND = "qhull"
            qhull = Hull.from_points(pts).contains(probe, tol=1e-6)
            hull_mod.HULL3D_BACKEND = "own"
            own = Hull.from_points(pts).contains(probe, tol=1e-6)
        finally:
            hull_mod.HULL3D_BACKEND = saved
        assert np.array_equal(qhull, own)

    @given(points_3d)
    @settings(max_examples=30, deadline=None)
    def test_same_volume_both_backends(self, pts):
        if pts.shape[0] < 4:
            return
        centered = pts - pts.mean(axis=0)
        if np.linalg.matrix_rank(centered, tol=1e-8) < 3:
            return
        saved = hull_mod.HULL3D_BACKEND
        try:
            hull_mod.HULL3D_BACKEND = "qhull"
            v1 = Hull.from_points(pts).volume
            hull_mod.HULL3D_BACKEND = "own"
            v2 = Hull.from_points(pts).volume
        finally:
            hull_mod.HULL3D_BACKEND = saved
        assert v1 == pytest.approx(v2, rel=1e-6, abs=1e-9)
