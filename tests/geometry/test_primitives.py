"""Unit tests for geometric primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.primitives import (
    affine_basis,
    as_points,
    bounding_box,
    cross2,
    dedupe_points,
    min_pairwise_distance,
    project_to_subspace,
    subspace_residual,
)


class TestAsPoints:
    def test_1d_promoted(self):
        assert as_points([1.0, 2.0]).shape == (1, 2)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            as_points(np.empty((0, 2)))

    def test_ndim_enforced(self):
        with pytest.raises(GeometryError):
            as_points([[1, 2, 3]], ndim=2)

    def test_3d_array_rejected(self):
        with pytest.raises(GeometryError):
            as_points(np.zeros((2, 2, 2)))


class TestAffineBasis:
    def test_single_point_rank0(self):
        origin, basis, rank = affine_basis([[3.0, 4.0]])
        assert rank == 0
        assert basis.shape == (0, 2)
        assert origin.tolist() == [3.0, 4.0]

    def test_collinear_rank1(self):
        pts = [[0, 0], [1, 1], [2, 2], [5, 5]]
        _, basis, rank = affine_basis(pts)
        assert rank == 1
        # Basis direction parallel to (1, 1).
        d = basis[0] / np.linalg.norm(basis[0])
        assert abs(abs(d @ np.array([1, 1]) / np.sqrt(2)) - 1) < 1e-9

    def test_full_rank_2d(self):
        _, basis, rank = affine_basis([[0, 0], [1, 0], [0, 1]])
        assert rank == 2
        # Orthonormal rows.
        assert np.allclose(basis @ basis.T, np.eye(2))

    def test_plane_in_3d_rank2(self):
        pts = [[x, y, 7.0] for x in range(3) for y in range(3)]
        _, basis, rank = affine_basis(pts)
        assert rank == 2

    def test_projection_roundtrip(self):
        pts = np.array([[x, y, 7.0] for x in range(3) for y in range(3)])
        origin, basis, rank = affine_basis(pts)
        coords = project_to_subspace(pts, origin, basis)
        recon = origin + coords @ basis
        assert np.allclose(recon, pts)

    def test_residual_zero_on_subspace(self):
        pts = np.array([[x, 2.0 * x] for x in range(5)], dtype=float)
        origin, basis, _ = affine_basis(pts)
        assert np.allclose(subspace_residual(pts, origin, basis), 0.0)

    def test_residual_positive_off_subspace(self):
        pts = np.array([[x, 2.0 * x] for x in range(5)], dtype=float)
        origin, basis, _ = affine_basis(pts)
        off = np.array([[0.0, 1.0]])
        assert subspace_residual(off, origin, basis)[0] > 0.1


class TestCross2:
    def test_left_turn_positive(self):
        assert cross2(np.array([0, 0]), np.array([1, 0]), np.array([1, 1])) > 0

    def test_right_turn_negative(self):
        assert cross2(np.array([0, 0]), np.array([1, 0]), np.array([1, -1])) < 0

    def test_collinear_zero(self):
        assert cross2(np.array([0, 0]), np.array([1, 1]), np.array([2, 2])) == 0


class TestDistances:
    def test_min_pairwise_known(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[4.0, 0.0], [10.0, 0.0]])
        assert min_pairwise_distance(a, b) == pytest.approx(3.0)

    def test_min_pairwise_zero_on_shared_point(self):
        a = np.array([[0.0, 0.0], [5.0, 5.0]])
        b = np.array([[5.0, 5.0]])
        assert min_pairwise_distance(a, b) == 0.0

    @given(
        st.lists(st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
                 min_size=1, max_size=15),
        st.lists(st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
                 min_size=1, max_size=15),
    )
    @settings(max_examples=60)
    def test_min_pairwise_matches_bruteforce(self, a, b):
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        expect = min(
            float(np.linalg.norm(p - q)) for p in a for q in b
        )
        assert min_pairwise_distance(a, b) == pytest.approx(expect)


class TestMisc:
    def test_dedupe(self):
        pts = np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]])
        assert dedupe_points(pts).shape == (2, 2)

    def test_bounding_box(self):
        lo, hi = bounding_box(np.array([[1.0, 9.0], [5.0, 2.0]]))
        assert lo.tolist() == [1.0, 2.0]
        assert hi.tolist() == [5.0, 9.0]
