"""Unit + property tests for the 2-D monotone-chain hull."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import monotone_chain, polygon_area, polygon_halfspaces
from repro.errors import GeometryError

points_2d = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
    min_size=1, max_size=60,
).map(lambda pts: np.asarray(pts, dtype=float))


def is_ccw(verts):
    n = len(verts)
    total = 0.0
    for i in range(n):
        x1, y1 = verts[i]
        x2, y2 = verts[(i + 1) % n]
        total += (x2 - x1) * (y2 + y1)
    return total < 0


class TestMonotoneChain:
    def test_square(self):
        pts = np.array([[0, 0], [4, 0], [4, 4], [0, 4], [2, 2], [1, 1]], dtype=float)
        hull = monotone_chain(pts)
        assert {tuple(v) for v in hull} == {(0, 0), (4, 0), (4, 4), (0, 4)}
        assert is_ccw(hull)

    def test_collinear_points_dropped(self):
        pts = np.array([[0, 0], [2, 0], [4, 0], [4, 4], [0, 4]], dtype=float)
        hull = monotone_chain(pts)
        assert (2, 0) not in {tuple(v) for v in hull}

    def test_single_point(self):
        hull = monotone_chain(np.array([[3.0, 7.0]]))
        assert hull.shape == (1, 2)

    def test_two_points(self):
        hull = monotone_chain(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert hull.shape == (2, 2)

    def test_all_collinear(self):
        pts = np.array([[i, 2 * i] for i in range(5)], dtype=float)
        hull = monotone_chain(pts)
        assert hull.shape == (2, 2)
        assert {tuple(v) for v in hull} == {(0, 0), (4, 8)}

    def test_duplicates_removed(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [0, 1]], dtype=float)
        hull = monotone_chain(pts)
        assert hull.shape == (3, 2)

    @given(points_2d)
    @settings(max_examples=120)
    def test_hull_vertices_are_input_points(self, pts):
        hull = monotone_chain(pts)
        input_set = {tuple(p) for p in pts}
        assert all(tuple(v) in input_set for v in hull)

    @given(points_2d)
    @settings(max_examples=120)
    def test_all_points_inside_hull(self, pts):
        hull = monotone_chain(pts)
        if hull.shape[0] < 3:
            return  # degenerate; containment handled by Hull facade
        normals, offsets = polygon_halfspaces(hull)
        slack = pts @ normals.T - offsets
        assert (slack <= 1e-7).all()

    @given(points_2d)
    @settings(max_examples=80)
    def test_hull_is_convex_ccw(self, pts):
        hull = monotone_chain(pts)
        if hull.shape[0] < 3:
            return
        assert is_ccw(hull)
        # Strict convexity: every consecutive triple turns left.
        n = hull.shape[0]
        for i in range(n):
            o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            cross = (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
            assert cross > 0


class TestPolygonArea:
    def test_unit_square(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(sq) == pytest.approx(1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [4, 0], [0, 3]], dtype=float)
        assert polygon_area(tri) == pytest.approx(6.0)

    def test_degenerate_zero(self):
        assert polygon_area(np.array([[0.0, 0.0], [1.0, 1.0]])) == 0.0

    @given(points_2d)
    @settings(max_examples=60)
    def test_area_nonnegative_and_bounded_by_bbox(self, pts):
        hull = monotone_chain(pts)
        area = polygon_area(hull)
        assert area >= 0
        spans = pts.max(axis=0) - pts.min(axis=0)
        assert area <= spans[0] * spans[1] + 1e-9


class TestPolygonHalfspaces:
    def test_square_halfspaces(self):
        sq = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], dtype=float)
        normals, offsets = polygon_halfspaces(sq)
        assert normals.shape == (4, 2)
        # Center strictly inside, outside point violating one constraint.
        center = np.array([1.0, 1.0])
        assert (normals @ center <= offsets).all()
        outside = np.array([3.0, 1.0])
        assert not (normals @ outside <= offsets).all()

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            polygon_halfspaces(np.array([[0.0, 0.0], [1.0, 1.0]]))
