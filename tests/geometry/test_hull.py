"""Unit + property tests for the rank-aware Hull facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Hull

points_2d = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=1, max_size=40,
).map(lambda pts: np.asarray(pts, dtype=float))


class TestConstruction:
    def test_point_hull(self):
        h = Hull.from_points([[5.0, 7.0]])
        assert h.rank == 0
        assert h.volume == 0.0
        assert h.contains_point((5, 7))
        assert not h.contains_point((5, 8))

    def test_segment_hull(self):
        h = Hull.from_points([[0.0, 0.0], [4.0, 4.0], [2.0, 2.0]])
        assert h.rank == 1
        assert h.is_degenerate
        assert h.contains_point((1, 1))
        assert h.contains_point((3, 3))
        assert not h.contains_point((1, 2))
        assert not h.contains_point((5, 5))

    def test_full_rank_2d(self):
        h = Hull.from_points([[0, 0], [4, 0], [4, 4], [0, 4]])
        assert h.rank == 2
        assert not h.is_degenerate
        assert h.volume == pytest.approx(16.0)
        assert np.allclose(h.centroid, [2, 2])

    def test_full_rank_3d(self):
        corners = [[x, y, z] for x in (0, 2) for y in (0, 2) for z in (0, 2)]
        h = Hull.from_points(corners)
        assert h.rank == 3
        assert h.volume == pytest.approx(8.0)
        assert h.contains_point((1, 1, 1))
        assert not h.contains_point((3, 1, 1))

    def test_plane_in_3d(self):
        plane = [[x, y, 5] for x in range(4) for y in range(4)]
        h = Hull.from_points(plane)
        assert h.rank == 2
        assert h.ndim == 3
        assert h.contains_point((1.5, 2.0, 5.0))
        assert not h.contains_point((1.5, 2.0, 5.5))

    def test_4d_hull_via_qhull(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 5, size=(40, 4)).astype(float)
        h = Hull.from_points(pts)
        assert h.ndim == 4
        assert h.contains(pts).all()

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Hull.from_points(np.empty((0, 2)))

    def test_bounding_box(self):
        h = Hull.from_points([[1, 2], [5, 2], [3, 9]])
        lo, hi = h.bounding_box()
        assert lo.tolist() == [1, 2]
        assert hi.tolist() == [5, 9]


class TestDistances:
    def test_center_distance(self):
        a = Hull.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = Hull.from_points([[10, 0], [12, 0], [12, 2], [10, 2]])
        assert a.center_distance(b) == pytest.approx(10.0)

    def test_boundary_distance_is_min_vertex_pair(self):
        a = Hull.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = Hull.from_points([[5, 0], [7, 0], [7, 2], [5, 2]])
        assert a.boundary_distance(b) == pytest.approx(3.0)

    def test_degenerate_distances(self):
        a = Hull.from_points([[0.0, 0.0]])
        b = Hull.from_points([[3.0, 4.0]])
        assert a.center_distance(b) == pytest.approx(5.0)
        assert a.boundary_distance(b) == pytest.approx(5.0)


class TestMerge:
    def test_merge_covers_both(self):
        a = Hull.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = Hull.from_points([[4, 4], [6, 4], [6, 6], [4, 6]])
        m = a.merge(b)
        assert m.contains_point((1, 1))
        assert m.contains_point((5, 5))
        assert m.contains_point((3, 3))  # sandwiched space now included
        assert m.n_points == a.n_points + b.n_points

    def test_merge_point_into_polygon(self):
        a = Hull.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = Hull.from_points([[10.0, 10.0]])
        m = a.merge(b)
        assert m.rank == 2
        assert m.contains_point((5, 5))

    def test_merge_dimension_mismatch(self):
        a = Hull.from_points([[0, 0], [1, 0], [0, 1]])
        b = Hull.from_points([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        with pytest.raises(GeometryError):
            a.merge(b)

    def test_merge_two_segments_makes_polygon(self):
        a = Hull.from_points([[0.0, 0.0], [4.0, 0.0]])
        b = Hull.from_points([[0.0, 3.0], [4.0, 3.0]])
        m = a.merge(b)
        assert m.rank == 2
        assert m.contains_point((2.0, 1.5))

    @given(points_2d, points_2d)
    @settings(max_examples=60, deadline=None)
    def test_merge_equivalent_to_union_hull(self, pa, pb):
        """Paper: merging via vertex union == hull of all original points."""
        a = Hull.from_points(pa)
        b = Hull.from_points(pb)
        merged = a.merge(b)
        direct = Hull.from_points(np.vstack([pa, pb]))
        probe = np.array(
            [[x, y] for x in range(0, 31, 3) for y in range(0, 31, 3)],
            dtype=float,
        )
        assert np.array_equal(
            merged.contains(probe, tol=1e-6), direct.contains(probe, tol=1e-6)
        )


class TestContainsProperties:
    @given(points_2d)
    @settings(max_examples=80, deadline=None)
    def test_input_points_always_contained(self, pts):
        h = Hull.from_points(pts)
        assert h.contains(pts, tol=1e-6).all()

    @given(points_2d)
    @settings(max_examples=60, deadline=None)
    def test_centroid_contained(self, pts):
        h = Hull.from_points(pts)
        assert h.contains(h.centroid.reshape(1, -1), tol=1e-6)[0]

    def test_hash_and_eq(self):
        a = Hull.from_points([[0, 0], [1, 0], [0, 1]])
        b = Hull.from_points([[0, 0], [1, 0], [0, 1]])
        c = Hull.from_points([[0, 0], [2, 0], [0, 2]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2
