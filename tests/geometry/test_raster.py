"""Unit + property tests for hull rasterization back to lattice indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Hull, integer_points_in_hull, integer_points_in_hulls


class TestRaster2D:
    def test_square_exact(self):
        h = Hull.from_points([[0, 0], [4, 0], [4, 4], [0, 4]])
        pts = integer_points_in_hull(h)
        assert pts.shape == (25, 2)

    def test_point(self):
        h = Hull.from_points([[3.0, 5.0]])
        assert integer_points_in_hull(h).tolist() == [[3, 5]]

    def test_segment_covers_its_lattice(self):
        h = Hull.from_points([[0.0, 0.0], [3.0, 3.0]])
        assert integer_points_in_hull(h).tolist() == [
            [0, 0], [1, 1], [2, 2], [3, 3]
        ]

    def test_dims_clipping(self):
        h = Hull.from_points([[0, 0], [9, 0], [9, 9], [0, 9]])
        pts = integer_points_in_hull(h, dims=(5, 5))
        assert pts.shape == (25, 2)
        assert pts.max() == 4

    def test_hull_outside_dims(self):
        h = Hull.from_points([[20, 20], [22, 20], [22, 22], [20, 22]])
        assert integer_points_in_hull(h, dims=(5, 5)).shape == (0, 2)

    def test_sorted_lexicographically(self):
        h = Hull.from_points([[0, 0], [3, 0], [3, 3], [0, 3]])
        pts = integer_points_in_hull(h)
        flat = [tuple(p) for p in pts]
        assert flat == sorted(flat)

    def test_tol_zero_excludes_boundary_slack(self):
        tri = Hull.from_points([[0, 0], [2, 0], [0, 2]])
        strict = integer_points_in_hull(tri, tol=0.0)
        fat = integer_points_in_hull(tri, tol=0.5)
        assert len(fat) >= len(strict)
        assert {tuple(p) for p in strict} <= {tuple(p) for p in fat}


class TestRaster3D:
    def test_cube(self):
        corners = [[x, y, z] for x in (0, 4) for y in (0, 4) for z in (0, 4)]
        h = Hull.from_points(corners)
        pts = integer_points_in_hull(h)
        assert pts.shape == (125, 3)

    def test_plane_in_3d(self):
        plane = [[x, y, 2] for x in range(3) for y in range(3)]
        h = Hull.from_points(plane)
        pts = integer_points_in_hull(h)
        assert pts.shape == (9, 3)
        assert (pts[:, 2] == 2).all()


class TestRasterUnion:
    def test_disjoint_union(self):
        a = Hull.from_points([[0, 0], [2, 0], [2, 2], [0, 2]])
        b = Hull.from_points([[10, 10], [12, 10], [12, 12], [10, 12]])
        pts = integer_points_in_hulls([a, b])
        assert pts.shape == (18, 2)

    def test_overlapping_deduplicated(self):
        a = Hull.from_points([[0, 0], [4, 0], [4, 4], [0, 4]])
        b = Hull.from_points([[2, 2], [6, 2], [6, 6], [2, 6]])
        pts = integer_points_in_hulls([a, b])
        flats = {tuple(p) for p in pts}
        assert len(flats) == len(pts)
        assert (2, 2) in flats and (0, 0) in flats and (6, 6) in flats

    def test_empty_list(self):
        assert integer_points_in_hulls([]).shape == (0, 0)


@given(st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=1, max_size=25,
))
@settings(max_examples=60, deadline=None)
def test_raster_superset_of_inputs(pts):
    """Every input lattice point must appear in its own hull's raster."""
    arr = np.asarray(pts, dtype=float)
    h = Hull.from_points(arr)
    raster = {tuple(p) for p in integer_points_in_hull(h)}
    assert {tuple(map(int, p)) for p in pts} <= raster


@given(st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=3, max_size=25,
))
@settings(max_examples=40, deadline=None)
def test_raster_matches_containment(pts):
    """The raster is the lattice points passing contains(), clipped to the
    hull's padded bounding box (halfspace slack can leak past acute
    vertices; the bbox clip deliberately cuts that off)."""
    arr = np.asarray(pts, dtype=float)
    h = Hull.from_points(arr)
    raster = {tuple(p) for p in integer_points_in_hull(h, dims=(13, 13))}
    lo, hi = h.bounding_box()
    grid = np.array([[x, y] for x in range(13) for y in range(13)], dtype=float)
    inside = h.contains(grid, tol=0.5)
    in_bbox = ((grid >= np.floor(lo - 0.5)) & (grid <= np.ceil(hi + 0.5))).all(axis=1)
    expect = {
        tuple(map(int, g)) for g, m, b in zip(grid, inside, in_bbox) if m and b
    }
    assert raster == expect
