"""Unit + property tests for lattice interior-point stripping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Hull
from repro.geometry.lattice import lattice_boundary_points


class TestLatticeBoundary:
    def test_dense_square_keeps_ring(self):
        pts = np.array(
            [[x, y] for x in range(5) for y in range(5)], dtype=float
        )
        out = lattice_boundary_points(pts)
        kept = {tuple(p) for p in out}
        assert (2, 2) not in kept  # interior removed
        assert (0, 0) in kept and (4, 4) in kept and (0, 2) in kept
        assert len(kept) == 25 - 9  # 3x3 interior stripped

    def test_sparse_points_all_kept(self):
        pts = np.array([[0, 0], [5, 5], [10, 0]], dtype=float)
        out = lattice_boundary_points(pts)
        assert {tuple(p) for p in out} == {(0, 0), (5, 5), (10, 0)}

    def test_tiny_input_passthrough(self):
        pts = np.array([[0, 0], [1, 1]], dtype=float)
        assert lattice_boundary_points(pts).shape == (2, 2)

    def test_non_integer_passthrough(self):
        pts = np.array([[0.5, 0.5], [1.5, 1.5], [0.5, 1.5], [2.5, 0.5],
                        [3.5, 3.5], [2.5, 2.5]], dtype=float)
        assert lattice_boundary_points(pts).shape == pts.shape

    def test_dense_cube_3d(self):
        pts = np.array(
            [[x, y, z] for x in range(4) for y in range(4) for z in range(4)],
            dtype=float,
        )
        out = lattice_boundary_points(pts)
        assert out.shape[0] == 64 - 8  # 2^3 interior cells removed

    @given(st.sets(
        st.tuples(st.integers(0, 10), st.integers(0, 10)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=80, deadline=None)
    def test_hull_unchanged_by_stripping(self, pts):
        """The optimization must never change the resulting hull."""
        arr = np.asarray(sorted(pts), dtype=float)
        full = Hull.from_points(arr)
        stripped = Hull.from_points(lattice_boundary_points(arr))
        probe = np.array(
            [[x, y] for x in range(-1, 12) for y in range(-1, 12)],
            dtype=float,
        )
        assert np.array_equal(
            full.contains(probe, tol=1e-6),
            stripped.contains(probe, tol=1e-6),
        )

    @given(st.sets(
        st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 8)),
        min_size=1, max_size=80,
    ))
    @settings(max_examples=30, deadline=None)
    def test_extreme_points_never_stripped_3d(self, pts):
        arr = np.asarray(sorted(pts), dtype=float)
        kept = {tuple(p) for p in lattice_boundary_points(arr)}
        # Componentwise extremes are always boundary points.
        for axis in range(3):
            lo = arr[arr[:, axis].argmin()]
            hi = arr[arr[:, axis].argmax()]
            assert tuple(lo) in kept
            assert tuple(hi) in kept
