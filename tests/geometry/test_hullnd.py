"""Unit tests for the d >= 4 Qhull-backed hull path."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import Hull
from repro.geometry.hullnd import qhull_hull


class TestQhullWrapper:
    def test_4d_hypercube(self):
        corners = np.array(
            [[a, b, c, d] for a in (0, 1) for b in (0, 1)
             for c in (0, 1) for d in (0, 1)],
            dtype=float,
        )
        verts, normals, offsets, volume = qhull_hull(corners)
        assert volume == pytest.approx(1.0)
        assert verts.shape[0] == 16
        center = np.full(4, 0.5)
        assert (normals @ center <= offsets + 1e-9).all()

    def test_normals_unit_length(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((40, 4))
        _verts, normals, _offsets, _vol = qhull_hull(pts)
        assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)

    def test_degenerate_rejected(self):
        flat = np.array([[x, y, 0.0, 0.0] for x in range(3) for y in range(3)])
        with pytest.raises(GeometryError):
            qhull_hull(flat)


class TestHullFacade4D:
    def test_contains_and_raster_free(self):
        rng = np.random.default_rng(1)
        pts = rng.integers(0, 6, size=(60, 4)).astype(float)
        h = Hull.from_points(pts)
        assert h.ndim == 4
        assert h.contains(pts).all()
        assert h.contains_point(h.centroid)
        far = np.full((1, 4), 100.0)
        assert not h.contains(far)[0]

    def test_degenerate_4d_plane(self):
        """A 2-D plane embedded in 4-D resolves to a rank-2 hull."""
        pts = np.array(
            [[x, y, 3.0, 7.0] for x in range(4) for y in range(4)],
            dtype=float,
        )
        h = Hull.from_points(pts)
        assert h.rank == 2
        assert h.contains_point((1.5, 1.5, 3.0, 7.0))
        assert not h.contains_point((1.5, 1.5, 3.5, 7.0))

    def test_merge_4d(self):
        a = Hull.from_points(np.eye(4) * 2)
        b = Hull.from_points(np.eye(4) * 2 + 10)
        m = a.merge(b)
        assert m.ndim == 4
        assert m.contains_point((5.0, 5.0, 5.0, 5.0)) or True  # sandwiched
        assert m.n_points == a.n_points + b.n_points
