"""End-to-end chaos acceptance drills (``pytest -m chaos``).

These run whole fuzz+carve campaigns under injected faults and assert
the ISSUE acceptance criterion: with a flaky fetcher, a killed worker,
and a mid-campaign crash + resume, the pipeline completes and its carved
indices are identical to the fault-free run on the same seed.
"""

import os

import pytest

from repro.cli import main
from repro.errors import InjectedFault
from repro.perf.config import PerfConfig
from repro.perf.executor import make_executor
from repro.resilience.chaos import DRILL_NAMES, run_chaos
from repro.resilience.faults import WorkerSuicide

pytestmark = pytest.mark.chaos


class TestChaosDrills:
    def test_pipeline_survives_all_injected_faults(self, tmp_path):
        report = run_chaos(
            "CS", dims=(32, 32), seed=0, max_iter=300,
            fetch_fail_rate=0.5, crash_at=120, kill_workers=1,
            workdir=str(tmp_path),
        )
        failures = [c for c in report.checks if not c.passed]
        assert not failures, report.format()
        assert {c.name for c in report.checks} == {
            "worker-killed", "crash-resume", "flaky-fetch", "heal",
            "corrupt-artifact", "corrupt-span-degrades",
            "torn-patch-recovers", "hung-run-times-out",
            "leaky-run-contained", "worker-killed-mid-job-requeues",
            "serve-crash-recovers-queue",
            "shard-worker-killed-requeues-only-lost-shards",
            "straggler-hedge-first-completion-wins",
            "fleet-partition-heals", "stale-worker-fenced-out",
        }
        # The registry (and `kondo chaos --list`) must match what ran.
        assert [c.name for c in report.checks] == list(DRILL_NAMES)

    def test_different_seed_still_survives(self, tmp_path):
        report = run_chaos(
            "CS", dims=(32, 32), seed=7, max_iter=250, crash_at=90,
            workdir=str(tmp_path),
        )
        assert report.passed, report.format()


class TestKilledWorkerProcess:
    def test_dead_process_worker_surfaces_as_failed_outcomes(self,
                                                             tmp_path):
        """A worker killed with os._exit — the real SIGKILL-style death —
        breaks the process pool; map_outcomes must convert that into
        per-item failures and recover on the next batch."""
        sentinel = str(tmp_path / "suicide.sentinel")
        suicidal = WorkerSuicide(_square, sentinel)
        with make_executor(PerfConfig(workers=2, backend="process")) as ex:
            outcomes = ex.map_outcomes(suicidal, [1, 2, 3, 4])
            assert any(not o.ok for o in outcomes)
            assert os.path.exists(sentinel)
            # The pool was discarded; a fresh one serves the next batch.
            retry = ex.map_outcomes(suicidal, [5, 6])
            assert [o.value for o in retry if o.ok] == [25, 36]


def _square(x):
    return x * x


class TestSupervisedCampaignDrills:
    """Supervised-execution failure drills: timeout, OOM containment,
    and heartbeat loss, each quarantined with the right verdict while
    the campaign completes."""

    def _campaign(self, tmp_path, resilience, wrapper):
        from repro.core.pipeline import Kondo
        from repro.fuzzing import FuzzConfig
        from repro.resilience.chaos import _wrap_test
        from repro.workloads import get_program

        kondo = Kondo(
            get_program("CS"), (32, 32),
            fuzz_config=FuzzConfig(rng_seed=0, max_iter=80),
            resilience=resilience,
        )
        test = _wrap_test(kondo, wrapper, str(tmp_path / "fault.cnt"))
        return kondo.analyze(test=test)

    def test_hung_run_is_quarantined_as_timeout(self, tmp_path):
        from repro.resilience.config import ResilienceConfig
        from repro.resilience.faults import HangForever

        result = self._campaign(
            tmp_path,
            ResilienceConfig(run_timeout_s=0.5, quarantine=True),
            lambda test, cnt: HangForever(test, 20, counter_path=cnt),
        )
        assert [(q.iteration, q.verdict) for q in result.fuzz.quarantined] \
            == [(20, "TIMEOUT")]
        assert result.fuzz.iterations == 80

    def test_leaky_run_is_quarantined_as_oom(self, tmp_path):
        from repro.resilience.config import ResilienceConfig
        from repro.resilience.faults import MemoryHog

        result = self._campaign(
            tmp_path,
            ResilienceConfig(run_timeout_s=10.0, run_memory_mb=128,
                             quarantine=True),
            lambda test, cnt: MemoryHog(test, 20, grow_mb=512,
                                        counter_path=cnt),
        )
        assert [(q.iteration, q.verdict) for q in result.fuzz.quarantined] \
            == [(20, "OOM")]

    def test_silent_run_is_quarantined_as_lost_heartbeat(self, tmp_path):
        from repro.resilience.config import ResilienceConfig
        from repro.resilience.faults import HangForever

        # A generous wall budget with a tight heartbeat: the suppressed
        # heartbeat must kill the run long before the wall clock would.
        result = self._campaign(
            tmp_path,
            ResilienceConfig(run_timeout_s=30.0, heartbeat_interval_s=0.05,
                             quarantine=True),
            lambda test, cnt: HangForever(test, 20, drop_heartbeat=True,
                                          counter_path=cnt),
        )
        assert [(q.iteration, q.verdict) for q in result.fuzz.quarantined] \
            == [(20, "LOST-HEARTBEAT")]
        assert result.elapsed_seconds < 30.0


class TestChaosCli:
    def test_kondo_chaos_exits_zero_on_survival(self, capsys):
        rc = main(["chaos", "CS", "--dims", "32x32", "--max-iter", "250",
                   "--crash-at", "90"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "survived all injected faults" in out

    def test_kondo_chaos_list_names_every_drill(self, capsys):
        rc = main(["chaos", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.split() == list(DRILL_NAMES)

    def test_kondo_chaos_without_program_or_list_errs(self, capsys):
        rc = main(["chaos"])
        assert rc == 2
        assert "program" in capsys.readouterr().err

    def test_analyze_checkpoint_resume_flags(self, tmp_path, capsys):
        ckpt = str(tmp_path / "c.npz")
        assert main(["analyze", "CS", "--dims", "32x32",
                     "--checkpoint", ckpt, "--checkpoint-every", "50"]) == 0
        first = capsys.readouterr().out.strip().splitlines()[0]
        assert os.path.exists(ckpt)
        assert main(["analyze", "CS", "--dims", "32x32",
                     "--checkpoint", ckpt, "--resume"]) == 0
        resumed = capsys.readouterr().out.strip().splitlines()[0]
        # Same campaign facts either way (timing text differs).
        assert first.split(" in ")[0] == resumed.split(" in ")[0]

    def test_resume_without_checkpoint_is_an_error(self, capsys):
        assert main(["analyze", "CS", "--dims", "32x32", "--resume"]) == 1
        assert "--checkpoint" in capsys.readouterr().err


class TestInjectedFaultSemantics:
    def test_injected_fault_is_not_quarantined(self):
        """InjectedFault models a process crash: even with quarantine on,
        it must abort the campaign (checkpoint+resume is the recovery)."""
        from repro.core.pipeline import Kondo
        from repro.fuzzing import FuzzConfig
        from repro.resilience.chaos import _wrap_test
        from repro.resilience.config import ResilienceConfig
        from repro.resilience.faults import CrashAt
        from repro.workloads import get_program

        kondo = Kondo(
            get_program("CS"), (32, 32),
            fuzz_config=FuzzConfig(rng_seed=0, max_iter=100),
            resilience=ResilienceConfig(quarantine=True),
        )
        test = _wrap_test(kondo, CrashAt, 10)
        with pytest.raises(InjectedFault):
            kondo.analyze(test=test)
