"""Unit + property tests for supervised execution.

Covers the verdict taxonomy (one test per verdict), the escalation
ladder, the executor integration, and the determinism property: a
supervised campaign with no faults injected produces the same carve
results and the same checkpoint state (modulo wall-clock fields) as an
unsupervised one.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Kondo
from repro.errors import ResilienceConfigError, SupervisedRunError
from repro.fuzzing import FuzzConfig
from repro.perf.config import PerfConfig
from repro.perf.executor import make_executor
from repro.resilience.config import ResilienceConfig
from repro.resilience.checkpoint import load_campaign_state
from repro.resilience.supervision import (
    RunVerdict,
    SupervisedResult,
    Supervisor,
    current_address_space_bytes,
    supervisor_from_config,
    suppress_heartbeat,
)
from repro.workloads import get_program


# -- module-level workloads (picklable for process-pool transport) ----------

def _double(x):
    return 2 * x


def _raise_value_error(x):
    raise ValueError(f"boom {x}")


def _exit_7(_x):
    os._exit(7)


def _self_sigusr1(_x):
    os.kill(os.getpid(), signal.SIGUSR1)
    time.sleep(30.0)


def _sleep_forever(_x):
    while True:
        time.sleep(3600.0)


def _ignore_sigterm_and_sleep(_x):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(3600.0)


def _suppress_heartbeat_and_sleep(_x):
    suppress_heartbeat()
    while True:
        time.sleep(3600.0)


def _hoard_memory(_x):
    hoard = []
    while True:
        hoard.append(np.ones(1 << 21, dtype=np.float64))  # 16 MiB/step


class TestVerdictTaxonomy:
    def test_ok_returns_the_child_value(self):
        sup = Supervisor(timeout_s=10.0)
        result = sup.run(_double, 21)
        assert result.verdict is RunVerdict.OK and result.ok
        assert result.value == 42
        assert result.exit_code == 0 and result.signal is None

    def test_numpy_values_round_trip(self):
        sup = Supervisor(timeout_s=10.0)
        result = sup.run(np.arange, 5)
        assert np.array_equal(result.value, np.arange(5))

    def test_child_exception_comes_back_verbatim(self):
        sup = Supervisor(timeout_s=10.0)
        result = sup.run(_raise_value_error, 3)
        assert result.verdict is RunVerdict.NONZERO and not result.ok
        assert isinstance(result.error, ValueError)
        assert str(result.error) == "boom 3"

    def test_wall_clock_hang_is_timeout(self):
        sup = Supervisor(timeout_s=0.3)
        start = time.monotonic()
        result = sup.run(_sleep_forever, None)
        assert result.verdict is RunVerdict.TIMEOUT
        assert time.monotonic() - start < 5.0
        assert "wall-clock" in result.detail

    def test_sigterm_immune_child_is_sigkilled(self):
        sup = Supervisor(timeout_s=0.3, grace_s=0.2)
        result = sup.run(_ignore_sigterm_and_sleep, None)
        assert result.verdict is RunVerdict.TIMEOUT
        assert result.signal == signal.SIGKILL

    def test_lost_heartbeat_beats_the_wall_clock(self):
        sup = Supervisor(timeout_s=30.0, heartbeat_interval_s=0.05)
        start = time.monotonic()
        result = sup.run(_suppress_heartbeat_and_sleep, None)
        assert result.verdict is RunVerdict.LOST_HEARTBEAT
        assert time.monotonic() - start < 10.0
        assert result.verdict.value == "LOST-HEARTBEAT"

    def test_memory_hog_is_oom(self):
        sup = Supervisor(timeout_s=30.0, memory_mb=128)
        result = sup.run(_hoard_memory, None)
        assert result.verdict is RunVerdict.OOM
        assert "memory" in result.detail

    def test_silent_exit_is_nonzero_with_the_code(self):
        sup = Supervisor(timeout_s=10.0)
        result = sup.run(_exit_7, None)
        assert result.verdict is RunVerdict.NONZERO
        assert result.exit_code == 7

    def test_stray_signal_is_signaled(self):
        sup = Supervisor(timeout_s=10.0)
        result = sup.run(_self_sigusr1, None)
        assert result.verdict is RunVerdict.SIGNALED
        assert result.signal == signal.SIGUSR1


class TestSupervisorConfig:
    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0}, {"timeout_s": -1.0}, {"memory_mb": 0},
        {"heartbeat_interval_s": -0.1}, {"grace_s": -1.0},
    ])
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ResilienceConfigError):
            Supervisor(**kwargs)

    def test_supervisor_from_config_defaults_off(self):
        assert supervisor_from_config(None) is None
        assert supervisor_from_config(ResilienceConfig()) is None
        config = ResilienceConfig(checkpoint_path="x.npz", quarantine=True)
        assert not config.supervised
        assert supervisor_from_config(config) is None

    def test_supervisor_from_config_builds_from_knobs(self):
        config = ResilienceConfig(run_timeout_s=2.0, run_memory_mb=64,
                                  heartbeat_interval_s=0.5)
        assert config.supervised
        sup = supervisor_from_config(config)
        assert sup == Supervisor(timeout_s=2.0, memory_mb=64,
                                 heartbeat_interval_s=0.5)

    @pytest.mark.parametrize("kwargs", [
        {"run_timeout_s": 0}, {"run_memory_mb": -1},
        {"heartbeat_interval_s": 0},
    ])
    def test_resilience_config_validates_run_knobs(self, kwargs):
        with pytest.raises(ResilienceConfigError):
            ResilienceConfig(**kwargs)

    def test_current_address_space_is_readable_here(self):
        # The AS-headroom policy depends on this; on Linux CI it must
        # resolve to a real, large number.
        vm = current_address_space_bytes()
        assert vm is None or vm > (1 << 20)


class TestSupervisedCall:
    def test_ok_and_error_semantics_match_unsupervised(self):
        call = Supervisor(timeout_s=10.0).bind(_double)
        assert call(4) == 8
        with pytest.raises(ValueError, match="boom 5"):
            Supervisor(timeout_s=10.0).bind(_raise_value_error)(5)

    def test_verdict_kill_raises_supervised_run_error(self):
        call = Supervisor(timeout_s=0.3).bind(_sleep_forever)
        with pytest.raises(SupervisedRunError) as err:
            call(None)
        assert err.value.verdict == "TIMEOUT"
        # The message is persisted into checkpoints: no timings or PIDs.
        assert "0.3" in str(err.value)

    def test_counters(self):
        call = Supervisor(timeout_s=0.3).bind(_double)
        call(1)
        call(2)
        assert (call.runs, call.non_ok) == (2, 0)

    def test_bound_call_and_error_are_picklable(self):
        call = Supervisor(timeout_s=10.0).bind(_double)
        clone = pickle.loads(pickle.dumps(call))
        assert clone(10) == 20
        err = SupervisedRunError("msg", verdict="OOM", exit_code=None,
                                 signal=9)
        back = pickle.loads(pickle.dumps(err))
        assert (str(back), back.verdict, back.signal) == ("msg", "OOM", 9)


class TestExecutorIntegration:
    def test_supervise_is_identity_without_a_supervisor(self):
        with make_executor() as ex:
            assert ex.supervise(_double) is _double

    def test_serial_map_runs_supervised(self):
        sup = Supervisor(timeout_s=10.0)
        with make_executor(supervisor=sup) as ex:
            assert ex.map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_pool_map_outcomes_carries_verdicts(self):
        sup = Supervisor(timeout_s=0.3)
        config = PerfConfig(workers=2, backend="thread")
        with make_executor(config, supervisor=sup) as ex:
            outcomes = ex.map_outcomes(_sleep_forever, [1, 2])
            assert [o.ok for o in outcomes] == [False, False]
            assert all(
                getattr(o.error, "verdict", None) == "TIMEOUT"
                for o in outcomes
            )

    def test_supervised_result_dataclass(self):
        r = SupervisedResult(verdict=RunVerdict.OK, value=1, elapsed_s=0.0)
        assert r.ok
        assert not SupervisedResult(
            verdict=RunVerdict.OOM, elapsed_s=0.0
        ).ok


def _campaign(tmp_path, label, resilience):
    kondo = Kondo(
        get_program("CS"), (32, 32),
        fuzz_config=FuzzConfig(rng_seed=0, max_iter=60),
        resilience=resilience,
    )
    return kondo.analyze(), str(tmp_path / label)


class TestSupervisedDeterminism:
    """The acceptance property: supervision off vs on (no faults) gives
    identical campaign output and identical checkpoint state, except the
    wall-clock fields that are never replay-relevant."""

    WALL_CLOCK_META = ("elapsed_s",)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_supervised_campaign_is_byte_identical(self, tmp_path_factory,
                                                   seed):
        tmp_path = tmp_path_factory.mktemp("sup")
        plain_ckpt = str(tmp_path / "plain.npz")
        sup_ckpt = str(tmp_path / "sup.npz")
        fuzz = FuzzConfig(rng_seed=seed, max_iter=60)
        program = get_program("CS")
        plain = Kondo(
            program, (32, 32), fuzz_config=fuzz,
            resilience=ResilienceConfig(checkpoint_path=plain_ckpt,
                                        checkpoint_every=25),
        ).analyze()
        supervised = Kondo(
            program, (32, 32), fuzz_config=fuzz,
            resilience=ResilienceConfig(checkpoint_path=sup_ckpt,
                                        checkpoint_every=25,
                                        run_timeout_s=30.0,
                                        run_memory_mb=512,
                                        heartbeat_interval_s=0.2),
        ).analyze()
        assert np.array_equal(plain.observed_flat, supervised.observed_flat)
        assert np.array_equal(plain.carved_flat, supervised.carved_flat)
        assert [s.v for s in plain.fuzz.seeds] \
            == [s.v for s in supervised.fuzz.seeds]
        a = load_campaign_state(plain_ckpt)
        b = load_campaign_state(sup_ckpt)
        assert set(a) == set(b)
        for key in a:
            if key in self.WALL_CLOCK_META:
                continue
            if key == "trace":
                # Column 1 is wall-clock elapsed; 0 and 2 are replay state.
                assert np.array_equal(a[key][:, [0, 2]], b[key][:, [0, 2]])
            elif isinstance(a[key], np.ndarray):
                assert np.array_equal(a[key], b[key]), key
            else:
                assert a[key] == b[key], key
