"""The self-healing runtime: retried fetch, breaker fallback, re-carving."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.errors import DataMissingError, FetchError
from repro.resilience.config import ResilienceConfig
from repro.resilience.faults import FlakyCallable
from repro.resilience.healing import ResilientRuntime, SubsetPatch

DIMS = (8, 8)
KEPT = [0, 1, 2, 9, 10, 11]  # flat indices shipped in the subset
MISSING = [(3, 3), (4, 4), (5, 5)]  # guaranteed Null accesses


@pytest.fixture
def source(tmp_path):
    data = np.arange(64, dtype="f8").reshape(DIMS)
    f = ArrayFile.create(str(tmp_path / "full.knd"),
                         ArraySchema(DIMS, "f8"), data)
    yield f
    f.close()


@pytest.fixture
def subset(tmp_path, source):
    f = DebloatedArrayFile.create(
        str(tmp_path / "part.knds"), source,
        keep_flat_indices=np.asarray(KEPT, dtype=np.int64),
    )
    yield f
    f.close()


def _value(index):
    return float(index[0] * DIMS[1] + index[1])


class TestMissPath:
    def test_hit_never_touches_the_fetcher(self, subset):
        calls = []
        runtime = ResilientRuntime(subset, remote_fetcher=calls.append)
        assert runtime.read((0, 1)) == 1.0
        assert calls == []
        assert runtime.stats.hits == 1

    def test_miss_without_fetcher_or_fallback_raises(self, subset):
        runtime = ResilientRuntime(subset)
        with pytest.raises(DataMissingError):
            runtime.read(MISSING[0])

    def test_flaky_fetcher_healed_by_retries(self, subset, source):
        fetcher = FlakyCallable(source.read_point, fail_rate=0.5, seed=1)
        runtime = ResilientRuntime(
            subset, remote_fetcher=fetcher,
            config=ResilienceConfig(fetch_retries=8, fetch_backoff_s=0.0),
            sleep=lambda _s: None,
        )
        for index in MISSING * 10:
            assert runtime.read(index) == _value(index)
        assert fetcher.failures > 0
        assert runtime.stats.remote_fetches == 30
        assert runtime.stats.fallback_reads == 0

    def test_exhausted_fetch_without_fallback_raises_fetch_error(self,
                                                                 subset):
        def dead(_index):
            raise FetchError("server gone")

        runtime = ResilientRuntime(
            subset, remote_fetcher=dead,
            config=ResilienceConfig(fetch_retries=2, fetch_backoff_s=0.0),
            sleep=lambda _s: None,
        )
        with pytest.raises(FetchError):
            runtime.read(MISSING[0])
        assert runtime.stats.fetch_failures == 1

    def test_failed_fetch_falls_back_to_local_source(self, subset, source):
        def dead(_index):
            raise FetchError("server gone")

        runtime = ResilientRuntime(
            subset, remote_fetcher=dead, fallback_source=source,
            config=ResilienceConfig(fetch_retries=1, fetch_backoff_s=0.0),
            sleep=lambda _s: None,
        )
        index = MISSING[0]
        assert runtime.read(index) == _value(index)
        assert runtime.stats.fallback_reads == 1

    def test_open_breaker_skips_fetcher_entirely(self, subset, source):
        calls = []

        def dead(_index):
            calls.append(1)
            raise FetchError("server gone")

        runtime = ResilientRuntime(
            subset, remote_fetcher=dead, fallback_source=source,
            config=ResilienceConfig(fetch_retries=0, breaker_threshold=2,
                                    breaker_reset_s=3600.0),
            sleep=lambda _s: None,
        )
        for index in MISSING:
            assert runtime.read(index) == _value(index)
        # Two failures trip the breaker; the third miss never calls out.
        assert len(calls) == 2
        assert runtime.stats.breaker_rejections == 1
        assert runtime.stats.fallback_reads == 3

    def test_fallback_only_configuration(self, subset, source):
        runtime = ResilientRuntime(subset, fallback_source=source)
        assert runtime.read(MISSING[1]) == _value(MISSING[1])
        assert runtime.stats.fallback_reads == 1


class TestHealing:
    def test_patch_collects_unique_missed_offsets(self, subset, source):
        runtime = ResilientRuntime(subset, fallback_source=source)
        for index in MISSING + MISSING:  # repeated misses dedup
            runtime.read(index)
        patch = runtime.build_patch()
        assert patch.n_missed == 6
        offs = patch.flat_offsets(source.layout)
        assert offs.size == 3
        assert patch.extents(source.layout, 8) == [
            (int(o), 8) for o in offs
        ]

    def test_heal_recarves_misses_into_subset(self, tmp_path, subset,
                                              source):
        runtime = ResilientRuntime(subset, fallback_source=source)
        for index in MISSING:
            runtime.read(index)
        healed_path = str(tmp_path / "healed.knds")
        healed = runtime.heal(healed_path, source)
        try:
            rerun = ResilientRuntime(healed)
            for index in MISSING:
                assert rerun.read(index) == _value(index)
            for kept_flat in KEPT:
                index = divmod(kept_flat, DIMS[1])
                assert rerun.read(index) == float(kept_flat)
            assert rerun.stats.misses == 0
        finally:
            healed.close()

    def test_empty_patch(self, source):
        patch = SubsetPatch()
        assert patch.n_missed == 0
        assert patch.flat_offsets(source.layout).size == 0
        assert patch.extents(source.layout, 8) == []
