"""Durable bundles: span CRCs, the patch journal, fsck, and repair.

The three property tests the ISSUE names live here:

* v2 and v3 files of the same array are read-equivalent,
* a single flipped payload byte is attributed to exactly one span,
* a crash at *every byte boundary* of a journaled commit recovers to
  exactly the old or exactly the new generation — never a hybrid.
"""

import io
import json
import os
import shutil
import zlib

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.arraymodel.datafile import meta_crc32
from repro.arraymodel.spans import (
    SPAN_CLEAN,
    SPAN_CORRUPT,
    SPAN_UNREADABLE,
    SpanTable,
    build_span_table,
    span_size_for,
)
from repro.errors import DataMissingError, FileFormatError
from repro.resilience.config import ResilienceConfig
from repro.resilience.durability import (
    BundleJournal,
    PatchFile,
    fsck_file,
    read_patch,
    repair_bundle,
    write_patch,
)
from repro.resilience.durability.fsck import (
    EXIT_CLEAN,
    EXIT_CORRUPT,
    EXIT_STRUCTURAL,
)
from repro.resilience.durability.journal import apply_patch, build_patch
from repro.resilience.healing import ResilientRuntime

DIMS = (32, 32)
ROW = DIMS[1] * 8  # bytes per f8 row
KEPT_ROWS = 16


@pytest.fixture
def source(tmp_path):
    data = np.arange(DIMS[0] * DIMS[1], dtype="f8").reshape(DIMS)
    f = ArrayFile.create(str(tmp_path / "full.knd"),
                         ArraySchema(DIMS, "f8"), data)
    yield f
    f.close()


@pytest.fixture
def bundle_path(tmp_path, source):
    path = str(tmp_path / "part.knds")
    DebloatedArrayFile.create(
        path, source, keep_extents=[(0, KEPT_ROWS * ROW)],
    ).close()
    return path


def _payload_start(path):
    with open(path, "rb") as fh:
        fh.seek(4)
        return 8 + int.from_bytes(fh.read(4), "little")


def _read_header(path):
    with open(path, "rb") as fh:
        fh.seek(4)
        hlen = int.from_bytes(fh.read(4), "little")
        return json.loads(fh.read(hlen).decode("utf-8"))


def _write_v2(path, magic, body, payload):
    """Hand-roll a version-2 file: whole-payload CRC, no span table."""
    header = dict(body)
    header["version"] = 2
    header["meta_crc32"] = meta_crc32(body)
    header["payload_crc32"] = zlib.crc32(payload)
    raw = json.dumps(header).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(magic)
        fh.write(len(raw).to_bytes(4, "little"))
        fh.write(raw)
        fh.write(payload)


def _flip(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        b = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([b[0] ^ 0xFF]))


# ---------------------------------------------------------------------------
# Property 1: v2 <-> v3 read equivalence


class TestV2V3Equivalence:
    def test_knds_v2_and_v3_read_identically(self, tmp_path, source,
                                             bundle_path):
        with DebloatedArrayFile.open(bundle_path) as v3:
            payload = v3.read_local_raw(0, v3.kept_nbytes)
            extents = list(v3.extents)
        v2_path = str(tmp_path / "part_v2.knds")
        _write_v2(v2_path, b"KNDS",
                  {"schema": source.schema.to_dict(),
                   "extents": [[s, z] for s, z in extents]},
                  payload)
        with DebloatedArrayFile.open(v2_path) as v2, \
                DebloatedArrayFile.open(bundle_path) as v3:
            assert v2.span_table is None and v3.span_table is not None
            for flat in range(DIMS[0] * DIMS[1]):
                index = divmod(flat, DIMS[1])
                if flat < KEPT_ROWS * DIMS[1]:
                    assert v2.read_point(index) == v3.read_point(index) \
                        == float(flat)
                else:
                    for f in (v2, v3):
                        with pytest.raises(DataMissingError):
                            f.read_point(index)

    def test_knd_v2_opens_and_fscks_clean(self, tmp_path, source):
        with open(source.path, "rb") as fh:
            blob = fh.read()
        payload = blob[_payload_start(source.path):]
        v2_path = str(tmp_path / "full_v2.knd")
        _write_v2(v2_path, b"KND1", {"schema": source.schema.to_dict()},
                  payload)
        with ArrayFile.open(v2_path) as v2:
            assert v2.span_table is None
            assert v2.read_point((3, 7)) == source.read_point((3, 7))
        report = fsck_file(v2_path)
        assert report.exit_code == EXIT_CLEAN
        assert report.version == 2
        assert report.payload_crc_ok is True
        assert report.n_spans is None

    def test_recarving_a_v2_bundle_yields_v3(self, tmp_path, source):
        v3_path = str(tmp_path / "recarved.knds")
        DebloatedArrayFile.create(
            v3_path, source, keep_extents=[(0, 4 * ROW)],
        ).close()
        header = _read_header(v3_path)
        assert header["version"] == 3
        assert "spans" in header


# ---------------------------------------------------------------------------
# Property 2: one flipped byte -> exactly one corrupt span


class TestSingleFlipLocalization:
    def test_every_payload_flip_corrupts_exactly_its_span(self,
                                                          bundle_path):
        with open(bundle_path, "rb") as fh:
            blob = fh.read()
        start = _payload_start(bundle_path)
        table = SpanTable.from_dict(_read_header(bundle_path)["spans"])
        assert table.n_spans > 1  # the sweep must cross span boundaries
        for i in range(start, len(blob)):
            mutated = bytearray(blob)
            mutated[i] ^= 0xFF
            statuses = table.classify_stream(io.BytesIO(bytes(mutated)),
                                             start)
            expected = (i - start) // table.span_size
            assert statuses[expected] == SPAN_CORRUPT
            assert all(s == SPAN_CLEAN for o, s in enumerate(statuses)
                       if o != expected)

    def test_every_header_flip_is_structural_or_detected(self,
                                                         bundle_path,
                                                         tmp_path):
        start = _payload_start(bundle_path)
        for i in range(start):
            damaged = str(tmp_path / "hdr.knds")
            shutil.copyfile(bundle_path, damaged)
            _flip(damaged, i)
            assert fsck_file(damaged).exit_code != EXIT_CLEAN

    def test_truncation_marks_tail_spans_unreadable(self, bundle_path):
        size = os.path.getsize(bundle_path)
        with open(bundle_path, "r+b") as fh:
            fh.truncate(size - 10)
        report = fsck_file(bundle_path)
        assert report.exit_code == EXIT_CORRUPT
        assert report.bad_spans[-1]["status"] == SPAN_UNREADABLE

    def test_span_size_adapts_to_payload(self):
        chunked = ArraySchema((16, 16), "f8", chunks=(4, 4))
        assert span_size_for(chunked) == chunked.chunk_nbytes
        flat = ArraySchema((1024, 1024), "f8")
        assert span_size_for(flat, 1024) == 512  # floor for tiny subsets
        assert span_size_for(flat, 1 << 30) == 64 * 1024

    def test_build_span_table_covers_ragged_tail(self):
        payload = bytes(range(256)) * 5  # 1280 bytes, span 512 -> 3 spans
        table = build_span_table(payload, 512)
        assert table.n_spans == 3
        assert table.span_range(2) == (1024, 256)
        assert table.classify_stream(io.BytesIO(payload), 0) == \
            [SPAN_CLEAN] * 3


# ---------------------------------------------------------------------------
# Property 3: crash at every byte boundary -> old or new, never hybrid


class TestCrashEveryByteBoundary:
    def test_recovery_yields_old_or_new_never_hybrid(self, tmp_path,
                                                     source, bundle_path):
        # Run one real journaled commit to obtain the artifacts.
        journal = BundleJournal.open(bundle_path)
        with open(bundle_path, "rb") as fh:
            old_bytes = fh.read()
        patch = build_patch([
            (KEPT_ROWS * ROW, 4 * ROW,
             source.read_extent(KEPT_ROWS * ROW, 4 * ROW)),
        ])
        assert journal.commit_patch(patch) == 2
        with open(bundle_path, "rb") as fh:
            new_bytes = fh.read()
        assert new_bytes != old_bytes
        with open(journal.log_path, "rb") as fh:
            log = fh.read()
        lines = log.splitlines(keepends=True)
        assert len(lines) == 3  # adopt-commit, begin, commit
        adopt_end = len(lines[0])
        begin_end = adopt_end + len(lines[1])
        gen_files = {
            name: open(os.path.join(journal.journal_dir, name),
                       "rb").read()
            for name in os.listdir(journal.journal_dir)
            if name != "journal.log"
        }

        for cut in range(adopt_end, len(log) + 1):
            # The bundle rename (step 3) happens after the BEGIN record
            # is fully durable and before any COMMIT byte is appended,
            # so a torn/absent BEGIN implies the old bundle and any
            # COMMIT prefix implies the new one; only at the exact
            # BEGIN boundary are both sides reachable.
            states = ["old"] if cut < begin_end else \
                ["old", "new"] if cut == begin_end else ["new"]
            for state in states:
                self._check_one_crash(
                    tmp_path, cut, state, log, gen_files,
                    old_bytes, new_bytes,
                )

    def _check_one_crash(self, tmp_path, cut, state, log, gen_files,
                         old_bytes, new_bytes):
        root = tmp_path / f"crash-{cut}-{state}"
        root.mkdir()
        bundle = str(root / "part.knds")
        with open(bundle, "wb") as fh:
            fh.write(old_bytes if state == "old" else new_bytes)
        jdir = bundle + ".journal"
        os.mkdir(jdir)
        with open(os.path.join(jdir, "journal.log"), "wb") as fh:
            fh.write(log[:cut])
        for name, blob in gen_files.items():
            with open(os.path.join(jdir, name), "wb") as fh:
                fh.write(blob)

        journal = BundleJournal.open(bundle)
        with open(bundle, "rb") as fh:
            recovered = fh.read()
        label = f"crash at byte {cut} with {state} bundle"
        assert recovered in (old_bytes, new_bytes), label
        assert journal.pending is None, label
        expected_gen = 2 if recovered == new_bytes else 1
        assert journal.current_generation == expected_gen, label
        report = fsck_file(bundle)
        assert report.exit_code == EXIT_CLEAN, \
            f"{label}: {report.format()}"

    def test_corrupt_log_middle_is_rejected(self, bundle_path):
        journal = BundleJournal.open(bundle_path)
        journal.commit_bytes(open(bundle_path, "rb").read(), "patch")
        _flip(journal.log_path, 5)  # damages the first record
        with pytest.raises(FileFormatError, match="journal log corrupt"):
            BundleJournal.open(bundle_path)

    def test_bundle_matching_neither_restores_base_snapshot(
            self, tmp_path, source, bundle_path):
        journal = BundleJournal.open(bundle_path)
        with open(bundle_path, "rb") as fh:
            old_bytes = fh.read()
        patch = build_patch([(KEPT_ROWS * ROW, ROW,
                              source.read_extent(KEPT_ROWS * ROW, ROW))])
        journal.commit_patch(patch)
        # Forge a torn commit, then corrupt the live bundle so it matches
        # neither side of it: recovery must fall back to the base snapshot.
        log = open(journal.log_path, "rb").read()
        lines = log.splitlines(keepends=True)
        with open(journal.log_path, "wb") as fh:
            fh.write(b"".join(lines[:-1]))  # drop the final COMMIT
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        recovered = BundleJournal.open(bundle_path)
        assert recovered.recovery == "rolled-back"
        assert open(bundle_path, "rb").read() == old_bytes


# ---------------------------------------------------------------------------
# Patch files


class TestPatchFile:
    def test_validation_rejects_overlap_and_length_mismatch(self):
        with pytest.raises(FileFormatError):
            PatchFile(extents=((0, 4), (2, 4)), payload=bytes(8))
        with pytest.raises(FileFormatError):
            PatchFile(extents=((8, 4), (0, 4)), payload=bytes(8))
        with pytest.raises(FileFormatError):
            PatchFile(extents=((0, 4),), payload=bytes(5))
        with pytest.raises(FileFormatError):
            PatchFile(extents=((0, 0),), payload=b"")

    def test_build_patch_sorts_parts(self):
        patch = build_patch([(8, 2, b"cd"), (0, 2, b"ab")])
        assert patch.extents == ((0, 2), (8, 2))
        assert patch.chunks() == [(0, 2, b"ab"), (8, 2, b"cd")]

    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "p.kpatch")
        patch = build_patch([(0, 3, b"abc"), (10, 2, b"xy")])
        write_patch(path, patch)
        assert read_patch(path) == patch

    def test_read_detects_payload_corruption(self, tmp_path):
        path = str(tmp_path / "p.kpatch")
        write_patch(path, build_patch([(0, 4, b"abcd")]))
        _flip(path, os.path.getsize(path) - 1)
        with pytest.raises(FileFormatError, match="payload checksum"):
            read_patch(path)

    def test_read_detects_torn_write(self, tmp_path):
        path = str(tmp_path / "p.kpatch")
        write_patch(path, build_patch([(0, 4, b"abcd")]))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 2)
        with pytest.raises(FileFormatError):
            read_patch(path)

    def test_apply_patch_extends_and_overrides(self, source, bundle_path):
        new_rows = source.read_extent(KEPT_ROWS * ROW, 2 * ROW)
        override = b"\x11" * 8  # rewrite the first kept element too
        patch = build_patch([(0, 8, override),
                             (KEPT_ROWS * ROW, 2 * ROW, new_rows)])
        with DebloatedArrayFile.open(bundle_path) as bundle:
            blob = apply_patch(bundle, patch)
        healed = str(os.path.dirname(bundle_path) + "/healed.knds")
        with open(healed, "wb") as fh:
            fh.write(blob)
        with DebloatedArrayFile.open(healed) as f:
            assert f.extents == [(0, (KEPT_ROWS + 2) * ROW)]
            assert f.read_point((KEPT_ROWS, 0)) == \
                float(KEPT_ROWS * DIMS[1])
            raw = f.read_local_raw(0, 8)
            assert raw == override
        assert fsck_file(healed, check_journal=False).clean


# ---------------------------------------------------------------------------
# The journal lifecycle


class TestBundleJournal:
    def test_first_open_adopts_generation_one(self, bundle_path):
        journal = BundleJournal.open(bundle_path)
        assert journal.recovery == "adopted"
        assert journal.current_generation == 1
        assert journal.generations() == [1]
        snap = open(journal.generation_path(1), "rb").read()
        assert snap == open(bundle_path, "rb").read()

    def test_reopen_is_clean_and_idempotent(self, bundle_path):
        BundleJournal.open(bundle_path)
        journal = BundleJournal.open(bundle_path)
        assert journal.recovery == "clean"
        assert journal.current_generation == 1

    def test_rollback_restores_prior_generation(self, source, bundle_path):
        journal = BundleJournal.open(bundle_path)
        gen1 = open(bundle_path, "rb").read()
        patch = build_patch([(KEPT_ROWS * ROW, ROW,
                              source.read_extent(KEPT_ROWS * ROW, ROW))])
        journal.commit_patch(patch)
        gen2 = open(bundle_path, "rb").read()
        assert journal.rollback() == 3
        assert open(bundle_path, "rb").read() == gen1
        # History stays append-only: rolling back to gen 2 still works.
        assert journal.rollback(to_gen=2) == 4
        assert open(bundle_path, "rb").read() == gen2
        assert journal.generations() == [1, 2, 3, 4]

    def test_rollback_refuses_single_generation(self, bundle_path):
        journal = BundleJournal.open(bundle_path)
        with pytest.raises(FileFormatError, match="nothing to roll back"):
            journal.rollback()

    def test_rollback_refuses_corrupt_snapshot(self, source, bundle_path):
        journal = BundleJournal.open(bundle_path)
        patch = build_patch([(KEPT_ROWS * ROW, ROW,
                              source.read_extent(KEPT_ROWS * ROW, ROW))])
        journal.commit_patch(patch)
        _flip(journal.generation_path(1), 100)
        with pytest.raises(FileFormatError, match="snapshot is corrupt"):
            journal.rollback()

    def test_pruning_keeps_newest_and_current(self, source, bundle_path):
        journal = BundleJournal.open(bundle_path, keep_generations=2)
        for i in range(3):
            patch = build_patch([
                ((KEPT_ROWS + i) * ROW, ROW,
                 source.read_extent((KEPT_ROWS + i) * ROW, ROW)),
            ])
            journal.commit_patch(patch)
        assert journal.current_generation == 4
        assert journal.generations() == [3, 4]
        with pytest.raises(FileFormatError, match="pruned"):
            journal.rollback(to_gen=1)

    def test_keep_generations_config_knob(self):
        assert ResilienceConfig(keep_generations=3).keep_generations == 3
        from repro.errors import ResilienceConfigError
        with pytest.raises(ResilienceConfigError):
            ResilienceConfig(keep_generations=-1)

    def test_open_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(FileFormatError, match="no such bundle"):
            BundleJournal.open(str(tmp_path / "ghost.knds"))


# ---------------------------------------------------------------------------
# fsck


class TestFsck:
    def test_clean_report_shape(self, bundle_path):
        report = fsck_file(bundle_path)
        j = report.to_json()
        assert j["exit_code"] == EXIT_CLEAN and j["clean"]
        assert j["kind"] == "knds" and j["version"] == 3
        assert j["header_ok"] is True
        assert j["spans"]["total"] > 1
        assert j["spans"]["counts"] == {SPAN_CLEAN: j["spans"]["total"],
                                        SPAN_CORRUPT: 0,
                                        SPAN_UNREADABLE: 0}
        assert j["spans"]["bad"] == []
        assert j["consistency_errors"] == []
        assert j["journal"] is None  # no journal yet

    def test_flip_reports_one_bad_span(self, bundle_path):
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        report = fsck_file(bundle_path)
        assert report.exit_code == EXIT_CORRUPT
        assert len(report.bad_spans) == 1
        assert report.bad_spans[0]["status"] == SPAN_CORRUPT
        assert "DAMAGED" in report.format()

    def test_header_damage_is_structural(self, bundle_path):
        _flip(bundle_path, 20)
        report = fsck_file(bundle_path)
        assert report.exit_code == EXIT_STRUCTURAL
        assert not report.header_ok

    def test_bad_magic_and_missing_file(self, tmp_path, bundle_path):
        _flip(bundle_path, 0)
        assert fsck_file(bundle_path).exit_code == EXIT_STRUCTURAL
        ghost = fsck_file(str(tmp_path / "ghost.knds"))
        assert ghost.exit_code == EXIT_STRUCTURAL
        assert ghost.header_error == "no such file"

    def test_pending_journal_commit_flags_file(self, source, bundle_path):
        journal = BundleJournal.open(bundle_path)
        patch = build_patch([(KEPT_ROWS * ROW, ROW,
                              source.read_extent(KEPT_ROWS * ROW, ROW))])
        journal.commit_patch(patch)
        log = open(journal.log_path, "rb").read()
        lines = log.splitlines(keepends=True)
        with open(journal.log_path, "wb") as fh:
            fh.write(b"".join(lines[:-1]))  # drop the final COMMIT
        report = fsck_file(bundle_path)
        assert report.exit_code == EXIT_CORRUPT
        assert report.journal["pending"]["gen"] == 2
        assert report.journal["bundle_matches"] == "new"

    def test_clean_journal_in_report(self, bundle_path):
        BundleJournal.open(bundle_path)
        report = fsck_file(bundle_path)
        assert report.clean
        assert report.journal["current_generation"] == 1
        assert report.journal["pending"] is None


# ---------------------------------------------------------------------------
# Degrade-mode reads


class TestDegradeMode:
    def test_corrupt_span_reads_become_misses(self, bundle_path):
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.open(bundle_path)
        with DebloatedArrayFile.open(bundle_path,
                                     on_corruption="degrade") as f:
            assert f.degraded
            (off, size), = f.corrupt_local_ranges
            with pytest.raises(DataMissingError, match="corrupt span"):
                f.read_point(divmod(off // 8, DIMS[1]))
            # An element outside the corrupt span still reads fine.
            assert f.read_point((0, 0)) == 0.0

    def test_degraded_runtime_stays_bit_correct(self, source, bundle_path):
        _flip(bundle_path, _payload_start(bundle_path))
        with DebloatedArrayFile.open(bundle_path,
                                     on_corruption="degrade") as f:
            runtime = ResilientRuntime(f, fallback_source=source)
            for flat in range(KEPT_ROWS * DIMS[1]):
                assert runtime.read(divmod(flat, DIMS[1])) == float(flat)
            assert runtime.stats.fallback_reads > 0


# ---------------------------------------------------------------------------
# Repair


class TestRepair:
    def test_repair_refetches_only_the_damaged_span(self, source,
                                                    bundle_path):
        BundleJournal.open(bundle_path)
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        report = repair_bundle(bundle_path, source_path=source.path)
        assert report.before_exit == EXIT_CORRUPT
        assert report.clean_after
        assert report.generation == 2
        assert report.spans_repaired == 1
        assert 0 < report.bytes_fetched < KEPT_ROWS * ROW
        with DebloatedArrayFile.open(bundle_path) as f:
            assert f.read_point((KEPT_ROWS - 1, DIMS[1] - 1)) == \
                float(KEPT_ROWS * DIMS[1] - 1)

    def test_repair_of_clean_bundle_is_a_noop(self, bundle_path):
        report = repair_bundle(bundle_path)
        assert report.generation is None
        assert "nothing to do" in report.format()

    def test_structural_damage_restored_from_snapshot(self, bundle_path):
        BundleJournal.open(bundle_path)
        good = open(bundle_path, "rb").read()
        _flip(bundle_path, 20)  # header: no origin needed for restore
        report = repair_bundle(bundle_path)
        assert report.before_exit == EXIT_STRUCTURAL
        assert report.restored_from_snapshot
        assert report.clean_after
        assert open(bundle_path, "rb").read() == good

    def test_span_damage_without_source_is_refused(self, bundle_path):
        BundleJournal.open(bundle_path)
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        with pytest.raises(FileFormatError, match="origin"):
            repair_bundle(bundle_path)

    def test_schema_mismatch_is_refused(self, tmp_path, bundle_path):
        BundleJournal.open(bundle_path)
        _flip(bundle_path, os.path.getsize(bundle_path) - 1)
        other = ArrayFile.create(str(tmp_path / "other.knd"),
                                 ArraySchema((8, 8), "f8"))
        other.close()
        with pytest.raises(FileFormatError, match="schema"):
            repair_bundle(bundle_path, source_path=other.path)

    def test_chunked_origin_fetches_whole_chunks(self, tmp_path):
        schema = ArraySchema((16, 16), "f8", chunks=(4, 4))
        data = np.arange(256, dtype="f8").reshape(16, 16)
        source = ArrayFile.create(str(tmp_path / "c.knd"), schema, data)
        bundle = str(tmp_path / "c.knds")
        DebloatedArrayFile.create(
            bundle, source, keep_extents=[(0, 4 * schema.chunk_nbytes)],
        ).close()
        BundleJournal.open(bundle)
        _flip(bundle, os.path.getsize(bundle) - 1)
        report = repair_bundle(bundle, source_path=source.path)
        assert report.clean_after
        # Chunked spans are chunks, so the re-fetch is chunk-sized.
        assert report.bytes_fetched == schema.chunk_nbytes
        source.close()

    def test_pre_v3_bundle_refetches_everything(self, tmp_path, source,
                                                bundle_path):
        with DebloatedArrayFile.open(bundle_path) as v3:
            payload = v3.read_local_raw(0, v3.kept_nbytes)
            extents = list(v3.extents)
        v2_path = str(tmp_path / "old.knds")
        _write_v2(v2_path, b"KNDS",
                  {"schema": source.schema.to_dict(),
                   "extents": [[s, z] for s, z in extents]},
                  payload)
        BundleJournal.open(v2_path)
        _flip(v2_path, os.path.getsize(v2_path) - 1)
        report = repair_bundle(v2_path, source_path=source.path)
        assert report.clean_after
        assert report.bytes_fetched == KEPT_ROWS * ROW  # no localization
        # The repaired generation is a v3 file: damage now localizes.
        assert _read_header(v2_path)["version"] == 3


# ---------------------------------------------------------------------------
# Journaled healing


class TestHealInPlace:
    def test_misses_commit_as_a_new_generation(self, source, bundle_path):
        with DebloatedArrayFile.open(bundle_path) as subset:
            runtime = ResilientRuntime(subset, fallback_source=source)
            missed = [(KEPT_ROWS, 0), (KEPT_ROWS + 1, 3)]
            for index in missed:
                runtime.read(index)
            assert runtime.heal_in_place(source) == 2
        with DebloatedArrayFile.open(bundle_path) as healed:
            for index in missed:
                assert healed.contains_index(index)
        journal = BundleJournal.open(bundle_path)
        assert journal.current_generation == 2
        assert os.path.exists(journal.patch_path(2))
        assert read_patch(journal.patch_path(2)).nbytes == 16

    def test_nothing_to_heal_keeps_generation(self, source, bundle_path):
        with DebloatedArrayFile.open(bundle_path) as subset:
            runtime = ResilientRuntime(subset, fallback_source=source)
            runtime.read((0, 0))  # a hit, not a miss
            assert runtime.heal_in_place(source) == 1

    def test_config_keep_generations_prunes_history(self, source,
                                                    bundle_path):
        config = ResilienceConfig(keep_generations=1)
        for i in range(3):
            with DebloatedArrayFile.open(bundle_path) as subset:
                runtime = ResilientRuntime(subset, fallback_source=source,
                                           config=config)
                runtime.read((KEPT_ROWS + i, 0))
                runtime.heal_in_place(source)
        journal = BundleJournal.open(bundle_path)
        assert journal.current_generation == 4
        assert journal.generations() == [4]
