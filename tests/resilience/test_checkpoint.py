"""Campaign checkpoints: atomic persistence, validation, and the core
guarantee — a crashed-and-resumed campaign is bit-identical to one that
never crashed."""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, InjectedFault, ResilienceConfigError
from repro.fuzzing import FuzzConfig
from repro.fuzzing.schedule import FuzzSchedule
from repro.resilience.checkpoint import (
    load_campaign_state,
    save_campaign_state,
)
from repro.resilience.config import NO_RESILIENCE, ResilienceConfig
from repro.resilience.faults import CrashAt
from repro.workloads import get_program

DIMS = (16, 16)


def _make_test(program_name="CS", dims=DIMS):
    program = get_program(program_name)

    def test(v):
        from repro.arraymodel.layout import flatten_many

        idx = program.access_indices(v, dims)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        return flatten_many(idx, dims)

    return test, program.parameter_space(dims), int(np.prod(dims))


def _config(seed=0, max_iter=120, **resilience_kwargs):
    resilience = ResilienceConfig(**resilience_kwargs)
    return FuzzConfig(rng_seed=seed, max_iter=max_iter,
                      resilience=resilience)


class TestResilienceConfig:
    def test_defaults_are_all_off(self):
        assert not NO_RESILIENCE.checkpointing
        assert not NO_RESILIENCE.quarantine
        assert not NO_RESILIENCE.worker_recovery
        assert NO_RESILIENCE.fetch_retries == 0
        assert NO_RESILIENCE.breaker_threshold == 0

    @pytest.mark.parametrize("kwargs", [
        {"fetch_retries": -1},
        {"fetch_backoff_factor": 0.9},
        {"fetch_deadline_s": 0.0},
        {"breaker_threshold": -1},
        {"checkpoint_every": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ResilienceConfigError):
            ResilienceConfig(**kwargs)


class TestSaveLoad:
    def _state(self, tmp_path, checkpoint_every=25):
        test, space, n_flat = _make_test()
        path = str(tmp_path / "ckpt.npz")
        config = _config(checkpoint_path=path,
                         checkpoint_every=checkpoint_every)
        schedule = FuzzSchedule(test, space, config, n_flat)
        schedule.run()
        return path, schedule

    def test_roundtrip_restores_every_field(self, tmp_path):
        path, schedule = self._state(tmp_path)
        state = load_campaign_state(path)
        assert state["itr"] == schedule.itr
        assert state["eps"] == schedule.eps
        assert np.array_equal(
            state["bitmap_indices"], np.flatnonzero(schedule.bitmap)
        )
        assert state["seed_v"].shape[0] == len(schedule.seeds)

    def test_missing_keys_rejected_on_save(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing keys"):
            save_campaign_state(str(tmp_path / "x.npz"), {"version": 1})

    def test_nonexistent_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_campaign_state(str(tmp_path / "nope.npz"))

    def test_garbage_file(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not an npz archive")
        with pytest.raises(CheckpointError):
            load_campaign_state(path)

    def test_truncated_checkpoint(self, tmp_path):
        path, _ = self._state(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(CheckpointError):
            load_campaign_state(path)

    def test_out_of_range_bitmap_rejected(self, tmp_path):
        path, schedule = self._state(tmp_path)
        state = schedule.capture_state(0.0)
        state["bitmap_indices"] = np.array([10 ** 9], dtype=np.int64)
        bad = str(tmp_path / "bad.npz")
        save_campaign_state(bad, state)
        with pytest.raises(CheckpointError, match="out of range"):
            load_campaign_state(bad)

    def test_restore_rejects_mismatched_n_flat(self, tmp_path):
        path, _ = self._state(tmp_path)
        test, space, _ = _make_test()
        other = FuzzSchedule(test, space, _config(), n_flat=4)
        with pytest.raises(CheckpointError, match="n_flat"):
            other.restore_state(load_campaign_state(path))


class TestCrashResume:
    def _reference(self, seed, max_iter=120):
        test, space, n_flat = _make_test()
        schedule = FuzzSchedule(test, space,
                                _config(seed=seed, max_iter=max_iter), n_flat)
        return schedule.run()

    def _crashed_and_resumed(self, seed, crash_at, checkpoint_every,
                             max_iter=120):
        test, space, n_flat = _make_test()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ckpt.npz")
            config = _config(seed=seed, max_iter=max_iter,
                             checkpoint_path=path,
                             checkpoint_every=checkpoint_every)
            crashy = CrashAt(test, crash_at)
            schedule = FuzzSchedule(crashy, space, config, n_flat)
            with pytest.raises(InjectedFault):
                schedule.run()
            resumed = FuzzSchedule.from_checkpoint(
                test, space, config, n_flat, path
            )
            return resumed.run()

    @settings(max_examples=6, deadline=None)
    @given(crash_at=st.integers(min_value=6, max_value=110),
           seed=st.integers(min_value=0, max_value=3))
    def test_resume_is_bit_identical_to_uninterrupted_run(self, crash_at,
                                                          seed):
        """The headline property (ISSUE acceptance criterion): for any
        crash point and campaign seed, checkpoint + resume reproduces the
        uninterrupted campaign's observed offsets bit-identically."""
        reference = self._reference(seed)
        resumed = self._crashed_and_resumed(seed, crash_at,
                                            checkpoint_every=5)
        assert np.array_equal(resumed.flat_indices, reference.flat_indices)
        assert resumed.iterations == reference.iterations
        assert resumed.stop_reason == reference.stop_reason
        assert resumed.final_eps == reference.final_eps
        assert [s.v for s in resumed.seeds] == [s.v for s in reference.seeds]
        assert ([s.useful for s in resumed.seeds]
                == [s.useful for s in reference.seeds])

    def test_resume_after_final_checkpoint_is_a_noop(self, tmp_path):
        test, space, n_flat = _make_test()
        path = str(tmp_path / "done.npz")
        config = _config(checkpoint_path=path, checkpoint_every=50)
        FuzzSchedule(test, space, config, n_flat).run()
        resumed = FuzzSchedule.from_checkpoint(
            test, space, config, n_flat, path
        ).run()
        reference = self._reference(seed=0)
        assert np.array_equal(resumed.flat_indices, reference.flat_indices)
        assert resumed.iterations == reference.iterations

    def test_checkpointing_itself_does_not_perturb_the_campaign(self,
                                                                tmp_path):
        test, space, n_flat = _make_test()
        path = str(tmp_path / "ckpt.npz")
        config = _config(checkpoint_path=path, checkpoint_every=10)
        checkpointed = FuzzSchedule(test, space, config, n_flat).run()
        reference = self._reference(seed=0)
        assert np.array_equal(checkpointed.flat_indices,
                              reference.flat_indices)
        assert [s.v for s in checkpointed.seeds] \
            == [s.v for s in reference.seeds]


class TestQuarantine:
    def test_raising_valuations_are_quarantined_not_fatal(self):
        test, space, n_flat = _make_test()
        calls = []

        def moody(v):
            calls.append(v)
            if len(calls) in (7, 19):
                raise ValueError(f"bad valuation #{len(calls)}")
            return test(v)

        config = _config(quarantine=True)
        result = FuzzSchedule(moody, space, config, n_flat).run()
        assert len(result.quarantined) == 2
        assert all("bad valuation" in q.error for q in result.quarantined)
        assert result.iterations == config.max_iter

    def test_without_quarantine_the_error_propagates(self):
        test, space, n_flat = _make_test()

        def moody(v):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            FuzzSchedule(moody, space, _config(), n_flat).run()

    def test_injected_faults_bypass_quarantine(self):
        test, space, n_flat = _make_test()
        crashy = CrashAt(test, 5)
        config = _config(quarantine=True)
        with pytest.raises(InjectedFault):
            FuzzSchedule(crashy, space, config, n_flat).run()
