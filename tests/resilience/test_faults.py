"""The fault injectors themselves: deterministic, composable, bounded."""

import os

import pytest

from repro.errors import FetchError, InjectedFault, ResilienceConfigError
from repro.resilience.faults import (
    ChaosMonkey,
    CrashAt,
    FailNTimes,
    FlakyCallable,
    HangForever,
    MemoryHog,
    _ForkSafeCounter,
    corrupt_file,
    torn_append,
    torn_write,
)


@pytest.fixture
def artifact(tmp_path):
    path = str(tmp_path / "artifact.bin")
    with open(path, "wb") as fh:
        fh.write(bytes(range(256)))
    return path


class TestCorruptFile:
    def test_flip_inverts_bytes(self, artifact):
        offset = corrupt_file(artifact, mode="flip", offset=10, length=3)
        assert offset == 10
        with open(artifact, "rb") as fh:
            data = fh.read()
        assert data[10:13] == bytes(b ^ 0xFF for b in bytes(range(256))[10:13])
        assert data[:10] == bytes(range(10))

    def test_zero_clears_bytes(self, artifact):
        corrupt_file(artifact, mode="zero", offset=5, length=4)
        with open(artifact, "rb") as fh:
            assert fh.read()[5:9] == b"\x00" * 4

    def test_truncate_cuts_file(self, artifact):
        corrupt_file(artifact, mode="truncate", offset=100)
        assert os.path.getsize(artifact) == 100

    def test_truncate_to_zero_rejected(self, artifact):
        """offset=0 would delete the file, not damage it — that is a
        different fault (and a different drill)."""
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="truncate", offset=0)

    def test_truncate_beyond_size_rejected(self, artifact):
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="truncate", offset=256)
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="truncate", offset=300)

    def test_bitrot_flips_n_distinct_sites(self, artifact):
        corrupt_file(artifact, mode="bitrot", seed=3, sites=4)
        with open(artifact, "rb") as fh:
            data = fh.read()
        pristine = bytes(range(256))
        flipped = [i for i in range(256) if data[i] != pristine[i]]
        assert len(flipped) == 4
        assert all(data[i] == pristine[i] ^ 0xFF for i in flipped)

    def test_bitrot_is_seeded(self, tmp_path):
        damaged = []
        for i in range(2):
            p = str(tmp_path / f"rot{i}.bin")
            with open(p, "wb") as fh:
                fh.write(bytes(range(256)))
            corrupt_file(p, mode="bitrot", seed=11, sites=3)
            with open(p, "rb") as fh:
                damaged.append(fh.read())
        assert damaged[0] == damaged[1]

    def test_bitrot_site_bounds_enforced(self, artifact):
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="bitrot", sites=0)
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="bitrot", sites=257)

    def test_random_offset_is_seeded(self, tmp_path):
        paths = []
        for i in range(2):
            p = str(tmp_path / f"a{i}.bin")
            with open(p, "wb") as fh:
                fh.write(bytes(256))
            paths.append(p)
        assert (corrupt_file(paths[0], seed=7)
                == corrupt_file(paths[1], seed=7))

    def test_unknown_mode_rejected(self, artifact):
        with pytest.raises(ResilienceConfigError):
            corrupt_file(artifact, mode="shred")

    def test_empty_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        open(path, "wb").close()
        with pytest.raises(ResilienceConfigError):
            corrupt_file(path)


class TestTornWrites:
    def test_torn_write_keeps_exact_prefix(self, artifact):
        torn_write(artifact, b"NEWCONTENT", keep_bytes=3)
        with open(artifact, "rb") as fh:
            assert fh.read() == b"NEW"  # old content fully clobbered

    def test_torn_write_zero_bytes_empties_file(self, artifact):
        torn_write(artifact, b"NEW", keep_bytes=0)
        assert os.path.getsize(artifact) == 0

    def test_torn_append_keeps_existing_content(self, artifact):
        torn_append(artifact, b"TAIL", keep_bytes=2)
        with open(artifact, "rb") as fh:
            data = fh.read()
        assert data == bytes(range(256)) + b"TA"

    def test_keep_bytes_bounds_enforced(self, artifact):
        for fn in (torn_write, torn_append):
            with pytest.raises(ResilienceConfigError):
                fn(artifact, b"abc", keep_bytes=-1)
            with pytest.raises(ResilienceConfigError):
                fn(artifact, b"abc", keep_bytes=4)


class TestFlakyCallable:
    def test_failure_schedule_is_seeded(self):
        a = FlakyCallable(lambda: 1, fail_rate=0.5, seed=3)
        b = FlakyCallable(lambda: 1, fail_rate=0.5, seed=3)

        def outcomes(f):
            out = []
            for _ in range(50):
                try:
                    f()
                    out.append(True)
                except FetchError:
                    out.append(False)
            return out

        assert outcomes(a) == outcomes(b)

    def test_rate_zero_never_fails(self):
        flaky = FlakyCallable(lambda x: x * 2, fail_rate=0.0)
        assert [flaky(i) for i in range(20)] == [i * 2 for i in range(20)]
        assert flaky.failures == 0

    def test_rate_one_always_fails(self):
        flaky = FlakyCallable(lambda: 1, fail_rate=1.0)
        for _ in range(5):
            with pytest.raises(FetchError):
                flaky()
        assert flaky.failures == flaky.calls == 5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ResilienceConfigError):
            FlakyCallable(lambda: 1, fail_rate=1.5)


class TestFailNTimes:
    def test_first_n_calls_raise_then_pass_through(self):
        wrapped = FailNTimes(lambda x: x + 1, n=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                wrapped(0)
        assert wrapped(41) == 42
        assert wrapped.failures == 2
        assert wrapped.calls == 3

    def test_custom_exception(self):
        wrapped = FailNTimes(lambda: 1, n=1, exception=FetchError)
        with pytest.raises(FetchError):
            wrapped()


class TestCrashAt:
    def test_crashes_on_exact_call(self):
        wrapped = CrashAt(lambda x: x, crash_on_call=3)
        assert wrapped(1) == 1
        assert wrapped(2) == 2
        with pytest.raises(InjectedFault, match="call 3"):
            wrapped(3)
        # Only the chosen call crashes; the wrapper passes through after.
        assert wrapped(4) == 4

    def test_requires_positive_call_number(self):
        with pytest.raises(ResilienceConfigError):
            CrashAt(lambda: 1, crash_on_call=0)


class TestForkSafeCounter:
    def test_count_survives_a_fork(self, tmp_path):
        counter = _ForkSafeCounter(str(tmp_path / "calls.cnt"))
        assert counter.increment() == 1
        pid = os.fork()
        if pid == 0:  # child: count in a separate process, then die
            counter.increment()
            os._exit(0)
        os.waitpid(pid, 0)
        # The child's increment is visible here, and the next one is 3.
        assert counter.increment() == 3

    def test_two_handles_share_the_same_file(self, tmp_path):
        path = str(tmp_path / "shared.cnt")
        a, b = _ForkSafeCounter(path), _ForkSafeCounter(path)
        assert a.increment() == 1
        assert b.increment() == 2


class TestHangAndHogInjectors:
    """Only the validation + pass-through behaviour is testable in
    process: the actual hang/hog behaviour is exercised supervised in
    the chaos drills (tests/resilience/test_chaos_e2e.py)."""

    def test_hang_passes_through_before_the_trigger(self):
        wrapped = HangForever(lambda x: x + 1, hang_on_call=10)
        assert [wrapped(i) for i in range(3)] == [1, 2, 3]

    def test_hog_passes_through_before_the_trigger(self):
        wrapped = MemoryHog(lambda x: x * 2, hog_on_call=10)
        assert [wrapped(i) for i in range(3)] == [0, 2, 4]

    def test_validation(self):
        for make in (
            lambda: HangForever(lambda: 1, hang_on_call=0),
            lambda: MemoryHog(lambda: 1, hog_on_call=0),
            lambda: MemoryHog(lambda: 1, hog_on_call=5, grow_mb=0),
            lambda: MemoryHog(lambda: 1, hog_on_call=5, steps=0),
        ):
            with pytest.raises(ResilienceConfigError):
                make()

    def test_hog_raises_memory_error_unsupervised(self, tmp_path):
        """Without a supervisor the hog's budget exhausts in-process: a
        tiny grow_mb keeps this safe to run un-contained."""
        wrapped = MemoryHog(lambda x: x, hog_on_call=1, grow_mb=8, steps=2)
        with pytest.raises(MemoryError, match="uncontained"):
            wrapped(0)

    def test_crash_at_accepts_a_counter_file(self, tmp_path):
        wrapped = CrashAt(lambda x: x, crash_on_call=2,
                          counter_path=str(tmp_path / "c.cnt"))
        assert wrapped(1) == 1
        with pytest.raises(InjectedFault, match="call 2"):
            wrapped(2)
        assert wrapped.calls == 2


class TestChaosMonkey:
    def test_wrap_test_composes_injectors(self):
        monkey = ChaosMonkey(kill_workers=1, crash_on_call=5)
        wrapped = monkey.wrap_test(lambda x: x)
        assert isinstance(wrapped, CrashAt)
        assert isinstance(wrapped.fn, FailNTimes)

    def test_wrap_test_chains_hang_and_hog(self):
        monkey = ChaosMonkey(crash_on_call=5, hang_on_call=3, hog_on_call=4)
        wrapped = monkey.wrap_test(lambda x: x)
        assert isinstance(wrapped, CrashAt)
        assert isinstance(wrapped.fn, MemoryHog)
        assert isinstance(wrapped.fn.fn, HangForever)

    def test_wrap_fetcher_noop_without_fail_rate(self):
        fetch = lambda idx: 0.0  # noqa: E731
        assert ChaosMonkey().wrap_fetcher(fetch) is fetch
        assert isinstance(
            ChaosMonkey(fetch_fail_rate=0.5).wrap_fetcher(fetch),
            FlakyCallable,
        )
