"""Retry policy, backoff schedule, deadlines, and the circuit breaker."""

import numpy as np
import pytest

from repro.errors import CircuitOpenError, FetchError, ResilienceConfigError
from repro.resilience.config import ResilienceConfig
from repro.resilience.retry import CircuitBreaker, RetryPolicy, retry_call


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, s):
        self.now += s


class TestRetryPolicy:
    def test_delays_are_geometric_and_capped(self):
        policy = RetryPolicy(retries=5, backoff_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5)
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_zero_retries_means_no_delays(self):
        assert list(RetryPolicy(retries=0).delays()) == []

    def test_from_config_maps_fetch_fields(self):
        cfg = ResilienceConfig(fetch_retries=2, fetch_backoff_s=0.01,
                               fetch_backoff_factor=3.0,
                               fetch_backoff_max_s=1.0,
                               fetch_deadline_s=5.0)
        policy = RetryPolicy.from_config(cfg)
        assert policy.retries == 2
        assert policy.backoff_s == 0.01
        assert policy.backoff_factor == 3.0
        assert policy.deadline_s == 5.0

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"deadline_s": 0.0},
        {"jitter": "half"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ResilienceConfigError):
            RetryPolicy(**kwargs)


class TestFullJitter:
    POLICY = RetryPolicy(retries=6, backoff_s=0.1, backoff_factor=2.0,
                         backoff_max_s=0.5, jitter="full")

    def test_same_seed_same_schedule(self):
        """Replay determinism: the schedule is a pure function of the
        caller's seeded RNG, never of global random state."""
        a = list(self.POLICY.delays(rng=np.random.default_rng(42)))
        b = list(self.POLICY.delays(rng=np.random.default_rng(42)))
        assert a == b

    def test_different_seeds_decorrelate(self):
        a = list(self.POLICY.delays(rng=np.random.default_rng(1)))
        b = list(self.POLICY.delays(rng=np.random.default_rng(2)))
        assert a != b

    def test_jittered_delays_respect_the_exponential_cap(self):
        """Full jitter draws from [0, capped]: each delay is bounded by
        the deterministic ladder's value at that step, and the ladder's
        own ceiling still applies."""
        ladder = list(RetryPolicy(retries=6, backoff_s=0.1,
                                  backoff_factor=2.0,
                                  backoff_max_s=0.5).delays())
        jittered = list(self.POLICY.delays(rng=np.random.default_rng(7)))
        assert len(jittered) == len(ladder)
        for delay, cap in zip(jittered, ladder):
            assert 0.0 <= delay <= cap <= 0.5

    def test_full_jitter_without_rng_is_a_config_error(self):
        with pytest.raises(ResilienceConfigError, match="seeded RNG"):
            list(self.POLICY.delays())

    def test_jitter_none_ignores_rng(self):
        policy = RetryPolicy(retries=2, backoff_s=0.1, backoff_factor=2.0)
        assert list(policy.delays(rng=np.random.default_rng(0))) == \
            list(policy.delays())

    def test_retry_call_threads_the_rng_through(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FetchError("transient")
            return "ok"

        result = retry_call(flaky, self.POLICY, clock=clock,
                            sleep=clock.sleep,
                            rng=np.random.default_rng(42))
        assert result == "ok"
        expected = list(self.POLICY.delays(
            rng=np.random.default_rng(42)))[:2]
        assert clock.now == pytest.approx(sum(expected))


class TestRetryCall:
    def test_success_first_try_never_sleeps(self):
        clock = FakeClock()
        result = retry_call(lambda: 42, RetryPolicy(retries=3),
                            clock=clock, sleep=clock.sleep)
        assert result == 42
        assert clock.now == 0.0

    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise FetchError("transient")
            return "ok"

        policy = RetryPolicy(retries=3, backoff_s=0.1, backoff_factor=2.0)
        assert retry_call(flaky, policy, clock=clock,
                          sleep=clock.sleep) == "ok"
        assert len(calls) == 3
        assert clock.now == pytest.approx(0.1 + 0.2)

    def test_raises_last_error_when_exhausted(self):
        clock = FakeClock()

        def always():
            raise FetchError("down")

        with pytest.raises(FetchError, match="down"):
            retry_call(always, RetryPolicy(retries=2, backoff_s=0.0),
                       clock=clock, sleep=clock.sleep)

    def test_deadline_cuts_retries_short(self):
        clock = FakeClock()
        calls = []

        def always():
            calls.append(1)
            clock.now += 1.0
            raise ValueError("down")

        policy = RetryPolicy(retries=10, backoff_s=1.0, backoff_factor=1.0,
                             deadline_s=3.0)
        with pytest.raises(FetchError, match="deadline"):
            retry_call(always, policy, clock=clock, sleep=clock.sleep)
        assert len(calls) < 11

    def test_retry_on_filters_exception_types(self):
        def boom():
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(boom, RetryPolicy(retries=3, backoff_s=0.0),
                       retry_on=(FetchError,))


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_s=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.n_rejected == 1
        assert breaker.n_trips == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, reset_s=10.0,
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # one failure re-opens from half-open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.n_trips == 2

    def test_check_raises_circuit_open(self):
        breaker = CircuitBreaker(threshold=1, reset_s=60.0,
                                 clock=FakeClock())
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(threshold=0, clock=FakeClock())
        for _ in range(100):
            breaker.record_failure()
        assert breaker.allow()
        assert not breaker.enabled

    def test_negative_threshold_rejected(self):
        with pytest.raises(ResilienceConfigError):
            CircuitBreaker(threshold=-1)
