"""Property test: the grid merge engine is equivalent to the legacy scan.

The acceptance bar for the perf layer (satellite of the fast-path PR):
on arbitrary point clouds the two engines must reach the same fixed
point — the same hull count, the same hulls in the same order, the same
merge/pass counters — and a carver configured with either engine must
produce identical carved ``flat_indices``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carving import Carver
from repro.carving.merge import merge_hulls, merge_hulls_grid, merge_hulls_scan
from repro.fuzzing import CarveConfig
from repro.geometry.hull import Hull
from repro.perf import SERIAL_PERF_CONFIG, PerfConfig


def _random_hulls(rng, d, n_hulls, extent=120.0, spread=8.0):
    hulls = []
    for _ in range(n_hulls):
        c = rng.uniform(0, extent, size=d)
        m = int(rng.integers(1, 9))
        hulls.append(Hull.from_points(c + rng.uniform(-spread, spread, (m, d))))
    return hulls


def _assert_equivalent(hulls, config):
    scan_hulls, scan_stats = merge_hulls_scan(hulls, config)
    grid_hulls, grid_stats = merge_hulls_grid(hulls, config)
    assert len(scan_hulls) == len(grid_hulls)
    for a, b in zip(scan_hulls, grid_hulls):
        assert a == b
    assert scan_stats.merges == grid_stats.merges
    assert scan_stats.passes == grid_stats.passes
    # The whole point of the grid engine: never more CLOSE evaluations.
    assert grid_stats.close_calls <= scan_stats.close_calls


class TestMergeEngineEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        d=st.sampled_from([2, 3]),
        n_hulls=st.integers(min_value=0, max_value=18),
        close_mode=st.sampled_from(["or", "and"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_clouds(self, seed, d, n_hulls, close_mode):
        rng = np.random.default_rng(seed)
        hulls = _random_hulls(rng, d, n_hulls)
        config = CarveConfig(close_mode=close_mode)
        _assert_equivalent(hulls, config)

    def test_single_point_hulls(self):
        pts = [(0.0, 0.0), (5.0, 0.0), (100.0, 100.0), (104.0, 100.0)]
        hulls = [Hull.from_points(np.array([p])) for p in pts]
        _assert_equivalent(hulls, CarveConfig())

    def test_collinear_cells(self):
        """Rank-deficient hulls (rows of lattice points) merge identically."""
        hulls = [
            Hull.from_points(
                np.array([[x, 3.0] for x in range(start, start + 4)])
            )
            for start in (0, 6, 12, 40)
        ]
        _assert_equivalent(hulls, CarveConfig())

    def test_tight_thresholds_no_merges(self):
        rng = np.random.default_rng(3)
        hulls = _random_hulls(rng, 2, 10, extent=500.0, spread=1.0)
        config = CarveConfig(center_d_thresh=0.0, bound_d_thresh=0.0)
        _assert_equivalent(hulls, config)

    def test_loose_thresholds_single_hull(self):
        rng = np.random.default_rng(4)
        hulls = _random_hulls(rng, 3, 8, extent=60.0)
        config = CarveConfig(center_d_thresh=1e4, bound_d_thresh=1e4)
        scan_hulls, _ = merge_hulls_scan(hulls, config)
        _assert_equivalent(hulls, config)
        assert len(scan_hulls) == 1

    def test_dispatch_follows_perf_config(self):
        rng = np.random.default_rng(5)
        hulls = _random_hulls(rng, 2, 6)
        _, stats = merge_hulls(hulls, CarveConfig(perf=PerfConfig()))
        assert stats.engine == "grid"
        _, stats = merge_hulls(hulls, CarveConfig(perf=SERIAL_PERF_CONFIG))
        assert stats.engine == "scan"
        _, stats = merge_hulls(hulls, CarveConfig(), engine="scan")
        assert stats.engine == "scan"


class TestCarverEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           d=st.sampled_from([2, 3]))
    @settings(max_examples=20, deadline=None)
    def test_carved_flat_indices_bit_identical(self, seed, d):
        """Fast carver (grid + bitmap) == legacy carver, index for index."""
        rng = np.random.default_rng(seed)
        dims = (24,) * d
        n = int(rng.integers(1, 80))
        pts = rng.integers(0, 24, size=(n, d)).astype(np.float64)
        legacy = Carver(dims, CarveConfig(cell_size=8,
                                          perf=SERIAL_PERF_CONFIG))
        fast = Carver(dims, CarveConfig(cell_size=8, perf=PerfConfig()))
        a = legacy.carve_points(pts)
        b = fast.carve_points(pts)
        assert a.n_hulls == b.n_hulls
        assert a.flat_indices.dtype == b.flat_indices.dtype
        assert np.array_equal(a.flat_indices, b.flat_indices)
