"""Unit tests for the SPLIT step of Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carving import split_into_cells
from repro.errors import GeometryError


class TestSplit:
    def test_basic_grouping(self):
        pts = np.array([[0, 0], [1, 1], [17, 0], [0, 17]], dtype=float)
        cells = split_into_cells(pts, 16.0)
        assert set(cells) == {(0, 0), (1, 0), (0, 1)}
        assert cells[(0, 0)].shape == (2, 2)

    def test_empty_cells_absent(self):
        pts = np.array([[0, 0], [100, 100]], dtype=float)
        cells = split_into_cells(pts, 10.0)
        assert len(cells) == 2

    def test_boundary_point_goes_to_upper_cell(self):
        cells = split_into_cells(np.array([[16.0, 0.0]]), 16.0)
        assert set(cells) == {(1, 0)}

    def test_empty_input_rejected(self):
        with pytest.raises(GeometryError):
            split_into_cells(np.empty((0, 2)), 16.0)

    def test_bad_cell_size(self):
        with pytest.raises(GeometryError):
            split_into_cells(np.array([[0.0, 0.0]]), 0.0)

    def test_3d(self):
        pts = np.array([[0, 0, 0], [9, 9, 9], [10, 0, 0]], dtype=float)
        cells = split_into_cells(pts, 10.0)
        assert set(cells) == {(0, 0, 0), (1, 0, 0)}
        assert cells[(0, 0, 0)].shape == (2, 3)

    @given(st.lists(
        st.tuples(st.integers(0, 99), st.integers(0, 99)),
        min_size=1, max_size=200,
    ), st.integers(1, 40))
    @settings(max_examples=60)
    def test_partition_property(self, pts, cell_size):
        """Cells exactly partition the input points."""
        arr = np.asarray(pts, dtype=float)
        cells = split_into_cells(arr, float(cell_size))
        total = sum(c.shape[0] for c in cells.values())
        assert total == arr.shape[0]
        for key, members in cells.items():
            expect = np.floor(members / cell_size).astype(int)
            assert (expect == np.asarray(key)).all()
