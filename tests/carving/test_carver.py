"""Unit tests for the Carver and the Simple Convex baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel.layout import flatten_many
from repro.carving import Carver, SimpleConvexCarver
from repro.errors import GeometryError
from repro.fuzzing import CarveConfig


def solid_square_points(x0, y0, size):
    return np.array(
        [[x, y] for x in range(x0, x0 + size) for y in range(y0, y0 + size)],
        dtype=float,
    )


class TestCarver:
    def test_solid_square_carved_exactly(self):
        carver = Carver((32, 32), CarveConfig(cell_size=8))
        pts = solid_square_points(4, 4, 10)
        result = carver.carve_points(pts)
        got = set(result.flat_indices.tolist())
        expect = set(flatten_many(pts.astype(np.int64), (32, 32)).tolist())
        assert expect <= got           # recall 1 on observed points
        assert len(got) <= len(expect) * 1.3  # no gross over-coverage

    def test_fills_sandwiched_gap(self):
        """Two nearby clusters merge; the gap between them is included."""
        carver = Carver(
            (64, 64),
            CarveConfig(cell_size=8, center_d_thresh=20, bound_d_thresh=10),
        )
        pts = np.vstack([
            solid_square_points(0, 0, 6),
            solid_square_points(10, 0, 6),
        ])
        result = carver.carve_points(pts)
        gap_flat = flatten_many(np.array([[8, 2]]), (64, 64))[0]
        assert gap_flat in set(result.flat_indices.tolist())

    def test_distant_clusters_stay_separate(self):
        carver = Carver(
            (64, 64),
            CarveConfig(cell_size=8, center_d_thresh=10, bound_d_thresh=5),
        )
        pts = np.vstack([
            solid_square_points(0, 0, 6),
            solid_square_points(50, 50, 6),
        ])
        result = carver.carve_points(pts)
        assert result.n_hulls == 2
        mid_flat = flatten_many(np.array([[28, 28]]), (64, 64))[0]
        assert mid_flat not in set(result.flat_indices.tolist())

    def test_empty_input(self):
        result = Carver((16, 16)).carve_points(np.empty((0, 2)))
        assert result.n_hulls == 0
        assert result.n_indices == 0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Carver((16, 16)).carve_points(np.zeros((3, 3)))

    def test_carve_flat_equivalent_to_points(self):
        carver = Carver((32, 32), CarveConfig(cell_size=8))
        pts = solid_square_points(2, 2, 8)
        flat = flatten_many(pts.astype(np.int64), (32, 32))
        by_points = carver.carve_points(pts)
        by_flat = carver.carve_flat(flat)
        assert np.array_equal(by_points.flat_indices, by_flat.flat_indices)

    def test_single_point(self):
        result = Carver((16, 16)).carve_points(np.array([[5.0, 5.0]]))
        assert result.n_hulls == 1
        assert result.flat_indices.tolist() == [5 * 16 + 5]

    def test_indices_within_dims(self):
        carver = Carver((20, 20), CarveConfig(cell_size=8, raster_tol=2.0))
        pts = solid_square_points(15, 15, 5)  # touches the array edge
        result = carver.carve_points(pts)
        assert result.flat_indices.max() < 400
        assert result.flat_indices.min() >= 0

    @given(st.sets(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        min_size=1, max_size=80,
    ))
    @settings(max_examples=40, deadline=None)
    def test_observed_points_always_kept(self, pts):
        """Soundness of carving: observed offsets are never dropped."""
        carver = Carver((31, 31), CarveConfig(cell_size=8))
        arr = np.asarray(sorted(pts), dtype=float)
        result = carver.carve_points(arr)
        observed = set(
            flatten_many(arr.astype(np.int64), (31, 31)).tolist()
        )
        assert observed <= set(result.flat_indices.tolist())


class TestSimpleConvexBaseline:
    def test_single_hull_always(self):
        sc = SimpleConvexCarver((64, 64))
        pts = np.vstack([
            solid_square_points(0, 0, 6),
            solid_square_points(50, 50, 6),
        ])
        result = sc.carve_points(pts)
        assert result.n_hulls == 1
        # The global hull bridges the distant clusters -> over-coverage.
        mid_flat = flatten_many(np.array([[28, 28]]), (64, 64))[0]
        assert mid_flat in set(result.flat_indices.tolist())

    def test_sc_coverage_superset_of_carver_on_disjoint(self):
        """SC over-covers relative to Kondo's merge carver (paper Fig 6/8)."""
        dims = (64, 64)
        pts = np.vstack([
            solid_square_points(0, 0, 8),
            solid_square_points(40, 40, 8),
        ])
        kondo = Carver(
            dims, CarveConfig(cell_size=8, center_d_thresh=10, bound_d_thresh=5)
        ).carve_points(pts)
        sc = SimpleConvexCarver(dims).carve_points(pts)
        assert set(kondo.flat_indices.tolist()) <= set(sc.flat_indices.tolist())
        assert sc.n_indices > kondo.n_indices

    def test_empty(self):
        result = SimpleConvexCarver((8, 8)).carve_points(np.empty((0, 2)))
        assert result.n_indices == 0

    def test_carve_flat(self):
        sc = SimpleConvexCarver((16, 16))
        flat = np.array([0, 5, 37])
        result = sc.carve_flat(flat)
        assert set(flat.tolist()) <= set(result.flat_indices.tolist())
