"""Unit tests for the CLOSE predicate and the bottom-up merge loop."""

import numpy as np
import pytest

from repro.carving import close, merge_hulls
from repro.fuzzing import CarveConfig
from repro.geometry import Hull


def square(x0, y0, size=4):
    return Hull.from_points([
        [x0, y0], [x0 + size, y0], [x0 + size, y0 + size], [x0, y0 + size]
    ])


class TestClose:
    def test_adjacent_hulls_close_by_boundary(self):
        cfg = CarveConfig(center_d_thresh=2.0, bound_d_thresh=10.0)
        a, b = square(0, 0), square(8, 0)
        # Centers are 8 apart (> 2) but boundaries 4 apart (<= 10).
        assert close(a, b, cfg)

    def test_close_by_center_despite_far_boundary(self):
        """A large hull absorbing a small one: center distance carries."""
        big = Hull.from_points([[0, 0], [40, 0], [40, 40], [0, 40]])
        small = square(44, 18, 2)
        cfg = CarveConfig(center_d_thresh=30.0, bound_d_thresh=1.0)
        assert big.boundary_distance(small) > cfg.bound_d_thresh
        assert close(big, small, cfg)

    def test_far_hulls_not_close(self):
        cfg = CarveConfig(center_d_thresh=20.0, bound_d_thresh=10.0)
        assert not close(square(0, 0), square(100, 100), cfg)

    def test_and_mode_requires_both(self):
        a, b = square(0, 0), square(8, 0)
        cfg_or = CarveConfig(center_d_thresh=2.0, bound_d_thresh=10.0,
                             close_mode="or")
        cfg_and = CarveConfig(center_d_thresh=2.0, bound_d_thresh=10.0,
                              close_mode="and")
        assert close(a, b, cfg_or)
        assert not close(a, b, cfg_and)

    def test_bbox_shortcut_consistent(self):
        """The bbox reject must never flip a true CLOSE to False."""
        cfg = CarveConfig(center_d_thresh=20.0, bound_d_thresh=10.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = square(*rng.integers(0, 60, 2))
            b = square(*rng.integers(0, 60, 2))
            center_ok = a.center_distance(b) <= cfg.center_d_thresh
            bound_ok = a.boundary_distance(b) <= cfg.bound_d_thresh
            assert close(a, b, cfg) == (center_ok or bound_ok)


class TestMergeHulls:
    def test_no_merge_when_far(self):
        cfg = CarveConfig(center_d_thresh=5.0, bound_d_thresh=2.0)
        hulls, stats = merge_hulls([square(0, 0), square(50, 50)], cfg)
        assert len(hulls) == 2
        assert stats.merges == 0

    def test_chain_merges_to_one(self):
        """A chain of adjacent hulls collapses even when the ends are far."""
        cfg = CarveConfig(center_d_thresh=1.0, bound_d_thresh=3.0)
        chain = [square(i * 6, 0) for i in range(6)]
        hulls, stats = merge_hulls(chain, cfg)
        assert len(hulls) == 1
        assert stats.merges == 5
        assert hulls[0].contains_point((17, 2))  # sandwiched gap covered

    def test_two_distant_groups_stay_separate(self):
        cfg = CarveConfig(center_d_thresh=10.0, bound_d_thresh=5.0)
        group_a = [square(0, 0), square(5, 0)]
        group_b = [square(100, 100), square(105, 100)]
        hulls, _ = merge_hulls(group_a + group_b, cfg)
        assert len(hulls) == 2

    def test_merge_preserves_coverage(self):
        """Points covered by input hulls stay covered after merging."""
        cfg = CarveConfig(center_d_thresh=50.0, bound_d_thresh=50.0)
        inputs = [square(0, 0), square(10, 10), square(30, 0)]
        merged, _ = merge_hulls(inputs, cfg)
        probe = np.array(
            [[x, y] for x in range(0, 36) for y in range(0, 16)], dtype=float
        )
        before = np.zeros(probe.shape[0], dtype=bool)
        for h in inputs:
            before |= h.contains(probe)
        after = np.zeros(probe.shape[0], dtype=bool)
        for h in merged:
            after |= h.contains(probe)
        assert (after >= before).all()

    def test_empty_input(self):
        hulls, stats = merge_hulls([], CarveConfig())
        assert hulls == []
        assert stats.initial_hulls == 0

    def test_single_hull_untouched(self):
        h = square(0, 0)
        hulls, stats = merge_hulls([h], CarveConfig())
        assert hulls == [h]
        assert stats.passes >= 1

    def test_degenerate_hulls_merge(self):
        cfg = CarveConfig(center_d_thresh=10.0, bound_d_thresh=5.0)
        points = [Hull.from_points([[float(i), 0.0]]) for i in range(5)]
        hulls, _ = merge_hulls(points, cfg)
        assert len(hulls) == 1
        assert hulls[0].rank == 1  # a segment

    def test_termination_bound(self):
        """Merges can never exceed n - 1."""
        cfg = CarveConfig(center_d_thresh=1000.0, bound_d_thresh=1000.0)
        hulls, stats = merge_hulls([square(i * 3, 0) for i in range(10)], cfg)
        assert len(hulls) == 1
        assert stats.merges == 9
