"""Regression: observed points that round out of the index window.

A fuzz-discovered point sitting numerically on the array boundary (e.g.
``dims - 1 + eps`` after float round-tripping) used to be rounded out of
the window and crash the flat-index encode.  The carver now clips the
rounded observed points into ``[0, dims)`` — keeping the nearest
in-window index — before unioning them with the rasterized hulls.
"""

import numpy as np
import pytest

from repro.arraymodel.layout import flatten_many
from repro.carving import Carver, SimpleConvexCarver
from repro.carving.carver import observed_flat_indices
from repro.fuzzing import CarveConfig
from repro.perf import SERIAL_PERF_CONFIG, PerfConfig


class TestObservedFlatIndices:
    def test_in_window_points_unchanged(self):
        pts = np.array([[1.2, 2.8], [0.0, 0.0]])
        got = observed_flat_indices(pts, (8, 8))
        expect = flatten_many(np.array([[1, 3], [0, 0]]), (8, 8))
        assert np.array_equal(got, expect)

    def test_boundary_round_up_clips(self):
        # 7 + 0.4 rounds to 7 (in); 7 + 0.6 rounds to 8 (out) -> clip to 7.
        pts = np.array([[7.4, 7.6]])
        got = observed_flat_indices(pts, (8, 8))
        assert np.array_equal(got, flatten_many(np.array([[7, 7]]), (8, 8)))

    def test_negative_round_clips_to_zero(self):
        pts = np.array([[-0.6, 3.0]])
        got = observed_flat_indices(pts, (8, 8))
        assert np.array_equal(got, flatten_many(np.array([[0, 3]]), (8, 8)))


@pytest.mark.parametrize(
    "perf", [SERIAL_PERF_CONFIG, PerfConfig()], ids=["legacy", "fast"]
)
class TestCarverBoundaryPoints:
    def test_carve_survives_boundary_observations(self, perf):
        carver = Carver((16, 16), CarveConfig(cell_size=8, perf=perf))
        pts = np.array([[15.51, 15.49], [14.0, 15.0], [-0.49, 0.2]])
        result = carver.carve_points(pts)
        corner = flatten_many(np.array([[15, 15]]), (16, 16))[0]
        origin_row = flatten_many(np.array([[0, 0]]), (16, 16))[0]
        assert corner in result.flat_indices
        assert origin_row in result.flat_indices
        assert result.flat_indices.min() >= 0
        assert result.flat_indices.max() < 16 * 16

    def test_simple_convex_survives_boundary_observations(self, perf):
        carver = SimpleConvexCarver((16, 16), CarveConfig(perf=perf))
        pts = np.array([[15.51, 15.49], [8.0, 8.0]])
        result = carver.carve_points(pts)
        assert result.flat_indices.max() < 16 * 16
