"""``kondo check`` / ``python -m repro.analysis`` end-to-end, plus the
self-clean acceptance check over the repo's real source tree."""

import json
import os
import subprocess
import sys

from repro import cli
from repro.analysis import Baseline, main as check_main, run_check
from tests.analysis.helpers import make_tree, real_src

DIRTY = {
    "repro/core/mod.py": (
        "def save(path):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write('x')\n"
    ),
}


class TestCheckCli:
    def test_kondo_check_clean_tree_exits_zero(self, capsys):
        rc = cli.main(["check", real_src(), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_engine_main_dirty_tree_exits_one(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        rc = check_main([root, "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND002" in out

    def test_json_format_parses(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        rc = check_main([root, "--no-baseline", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["findings"][0]["rule"] == "KND002"

    def test_output_file_is_written(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        report = tmp_path / "report.sarif"
        rc = check_main([root, "--no-baseline", "--format", "sarif",
                         "--output", str(report)])
        capsys.readouterr()
        assert rc == 1
        doc = json.loads(report.read_text())
        assert doc["version"] == "2.1.0"

    def test_list_rules_catalogs_every_rule(self, capsys):
        rc = cli.main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rid in ("KND001", "KND002", "KND003", "KND004",
                    "KND005", "KND006", "KND007", "KND008",
                    "KND009", "KND010", "KND011", "KND012", "KND013"):
            assert rid in out

    def test_select_limits_rules(self, tmp_path, capsys):
        root = make_tree(tmp_path, {
            "repro/audit/mod.py": (
                "def slurp(path):\n"
                "    return open(path, 'w').write('x')\n"
            ),
        })
        rc = check_main([root, "--no-baseline", "--select", "KND006"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND006" in out and "KND002" not in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        bl = str(tmp_path / "bl.json")
        rc = check_main([root, "--baseline", bl, "--write-baseline"])
        assert rc == 0
        rc = check_main([root, "--baseline", bl])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baselined finding(s) not shown" in out

    def test_missing_path_is_usage_error(self, capsys):
        rc = check_main(["definitely/not/a/path", "--no-baseline"])
        capsys.readouterr()
        assert rc == 2

    def test_module_entry_point(self):
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(real_src()))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "KND001" in proc.stdout


class TestSelfClean:
    """Acceptance: the repo's own tree passes its own linter."""

    def test_real_tree_has_no_findings(self):
        result = run_check([real_src()])
        assert result.new == [], "\n".join(f.format() for f in result.new)
        assert result.n_files > 100

    def test_committed_baseline_is_empty_for_knd001_knd002(self):
        repo_root = os.path.dirname(os.path.dirname(real_src()))
        path = os.path.join(repo_root, ".kondo-baseline.json")
        baseline = Baseline.load(path)
        present = baseline.rules_present()
        assert present.get("KND001", 0) == 0
        assert present.get("KND002", 0) == 0


class TestJobsAndCache:
    def test_jobs_output_byte_identical_to_sequential(self, capsys):
        # Acceptance: the parallel parse phase must not perturb a single
        # output byte, in either format, over the real tree.
        outs = {}
        for fmt in ("text", "json"):
            for jobs in ("1", "4"):
                rc = check_main([real_src(), "--no-baseline", "--no-cache",
                                 "--jobs", jobs, "--format", fmt])
                assert rc == 0
                outs[(fmt, jobs)] = capsys.readouterr().out
            assert outs[(fmt, "1")] == outs[(fmt, "4")]

    def test_cache_populates_and_second_run_matches(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        argv = [root, "--no-baseline", "--cache-dir", str(cache)]
        rc = check_main(argv)
        first = capsys.readouterr().out
        assert rc == 1
        assert list(cache.glob("*.pkl"))
        rc = check_main(argv)
        assert rc == 1
        assert capsys.readouterr().out == first

    def test_cache_invalidates_on_edit(self, tmp_path, capsys):
        root = make_tree(tmp_path, {
            "repro/core/mod.py": "def fine():\n    return 1\n",
        })
        cache = tmp_path / "cache"
        argv = [root, "--no-baseline", "--cache-dir", str(cache)]
        assert check_main(argv) == 0
        capsys.readouterr()
        # The edit changes the content hash, so the stale entry is
        # simply never consulted — no mtime games to get wrong.
        (tmp_path / "repro/core/mod.py").write_text(
            "def save(path):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write('x')\n")
        rc = check_main(argv)
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND002" in out

    def test_no_cache_leaves_no_directory(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        rc = check_main([root, "--no-baseline", "--no-cache",
                         "--cache-dir", str(cache)])
        capsys.readouterr()
        assert rc == 1
        assert not cache.exists()

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        cache = tmp_path / "cache"
        argv = [root, "--no-baseline", "--cache-dir", str(cache)]
        assert check_main(argv) == 1
        first = capsys.readouterr().out
        for entry in cache.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        rc = check_main(argv)
        assert rc == 1
        assert capsys.readouterr().out == first


class TestExitCodeContract:
    """0 = clean, 1 = findings (rule crashes included), 2 = analyzer."""

    def test_crashing_rule_becomes_knd000_finding(self, tmp_path, capsys):
        from repro.analysis.model import Severity
        from repro.analysis.rulebase import _REGISTRY, Rule, register

        @register
        class ExplodingRule(Rule):
            rule_id = "KND900"
            name = "exploding"
            severity = Severity.ERROR
            summary = "always crashes (test only)"

            def check(self, pf, project):
                raise RuntimeError("boom")

        try:
            root = make_tree(tmp_path, {
                "repro/core/mod.py": "def fine():\n    return 1\n",
            })
            rc = check_main([root, "--no-baseline", "--select", "KND900"])
            out = capsys.readouterr().out
            assert rc == 1
            assert "KND000" in out
            assert "KND900" in out and "boom" in out
        finally:
            del _REGISTRY["KND900"]

    def test_crashing_project_rule_becomes_knd000_finding(
            self, tmp_path, capsys):
        from repro.analysis.model import Severity
        from repro.analysis.rulebase import _REGISTRY, Rule, register

        @register
        class ExplodingProjectRule(Rule):
            rule_id = "KND901"
            name = "exploding-project"
            severity = Severity.ERROR
            summary = "always crashes project-wide (test only)"

            def check(self, pf, project):
                return iter(())

            def check_project(self, project):
                raise RuntimeError("project boom")

        try:
            root = make_tree(tmp_path, {
                "repro/core/mod.py": "def fine():\n    return 1\n",
            })
            rc = check_main([root, "--no-baseline", "--select", "KND901"])
            out = capsys.readouterr().out
            assert rc == 1
            assert "KND000" in out and "project boom" in out
        finally:
            del _REGISTRY["KND901"]

    def test_internal_analyzer_crash_exits_two(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.analysis import engine

        def explode(*a, **kw):
            raise RuntimeError("loader wedged")

        monkeypatch.setattr(engine, "run_check", explode)
        root = make_tree(tmp_path, DIRTY)
        rc = check_main([root, "--no-baseline"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "internal analyzer failure" in err
        assert "loader wedged" in err

    def test_bad_jobs_value_is_usage_error(self, capsys):
        rc = check_main([real_src(), "--no-baseline", "--jobs", "0"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--jobs" in err

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        root = make_tree(tmp_path, {
            "repro/core/broken.py": "def oops(:\n    pass\n",
        })
        rc = check_main([root, "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND000" in out and "could not parse" in out
