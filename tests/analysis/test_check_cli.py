"""``kondo check`` / ``python -m repro.analysis`` end-to-end, plus the
self-clean acceptance check over the repo's real source tree."""

import json
import os
import subprocess
import sys

from repro import cli
from repro.analysis import Baseline, main as check_main, run_check
from tests.analysis.helpers import make_tree, real_src

DIRTY = {
    "repro/core/mod.py": (
        "def save(path):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write('x')\n"
    ),
}


class TestCheckCli:
    def test_kondo_check_clean_tree_exits_zero(self, capsys):
        rc = cli.main(["check", real_src(), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_engine_main_dirty_tree_exits_one(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        rc = check_main([root, "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND002" in out

    def test_json_format_parses(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        rc = check_main([root, "--no-baseline", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["findings"][0]["rule"] == "KND002"

    def test_output_file_is_written(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        report = tmp_path / "report.sarif"
        rc = check_main([root, "--no-baseline", "--format", "sarif",
                         "--output", str(report)])
        capsys.readouterr()
        assert rc == 1
        doc = json.loads(report.read_text())
        assert doc["version"] == "2.1.0"

    def test_list_rules_catalogs_every_rule(self, capsys):
        rc = cli.main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rid in ("KND001", "KND002", "KND003", "KND004",
                    "KND005", "KND006", "KND007", "KND008"):
            assert rid in out

    def test_select_limits_rules(self, tmp_path, capsys):
        root = make_tree(tmp_path, {
            "repro/audit/mod.py": (
                "def slurp(path):\n"
                "    return open(path, 'w').write('x')\n"
            ),
        })
        rc = check_main([root, "--no-baseline", "--select", "KND006"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "KND006" in out and "KND002" not in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        bl = str(tmp_path / "bl.json")
        rc = check_main([root, "--baseline", bl, "--write-baseline"])
        assert rc == 0
        rc = check_main([root, "--baseline", bl])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baselined finding(s) not shown" in out

    def test_missing_path_is_usage_error(self, capsys):
        rc = check_main(["definitely/not/a/path", "--no-baseline"])
        capsys.readouterr()
        assert rc == 2

    def test_module_entry_point(self):
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(real_src()))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0
        assert "KND001" in proc.stdout


class TestSelfClean:
    """Acceptance: the repo's own tree passes its own linter."""

    def test_real_tree_has_no_findings(self):
        result = run_check([real_src()])
        assert result.new == [], "\n".join(f.format() for f in result.new)
        assert result.n_files > 100

    def test_committed_baseline_is_empty_for_knd001_knd002(self):
        repo_root = os.path.dirname(os.path.dirname(real_src()))
        path = os.path.join(repo_root, ".kondo-baseline.json")
        baseline = Baseline.load(path)
        present = baseline.rules_present()
        assert present.get("KND001", 0) == 0
        assert present.get("KND002", 0) == 0
