"""Inline ``# kondo: allow[...]`` suppression behaviour."""

from tests.analysis.helpers import check_tree, rule_ids

from repro.analysis import run_check
from tests.analysis.helpers import make_tree


class TestSuppressions:
    def test_inline_allow_with_reason_suppresses(self, tmp_path):
        root = make_tree(tmp_path, {
            "repro/core/mod.py": (
                "def save(path):\n"
                "    with open(path, 'w') as fh:  "
                "# kondo: allow[KND002] fixture: torn writes acceptable\n"
                "        fh.write('x')\n"
            ),
        })
        result = run_check([root], select=["KND002"])
        assert result.new == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule_id == "KND002"
        assert "torn writes acceptable" in (
            result.suppressed[0].suppression_reason)

    def test_allow_without_reason_is_malformed(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/mod.py": (
                "def save(path):\n"
                "    with open(path, 'w') as fh:  # kondo: allow[KND002]\n"
                "        fh.write('x')\n"
            ),
        }, select=["KND002"])
        # The original finding survives AND the bad comment is reported.
        assert sorted(rule_ids(findings)) == ["KND000", "KND002"]

    def test_standalone_comment_block_covers_next_statement(self, tmp_path):
        root = make_tree(tmp_path, {
            "repro/core/mod.py": (
                "def save(path):\n"
                "    # kondo: allow[KND002] multi-line justification that\n"
                "    # continues on a second comment line\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write('x')\n"
            ),
        })
        result = run_check([root], select=["KND002"])
        assert result.new == []
        assert len(result.suppressed) == 1

    def test_multi_id_allow(self, tmp_path):
        root = make_tree(tmp_path, {
            "repro/audit/mod.py": (
                "def save(path):\n"
                "    fh = open(path, 'w')  "
                "# kondo: allow[KND002, KND006] fixture covers both\n"
                "    return fh\n"
            ),
        })
        result = run_check([root], select=["KND002", "KND006"])
        assert result.new == []
        assert sorted(rule_ids(result.suppressed)) == ["KND002", "KND006"]

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/mod.py": (
                "def save(path):\n"
                "    with open(path, 'w') as fh:  "
                "# kondo: allow[KND001] wrong rule id\n"
                "        fh.write('x')\n"
            ),
        }, select=["KND002"])
        assert rule_ids(findings) == ["KND002"]
