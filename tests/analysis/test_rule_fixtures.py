"""Fixture-snippet pairs per rule: one true positive, one clean."""

from tests.analysis.helpers import check_tree, rule_ids


class TestKND001Determinism:
    def test_global_rng_unseeded_rng_and_wall_clock_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/fuzzing/bad.py": (
                "import time\n"
                "import random\n"
                "import numpy as np\n\n\n"
                "def sample():\n"
                "    a = np.random.rand(3)\n"
                "    b = np.random.default_rng()\n"
                "    c = random.random()\n"
                "    d = time.time()\n"
                "    return a, b, c, d\n"
            ),
        }, select=["KND001"])
        assert rule_ids(findings) == ["KND001"] * 4
        messages = " ".join(f.message for f in findings)
        assert "global numpy RNG" in messages
        assert "without an explicit seed" in messages
        assert "wall-clock" in messages

    def test_seeded_rng_interval_clock_and_out_of_scope_are_clean(
            self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/fuzzing/good.py": (
                "import time\n"
                "import numpy as np\n\n\n"
                "def build(config):\n"
                "    rng = np.random.default_rng(config.rng_seed)\n"
                "    start = time.perf_counter()\n"
                "    return rng, start\n"
            ),
            # Same hazards outside the replay-critical packages: allowed.
            "repro/experiments/elsewhere.py": (
                "import numpy as np\n\n\n"
                "def noise():\n"
                "    return np.random.rand(3)\n"
            ),
        }, select=["KND001"])
        assert findings == []


class TestKND002AtomicWrite:
    def test_raw_write_and_dynamic_mode_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/bad.py": (
                "def save(path, data, mode):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(data)\n"
                "    with open(path, mode) as fh:\n"
                "        fh.write(data)\n"
            ),
        }, select=["KND002"])
        assert rule_ids(findings) == ["KND002", "KND002"]
        assert "torn artifact" in findings[0].message
        assert "not a string literal" in findings[1].message

    def test_reads_and_ioutil_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/good.py": (
                "from repro.ioutil import atomic_write\n\n\n"
                "def roundtrip(path):\n"
                "    with atomic_write(path, 'wb') as fh:\n"
                "        fh.write(b'x')\n"
                "    with open(path, 'rb') as fh:\n"
                "        return fh.read()\n"
            ),
            # The atomic-write implementation itself is exempt.
            "repro/ioutil.py": (
                "def atomic_write(path, mode='wb'):\n"
                "    return open(path + '.tmp', mode)\n"
            ),
        }, select=["KND002"])
        assert findings == []


class TestKND003ErrorTaxonomy:
    def test_swallowing_broad_except_fires(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/bad.py": (
                "def quiet(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except Exception:\n"
                "        return None\n"
                "    finally:\n"
                "        pass\n\n\n"
                "def quieter(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except:  # noqa: E722\n"
                "        return None\n"
            ),
        }, select=["KND003"])
        assert rule_ids(findings) == ["KND003", "KND003"]
        assert "bare except" in findings[1].message

    def test_reraise_and_outcome_paths_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/good.py": (
                "def narrow(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except ValueError:\n"
                "        return None\n\n\n"
                "def reraises(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except Exception:\n"
                "        raise\n\n\n"
                "def taxonomized(fn, outcome, breaker):\n"
                "    try:\n"
                "        return outcome.success(fn())\n"
                "    except Exception as exc:\n"
                "        breaker.record_failure()\n"
                "        return outcome.failure(exc)\n"
            ),
        }, select=["KND003"])
        assert findings == []


class TestKND004Layering:
    def test_upward_and_cross_imports_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/bad_up.py": "from repro.cli import main\n",
            "repro/carving/bad_cross.py":
                "from repro.fuzzing.schedule import FuzzSchedule\n",
            "repro/cli.py": "main = object\n",
            "repro/fuzzing/schedule.py": "FuzzSchedule = object\n",
        }, select=["KND004"])
        assert sorted(rule_ids(findings)) == ["KND004", "KND004"]
        by_module = {f.module: f.message for f in findings}
        assert "upward import" in by_module["repro.audit.bad_up"]
        assert "cross-layer import" in by_module["repro.carving.bad_cross"]

    def test_downward_and_deferred_imports_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/good.py": (
                "from repro.fuzzing.schedule import FuzzSchedule\n"
                "from repro.arraymodel.datafile import ArrayFile\n"
            ),
            # Deferred imports are the sanctioned cycle-breaker.
            "repro/audit/deferred.py": (
                "def lazy():\n"
                "    from repro.cli import main\n"
                "    return main\n"
            ),
            "repro/cli.py": "main = object\n",
            "repro/fuzzing/schedule.py": "FuzzSchedule = object\n",
            "repro/arraymodel/datafile.py": "ArrayFile = object\n",
        }, select=["KND004"])
        assert findings == []


class TestKND005ExecutorPurity:
    def test_pooled_callable_touching_mutable_global_fires(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/perf/bad.py": (
                "_cache = {}\n\n\n"
                "def work(item):\n"
                "    _cache[item] = True\n"
                "    return item\n\n\n"
                "def run(executor, items):\n"
                "    lam = executor.submit(lambda v: _cache.get(v), 1)\n"
                "    return executor.map_outcomes(work, items), lam\n"
            ),
        }, select=["KND005"])
        assert rule_ids(findings) == ["KND005", "KND005"]
        assert all("_cache" in f.message for f in findings)

    def test_pure_callables_and_constants_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/perf/good.py": (
                "SCALE = 3\n\n\n"
                "def work(item):\n"
                "    return item * SCALE\n\n\n"
                "def run(executor, items):\n"
                "    return executor.map_outcomes(work, items)\n"
            ),
        }, select=["KND005"])
        assert findings == []


class TestKND006ResourceHygiene:
    def test_leaked_handle_fires(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/bad.py": (
                "def slurp(path):\n"
                "    return open(path, 'rb').read()\n"
            ),
        }, select=["KND006"])
        assert rule_ids(findings) == ["KND006"]
        assert "leaked descriptor" in findings[0].message

    def test_with_and_reader_object_pattern_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/arraymodel/good.py": (
                "class Reader:\n"
                "    def __init__(self, path):\n"
                "        self._fh = open(path, 'rb')\n\n"
                "    def close(self):\n"
                "        self._fh.close()\n\n\n"
                "def slurp(path):\n"
                "    with open(path, 'rb') as fh:\n"
                "        return fh.read()\n\n\n"
                "def paired(path):\n"
                "    fh = open(path, 'rb')\n"
                "    try:\n"
                "        return fh.read()\n"
                "    finally:\n"
                "        fh.close()\n"
            ),
            # Out-of-scope package: not this rule's concern.
            "repro/experiments/meh.py": (
                "def slurp(path):\n"
                "    return open(path, 'rb').read()\n"
            ),
        }, select=["KND006"])
        assert findings == []


class TestKND007DurableWrites:
    def test_raw_write_to_bundle_path_fires(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/bad.py": (
                "def clobber(data):\n"
                "    with open('out.knds', 'wb') as fh:\n"
                "        fh.write(data)\n\n\n"
                "def clobber_var(bundle_path, data):\n"
                "    with open(bundle_path, 'r+b') as fh:\n"
                "        fh.write(data)\n"
            ),
        }, select=["KND007"])
        assert rule_ids(findings) == ["KND007", "KND007"]
        assert all("journal" in f.message for f in findings)

    def test_replace_onto_journal_artifact_fires(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/core/bad2.py": (
                "import os\n\n\n"
                "def swap(tmp, journal_dir):\n"
                "    os.replace(tmp, journal_dir + '/journal.log')\n"
            ),
        }, select=["KND007"])
        assert rule_ids(findings) == ["KND007"]

    def test_sanctioned_and_unrelated_writes_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            # The journal module itself is the sanctioned mutation site.
            "repro/resilience/durability/journal.py": (
                "def truncate_tail(log_path, end):\n"
                "    with open(log_path, 'r+b') as fh:\n"
                "        fh.truncate(end)\n"
            ),
            # Non-durable artifacts are out of scope (KND002's turf).
            "repro/core/fine.py": (
                "def note(path, text):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(text)\n\n\n"
                "def read_bundle(bundle_path):\n"
                "    with open(bundle_path, 'rb') as fh:\n"
                "        return fh.read()\n"
            ),
            # Annotated fault injection is reviewable and allowed.
            "repro/resilience/fine.py": (
                "def tear(bundle_path, data):\n"
                "    # kondo: allow[KND007] fault injector: the torn "
                "write is the fault\n"
                "    with open(bundle_path, 'wb') as fh:\n"
                "        fh.write(data[:3])\n"
            ),
        }, select=["KND007"])
        assert findings == []


class TestKND008BoundedWaits:
    def test_unbounded_blocking_calls_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/resilience/bad.py": (
                "def reap(worker):\n"
                "    worker.join()\n\n\n"
                "def idle(event):\n"
                "    event.wait()\n"
            ),
            "repro/perf/bad.py": (
                "def pull(conn):\n"
                "    return conn.recv()\n"
            ),
        }, select=["KND008"])
        assert rule_ids(findings) == ["KND008", "KND008", "KND008"]
        assert all("timeout or deadline" in f.message for f in findings)

    def test_bounded_and_out_of_scope_waits_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/resilience/good.py": (
                "import time\n\n\n"
                "def nap(delay):\n"
                "    time.sleep(delay)\n\n\n"
                "def reap(worker, budget):\n"
                "    worker.join(timeout=budget)\n\n\n"
                "def idle(event, deadline):\n"
                "    event.wait(deadline)\n\n\n"
                "def label(parts):\n"
                "    return ', '.join(parts)\n"
            ),
            # Annotated exceptions are reviewable and allowed.
            "repro/perf/good.py": (
                "def drain(worker):\n"
                "    # kondo: allow[KND008] shutdown path: the worker "
                "is already cancelled\n"
                "    worker.join()\n"
            ),
            # Out-of-scope package: blocking freely is fine elsewhere.
            "repro/workloads/meh.py": (
                "def wait_for_user(event):\n"
                "    event.wait()\n"
            ),
        }, select=["KND008"])
        assert findings == []


class TestKND009VectorizedAudit:
    def test_loops_in_hot_functions_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/blockcapture.py": (
                "def _drain(buf):\n"
                "    for k in range(buf.n):\n"
                "        handle(buf.offsets[k])\n\n\n"
                "while True:\n"
                "    break\n"
            ),
            "repro/audit/flatstore.py": (
                "def insert_batch(starts, ends):\n"
                "    k = 0\n"
                "    while k < len(starts):\n"
                "        insert(starts[k], ends[k])\n"
                "        k += 1\n"
            ),
        }, select=["KND009"])
        assert rule_ids(findings) == ["KND009"] * 3
        messages = " ".join(f.message for f in findings)
        assert "in _drain()" in messages
        assert "at module scope" in messages
        assert "in insert_batch()" in messages
        assert all("vectorized" in f.message for f in findings)

    def test_allowed_helpers_and_out_of_scope_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/blockcapture.py": (
                "def events(log):\n"
                "    out = []\n"
                "    for chunk in log:\n"
                "        out.extend(chunk)\n"
                "    return out\n\n\n"
                "def flush(buffers):\n"
                "    for buf in buffers:\n"
                "        drain(buf)\n\n\n"
                "def _ingest_groups(idents, starts):\n"
                "    for ident in set(idents):\n"
                "        ingest(ident, starts)\n"
            ),
            "repro/audit/flatstore.py": (
                "def _grow_to(cap, n):\n"
                "    while cap < n:\n"
                "        cap *= 2\n"
                "    return cap\n\n\n"
                "def iter_intervals(starts, ends):\n"
                "    for pair in zip(starts, ends):\n"
                "        yield pair\n"
            ),
            # Same loops anywhere else in the audit layer: fine.
            "repro/audit/session.py": (
                "def merge_all(trees):\n"
                "    for tree in trees:\n"
                "        tree.merged()\n"
            ),
        }, select=["KND009"])
        assert findings == []


class TestKND010BoundedService:
    def test_unbounded_queues_and_waits_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/bad.py": (
                "import queue\n\n\n"
                "def build():\n"
                "    q = queue.Queue()\n"
                "    zero = queue.Queue(maxsize=0)\n"
                "    simple = queue.SimpleQueue()\n"
                "    return q, zero, simple\n\n\n"
                "def pull(q):\n"
                "    return q.get()\n\n\n"
                "def front_door(sock):\n"
                "    conn, _ = sock.accept()\n"
                "    return conn.recv(4096)\n"
            ),
        }, select=["KND010"])
        assert rule_ids(findings) == ["KND010"] * 6
        messages = " ".join(f.message for f in findings)
        assert "maxsize" in messages
        assert "SimpleQueue" in messages
        assert "settimeout" in messages

    def test_bounded_ops_and_out_of_scope_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/good.py": (
                "import queue\n\n\n"
                "def build(limit):\n"
                "    return queue.Queue(maxsize=limit)\n\n\n"
                "def pull(q, tick):\n"
                "    return q.get(timeout=tick)\n\n\n"
                "def front_door(sock, tick):\n"
                "    # The idiomatic socket pattern: bound the socket\n"
                "    # once in this function, then loop on accept/recv.\n"
                "    sock.settimeout(tick)\n"
                "    conn, _ = sock.accept()\n"
                "    return conn.recv(4096)\n\n\n"
                "def lookup(table, key):\n"
                "    # dict.get is not a blocking wait.\n"
                "    return table.get(key, None)\n"
            ),
            # The same constructs outside repro.service: KND008's turf.
            "repro/core/meh.py": (
                "import queue\n\n\n"
                "def anything_goes(sock):\n"
                "    q = queue.Queue()\n"
                "    return q, sock.accept()\n"
            ),
        }, select=["KND010"])
        assert findings == []


class TestKND011LockOrder:
    def test_interprocedural_ab_ba_cycle_fires(self, tmp_path):
        # The acceptance fixture: the two halves of the deadlock are in
        # different functions and each takes the second lock through a
        # call, so only the interprocedural lock-order graph sees it.
        findings = check_tree(tmp_path, {
            "repro/audit/ab.py": (
                "import threading\n\n"
                "a = threading.Lock()\n"
                "b = threading.Lock()\n\n\n"
                "def forward():\n"
                "    with a:\n"
                "        take_b()\n\n\n"
                "def take_b():\n"
                "    with b:\n"
                "        pass\n\n\n"
                "def backward():\n"
                "    with b:\n"
                "        take_a()\n\n\n"
                "def take_a():\n"
                "    with a:\n"
                "        pass\n"
            ),
        }, select=["KND011"])
        assert rule_ids(findings) == ["KND011"]
        f = findings[0]
        assert "lock-order cycle" in f.message
        assert "repro.audit.ab:a" in f.message
        assert "repro.audit.ab:b" in f.message
        # One witness line per edge: both paths are named.
        assert len(f.witness) == 2
        joined = " ".join(f.witness)
        assert "forward" in joined and "backward" in joined

    def test_consistent_order_and_reentry_are_clean(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/ordered.py": (
                "import threading\n\n"
                "a = threading.Lock()\n"
                "b = threading.Lock()\n\n\n"
                "def one():\n"
                "    with a:\n"
                "        with b:\n"
                "            pass\n\n\n"
                "def two():\n"
                "    with a:\n"
                "        grab_b()\n\n\n"
                "def grab_b():\n"
                "    with b:\n"
                "        pass\n"
            ),
        }, select=["KND011"])
        assert findings == []


class TestKND012BlockingUnderLock:
    def test_direct_and_interprocedural_blocking_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/buf.py": (
                "import os\n"
                "import threading\n\n\n"
                "class Buf:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n\n"
                "    def flush_direct(self, fd):\n"
                "        with self._lock:\n"
                "            os.fsync(fd)\n\n"
                "    def flush_via_call(self, fd):\n"
                "        with self._lock:\n"
                "            self._sync(fd)\n\n"
                "    def _sync(self, fd):\n"
                "        os.fsync(fd)\n"
            ),
        }, select=["KND012"])
        assert rule_ids(findings) == ["KND012", "KND012"]
        direct, via = findings
        assert "fsync" in direct.message
        assert "repro.audit.buf:Buf._lock" in direct.message
        # The interprocedural finding carries the chain to the primitive.
        assert "repro.audit.buf:Buf._sync" in via.message
        assert any("os.fsync" in hop for hop in via.witness)

    def test_blocking_outside_lock_and_out_of_scope_are_clean(
            self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/audit/ok.py": (
                "import os\n"
                "import threading\n\n\n"
                "class Buf:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.dirty = []\n\n"
                "    def flush(self, fd):\n"
                "        with self._lock:\n"
                "            batch = list(self.dirty)\n"
                "        os.fsync(fd)\n"
                "        return batch\n"
            ),
            # Same pattern outside audit/service/resilience: not this
            # rule's contract.
            "repro/fuzzing/meh.py": (
                "import os\n"
                "import threading\n\n"
                "gate = threading.Lock()\n\n\n"
                "def flush(fd):\n"
                "    with gate:\n"
                "        os.fsync(fd)\n"
            ),
        }, select=["KND012"])
        assert findings == []


class TestKND013ForkSafety:
    def test_fork_under_lock_and_thread_before_fork_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/resilience/forks.py": (
                "import os\n"
                "import threading\n\n"
                "gate = threading.Lock()\n\n\n"
                "def fork_locked():\n"
                "    with gate:\n"
                "        return os.fork()\n\n\n"
                "def fork_via_call():\n"
                "    with gate:\n"
                "        return spawn()\n\n\n"
                "def spawn():\n"
                "    return os.fork()\n\n\n"
                "def thread_then_fork(work):\n"
                "    t = threading.Thread(target=work)\n"
                "    t.start()\n"
                "    return os.fork()\n"
            ),
        }, select=["KND013"])
        assert rule_ids(findings) == ["KND013"] * 3
        direct, via, threaded = findings
        assert "locked mutex" in direct.message
        assert "repro.resilience.forks:spawn" in via.message
        assert any("os.fork" in hop for hop in via.witness)
        assert "after creating a thread" in threaded.message

    def test_lock_free_fork_and_fork_before_thread_are_clean(
            self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/resilience/ok.py": (
                "import os\n"
                "import threading\n\n"
                "gate = threading.Lock()\n\n\n"
                "def fork_clean():\n"
                "    with gate:\n"
                "        pid = 0\n"
                "    return os.fork()\n\n\n"
                "def fork_then_thread(work):\n"
                "    pid = os.fork()\n"
                "    if pid == 0:\n"
                "        return 0\n"
                "    t = threading.Thread(target=work)\n"
                "    t.start()\n"
                "    return pid\n"
            ),
        }, select=["KND013"])
        assert findings == []


class TestKND014ShardMergeDeterminism:
    def test_rng_wall_clock_and_unsorted_merge_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/shard_bad.py": (
                "import random\n"
                "import time\n"
                "import numpy as np\n\n\n"
                "def plan_slices(n):\n"
                "    jitter = random.random()\n"
                "    stamp = time.time()\n"
                "    seeds = np.random.rand(n)\n"
                "    return jitter, stamp, seeds\n\n\n"
                "def merge_results(results):\n"
                "    clouds = []\n"
                "    for idx, res in results.items():\n"
                "        clouds.append(res)\n"
                "    return clouds\n"
            ),
        }, select=["KND014"])
        assert rule_ids(findings) == ["KND014"] * 4
        messages = " ".join(f.message for f in findings)
        assert "wall-clock" in messages
        assert "RNG call" in messages
        assert "completion) order" in messages

    def test_keyed_seeds_sorted_merge_and_out_of_scope_are_clean(
            self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/shard_good.py": (
                "import hashlib\n"
                "import time\n\n\n"
                "def derive_seed(job_key, index):\n"
                "    digest = hashlib.sha256(\n"
                "        f'{job_key}:{index}'.encode()).digest()\n"
                "    return int.from_bytes(digest[:8], 'little')\n\n\n"
                "def merge_results(results, budget_s):\n"
                "    start = time.monotonic()\n"
                "    clouds = [results[i] for i in sorted(results)]\n"
                "    for idx in sorted(results.keys()):\n"
                "        clouds.append(results[idx])\n"
                "    return clouds, start\n"
            ),
            # Same hazards outside the shard modules: other rules' turf.
            "repro/service/daemon2.py": (
                "import time\n\n\n"
                "def tick():\n"
                "    return time.time()\n\n\n"
                "def merge_views(views):\n"
                "    return [v for _, v in views.items()]\n"
            ),
        }, select=["KND014"])
        assert findings == []


class TestKND015FencedStoreWrites:
    def test_raw_primitives_in_fleet_modules_fire(self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/fleet/bad_store.py": (
                "import os\n"
                "from repro.ioutil import atomic_write, durable_append\n\n\n"
                "def publish(path, data):\n"
                "    with atomic_write(path, 'wb') as fh:\n"
                "        fh.write(data)\n"
                "    durable_append(path + '.events', data)\n"
                "    fd = os.open(path, os.O_CREAT | os.O_EXCL | "
                "os.O_WRONLY)\n"
                "    os.close(fd)\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write('x')\n"
            ),
        }, select=["KND015"])
        assert rule_ids(findings) == ["KND015"] * 4
        messages = " ".join(f.message for f in findings)
        assert "publish_sealed" in messages
        assert "append_sealed" in messages
        assert "create_sealed_exclusive" in messages
        assert "token" in messages

    def test_fencing_helpers_reads_and_out_of_scope_are_clean(
            self, tmp_path):
        findings = check_tree(tmp_path, {
            "repro/service/fleet/good_store.py": (
                "from repro.service.fleet.fencing import (\n"
                "    append_sealed, create_sealed_exclusive,\n"
                "    publish_sealed, read_sealed)\n\n\n"
                "def roundtrip(path, record):\n"
                "    publish_sealed(path, record)\n"
                "    create_sealed_exclusive(path + '.done', record)\n"
                "    append_sealed(path + '.events', record)\n"
                "    with open(path, 'rb') as fh:\n"
                "        fh.read()\n"
                "    return read_sealed(path)\n"
            ),
            # The helper module itself owns the raw primitives.
            "repro/service/fleet/fencing.py": (
                "import os\n"
                "from repro.ioutil import atomic_write\n\n\n"
                "def publish_sealed(path, record):\n"
                "    with atomic_write(path, 'wb') as fh:\n"
                "        fh.write(record)\n\n\n"
                "def create_sealed_exclusive(path, record):\n"
                "    fd = os.open(path, os.O_CREAT | os.O_EXCL | "
                "os.O_WRONLY)\n"
                "    os.close(fd)\n"
            ),
            # Same primitives outside the fleet package: other rules'
            # turf (KND002/KND007), not this one's.
            "repro/service/elsewhere.py": (
                "from repro.ioutil import atomic_write\n\n\n"
                "def save(path, data):\n"
                "    with atomic_write(path, 'wb') as fh:\n"
                "        fh.write(data)\n"
            ),
        }, select=["KND015"])
        assert findings == []
