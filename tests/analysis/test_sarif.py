"""SARIF 2.1.0 schema-shape checks for the report writer."""

import json

from repro.analysis import run_check
from repro.analysis.report import render_json, render_sarif
from tests.analysis.helpers import make_tree

DIRTY = {
    "repro/core/mod.py": (
        "def save(path):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write('x')\n"
    ),
}


class TestSarifShape:
    def _doc(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        result = run_check([root])
        return result, json.loads(render_sarif(result.new, result.rules))

    def test_top_level_shape(self, tmp_path):
        _, doc = self._doc(tmp_path)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_driver_carries_full_rule_catalog(self, tmp_path):
        result, doc = self._doc(tmp_path)
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "kondo-check"
        ids = [r["id"] for r in driver["rules"]]
        assert ids == [r.rule_id for r in result.rules]
        assert len(ids) >= 6
        for meta in driver["rules"]:
            assert meta["shortDescription"]["text"]
            assert meta["defaultConfiguration"]["level"] in (
                "error", "warning", "note")

    def test_results_reference_rules_and_locations(self, tmp_path):
        result, doc = self._doc(tmp_path)
        results = doc["runs"][0]["results"]
        assert len(results) == len(result.new) >= 1
        rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        for res in results:
            assert res["ruleId"] in rule_ids
            assert res["message"]["text"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("mod.py")
            assert loc["region"]["startLine"] >= 1
            assert res["partialFingerprints"]["kondoFingerprint/v1"]

    def test_json_report_parses_and_mirrors_findings(self, tmp_path):
        result, _ = self._doc(tmp_path)
        doc = json.loads(render_json(result.new, result.grandfathered))
        assert len(doc["findings"]) == len(result.new)
        assert doc["baselined"] == []
        assert doc["findings"][0]["rule"] == "KND002"
        assert doc["findings"][0]["fingerprint"]
