"""Baseline round-trip: grandfather known debt, catch regressions."""

import json

from repro.analysis import Baseline, run_check
from repro.analysis.baseline import BASELINE_VERSION
from tests.analysis.helpers import make_tree

DIRTY = {
    "repro/core/mod.py": (
        "def save(path):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write('x')\n"
    ),
}


class TestBaselineRoundTrip:
    def test_write_then_rerun_is_clean(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        first = run_check([root], select=["KND002"])
        assert len(first.new) == 1

        bl_path = str(tmp_path / "baseline.json")
        Baseline.from_findings(first.new).save(bl_path)
        baseline = Baseline.load(bl_path)

        second = run_check([root], select=["KND002"], baseline=baseline)
        assert second.new == []
        assert len(second.grandfathered) == 1
        assert second.exit_code == 0

    def test_new_finding_still_fails_under_baseline(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        first = run_check([root], select=["KND002"])
        baseline = Baseline.from_findings(first.new)

        extra = dict(DIRTY)
        extra["repro/core/fresh.py"] = (
            "def leak(path):\n"
            "    with open(path, 'wb') as fh:\n"
            "        fh.write(b'x')\n"
        )
        root = make_tree(tmp_path, extra)
        second = run_check([root], select=["KND002"], baseline=baseline)
        assert len(second.new) == 1
        assert second.new[0].module == "repro.core.fresh"
        assert second.exit_code == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        baseline = Baseline.from_findings(
            run_check([root], select=["KND002"]).new)

        shifted = {
            "repro/core/mod.py": "import os\n\n\n" + DIRTY["repro/core/mod.py"],
        }
        root = make_tree(tmp_path, shifted)
        second = run_check([root], select=["KND002"], baseline=baseline)
        assert second.new == []
        assert len(second.grandfathered) == 1

    def test_file_shape(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        bl_path = str(tmp_path / "baseline.json")
        Baseline.from_findings(
            run_check([root], select=["KND002"]).new).save(bl_path)
        with open(bl_path, "rb") as fh:
            payload = json.load(fh)
        assert payload["version"] == BASELINE_VERSION
        assert len(payload["findings"]) == 1
        entry = next(iter(payload["findings"].values()))
        assert entry["rule"] == "KND002"
        assert entry["count"] == 1
