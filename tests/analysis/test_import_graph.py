"""Import-graph construction: edges, deferred flags, cycles."""

from repro.analysis import ImportGraph, Project
from tests.analysis.helpers import make_tree


def _graph(tmp_path, files):
    project = Project.load([make_tree(tmp_path, files)])
    return ImportGraph.build(project.files)


def _targets(graph, src):
    return [e.target for e in graph.edges if e.src == src]


class TestImportGraph:
    def test_edges_resolve_from_imports(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/a.py": "from repro.b import thing\n",
            "repro/b.py": "thing = 1\n",
        })
        assert _targets(graph, "repro.a") == ["repro.b"]

    def test_from_package_import_module_resolves_to_module(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/a.py": "from repro.pkg import mod\n",
            "repro/pkg/mod.py": "x = 1\n",
        })
        assert _targets(graph, "repro.a") == ["repro.pkg.mod"]

    def test_relative_import_resolves(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/pkg/a.py": "from .b import thing\n",
            "repro/pkg/b.py": "thing = 1\n",
        })
        assert _targets(graph, "repro.pkg.a") == ["repro.pkg.b"]

    def test_deferred_and_type_checking_flags(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/a.py": (
                "from typing import TYPE_CHECKING\n\n"
                "if TYPE_CHECKING:\n"
                "    from repro.b import B\n\n\n"
                "def lazy():\n"
                "    from repro.c import C\n"
                "    return C\n"
            ),
            "repro/b.py": "B = 1\n",
            "repro/c.py": "C = 1\n",
        })
        edges = {e.target: e for e in graph.edges
                 if e.src == "repro.a" and e.target.startswith("repro.")}
        assert edges["repro.b"].type_checking
        assert not edges["repro.b"].deferred
        assert edges["repro.c"].deferred
        # Neither counts as a hard (import-time) edge.
        hard = [e.target for e in graph.hard_edges() if e.src == "repro.a"]
        assert "repro.b" not in hard and "repro.c" not in hard

    def test_cycle_detection_ignores_deferred_edges(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/a.py": "from repro.b import thing\n",
            "repro/b.py": (
                "thing = 1\n\n\n"
                "def lazy():\n"
                "    from repro.a import other\n"
                "    return other\n"
            ),
        })
        assert graph.cycles() == []

    def test_hard_cycle_detected(self, tmp_path):
        graph = _graph(tmp_path, {
            "repro/a.py": "from repro.b import thing\n",
            "repro/b.py": "from repro.a import other\n",
        })
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) >= {"repro.a", "repro.b"}
