"""Call-graph resolution units and the fixpoint's order-independence."""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import build_context_from_trees


def ctx_from(sources):
    """Context from ``{(path, module): source}``."""
    return build_context_from_trees(
        [(path, module, ast.parse(src))
         for (path, module), src in sources.items()])


class TestResolution:
    def test_self_call_resolves_to_method_not_module_function(self):
        # Both a module-level ``sync`` and a method ``sync`` exist; the
        # receiver decides which one the call edge lands on.
        ctx = ctx_from({
            ("pkg/a.py", "pkg.a"): (
                "import os\n\n\n"
                "def sync(fd):\n"
                "    pass\n\n\n"
                "class Writer:\n"
                "    def flush(self, fd):\n"
                "        self.sync(fd)\n\n"
                "    def sync(self, fd):\n"
                "        os.fsync(fd)\n\n\n"
                "def drain(fd):\n"
                "    sync(fd)\n"
            ),
        })
        method_call = ctx.resolved_calls("pkg.a:Writer.flush")
        assert [c.callee for c in method_call] == ["pkg.a:Writer.sync"]
        module_call = ctx.resolved_calls("pkg.a:drain")
        assert [c.callee for c in module_call] == ["pkg.a:sync"]
        # Effects follow the right edge: only the method blocks.
        assert "fsync" in ctx.blocking["pkg.a:Writer.flush"]
        assert ctx.blocking["pkg.a:drain"] == {}

    def test_qualified_call_resolves_across_modules(self):
        ctx = ctx_from({
            ("pkg/a.py", "pkg.a"): (
                "from pkg import b\n\n\n"
                "def top():\n"
                "    b.mid()\n"
            ),
            ("pkg/b.py", "pkg.b"): (
                "import os\n\n\n"
                "def mid():\n"
                "    os.fork()\n"
            ),
        })
        assert [c.callee for c in ctx.resolved_calls("pkg.a:top")] \
            == ["pkg.b:mid"]
        # Fork reachability propagates through the resolved edge, with
        # the witness chain ending at the primitive's site.
        chain = ctx.fork["pkg.a:top"]
        assert chain is not None
        assert chain[0] == "pkg.b:mid"
        assert "os.fork()" in chain[-1]

    def test_base_class_method_resolution(self):
        ctx = ctx_from({
            ("pkg/a.py", "pkg.a"): (
                "import os\n\n\n"
                "class Base:\n"
                "    def sync(self, fd):\n"
                "        os.fsync(fd)\n\n\n"
                "class Child(Base):\n"
                "    def flush(self, fd):\n"
                "        self.sync(fd)\n"
            ),
        })
        assert [c.callee for c in ctx.resolved_calls("pkg.a:Child.flush")] \
            == ["pkg.a:Base.sync"]

    def test_unknown_callee_contributes_nothing(self):
        # ``handle.sync()`` could block for all we know, but the
        # receiver is opaque: conservatively it adds no effects, so the
        # rules never report a finding without a concrete witness.
        ctx = ctx_from({
            ("pkg/a.py", "pkg.a"): (
                "import threading\n\n"
                "gate = threading.Lock()\n\n\n"
                "def process(handle):\n"
                "    with gate:\n"
                "        handle.sync()\n"
            ),
        })
        assert ctx.resolved_calls("pkg.a:process") == []
        assert ctx.blocking["pkg.a:process"] == {}
        assert ctx.fork["pkg.a:process"] is None
        # The direct acquisition is still seen.
        assert "pkg.a:gate" in ctx.may_acquire["pkg.a:process"]


#: A three-hop project: a -> b -> c with locks at both ends, so the
#: fixpoint has real interprocedural work to do in every ordering.
CHAIN_SOURCES = {
    ("pkg/a.py", "pkg.a"): (
        "import threading\n"
        "from pkg import b\n\n"
        "la = threading.Lock()\n\n\n"
        "def outer():\n"
        "    with la:\n"
        "        b.mid()\n"
    ),
    ("pkg/b.py", "pkg.b"): (
        "from pkg import c\n\n\n"
        "def mid():\n"
        "    c.inner()\n"
    ),
    ("pkg/c.py", "pkg.c"): (
        "import os\n"
        "import threading\n\n"
        "lc = threading.Lock()\n\n\n"
        "def inner():\n"
        "    with lc:\n"
        "        pass\n"
        "    os.fsync(0)\n"
    ),
}


def fingerprint(ctx):
    return (ctx.may_acquire, ctx.blocking, ctx.fork,
            dict(ctx.lock_edges))


class TestFixpointOrderIndependence:
    def test_chain_effects_propagate(self):
        ctx = ctx_from(CHAIN_SOURCES)
        assert "pkg.c:lc" in ctx.may_acquire["pkg.a:outer"]
        assert "fsync" in ctx.blocking["pkg.a:outer"]
        assert ("pkg.a:la", "pkg.c:lc") in ctx.lock_edges

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(sorted(CHAIN_SOURCES)))
    def test_shuffled_module_order_is_identical(self, order):
        entries = [(path, module, ast.parse(CHAIN_SOURCES[(path, module)]))
                   for path, module in order]
        shuffled = build_context_from_trees(entries)
        reference = ctx_from(CHAIN_SOURCES)
        assert fingerprint(shuffled) == fingerprint(reference)
