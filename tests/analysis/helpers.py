"""Shared fixture-project builder for the analysis tests."""

import os
from typing import Dict, List

from repro.analysis import Finding, run_check


def make_tree(tmp_path, files: Dict[str, str]) -> str:
    """Write ``{relative/path.py: source}`` under ``tmp_path``.

    Every intermediate directory gets an ``__init__.py`` so the module
    inference sees a package tree rooted at ``tmp_path``.
    """
    for rel, source in files.items():
        path = tmp_path / rel
        d = path.parent
        d.mkdir(parents=True, exist_ok=True)
        walk = d
        while walk != tmp_path:
            init = walk / "__init__.py"
            if not init.exists():
                init.write_text("")
            walk = walk.parent
        path.write_text(source)
    return str(tmp_path)


def check_tree(tmp_path, files: Dict[str, str],
               select=None) -> List[Finding]:
    """Build a fixture tree and return its (unbaselined) findings."""
    root = make_tree(tmp_path, files)
    return run_check([root], select=select).new


def rule_ids(findings) -> List[str]:
    return [f.rule_id for f in findings]


def real_src() -> str:
    """Path to the repo's real src/repro tree."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(here), "..", "src", "repro")
