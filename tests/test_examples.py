"""Smoke tests: every shipped example must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["debloated", "DataMissingError"]),
    ("hurricane_container.py", ["built image", "Bob runs"]),
    ("real_applications.py", ["ARD", "MSI", "BF (same budget)"]),
    ("schedule_comparison.py", ["boundary EE", "plain EE"]),
    ("trace_ingestion.py", ["merged ranges", "per-pid"]),
    ("multifile_bundle.py", ["UNTOUCHED", "droppable members"]),
    ("carve_visualization.py", ["legend", "precision="]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES,
                         ids=[s for s, _ in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in expected:
        assert needle in proc.stdout, (
            f"{script}: expected {needle!r} in output"
        )
