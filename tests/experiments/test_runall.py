"""Unit tests for the run-everything driver."""

from repro.experiments.runall import (
    ExperimentOutcome,
    RunAllResult,
    experiment_runners,
    run_all,
)


class TestRunnersRegistry:
    def test_all_experiments_present(self):
        runners = experiment_runners()
        expected = {
            "fig4", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11bc",
            "table2", "table3", "audit-overhead", "missed-access",
            "ablations", "ext-chunk", "ext-hybrid", "ext-merkle",
            "ext-vpic",
        }
        assert set(runners) == expected


class TestRunAll:
    def test_subset_run(self):
        messages = []
        result = run_all(names=("table2",), progress=messages.append)
        assert result.failed == []
        assert len(result.outcomes) == 1
        assert result.outcomes[0].name == "table2"
        assert "Table II" in result.outcomes[0].text
        assert messages == ["[runall] table2 ..."]
        assert "1 experiments" in result.format()

    def test_failure_captured_not_raised(self, monkeypatch):
        import repro.experiments as ex

        def boom():
            raise RuntimeError("kaput")

        monkeypatch.setattr(ex, "run_table2", boom)
        result = run_all(names=("table2",), progress=None)
        assert result.failed == ["table2"]
        assert "kaput" in result.format()

    def test_format_lists_failures(self):
        result = RunAllResult(outcomes=[
            ExperimentOutcome(name="x", seconds=1.0, text="", error="E"),
            ExperimentOutcome(name="y", seconds=2.0, text="fine"),
        ])
        text = result.format()
        assert "failed: ['x']" in text
        assert "fine" in text


class TestCliIntegration:
    def test_cli_visualize(self, capsys):
        from repro.cli import main

        assert main(["visualize", "CS", "--dims", "32x32",
                     "--width", "16"]) == 0
        out = capsys.readouterr().out
        assert "precision=" in out
        assert "legend" in out

    def test_cli_visualize_rejects_3d(self, capsys):
        from repro.cli import main

        assert main(["visualize", "LDC3D"]) == 1
        assert "2-D" in capsys.readouterr().err
