"""Small-configuration tests for the remaining experiment drivers."""

import numpy as np
import pytest

from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import measure_program, run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11bc
from repro.experiments.missed_access import run_missed_access
from repro.experiments.table3 import run_table3


class TestFig9Driver:
    def test_small(self):
        result = run_fig9(programs=("CS",), repetitions=1)
        row = result.rows[0]
        assert row.program == "CS"
        assert 0 < row.kondo_bloat <= row.truth_bloat + 0.05
        assert "bloat" in result.format()


class TestFig10Driver:
    def test_measure_program(self):
        measured = measure_program("CS", bf_cap_s=5.0, afl_cap_s=2.0)
        assert set(measured) == {"Kondo", "BF", "AFL"}
        for engine, (seconds, recall) in measured.items():
            assert seconds >= 0
            assert 0 <= recall <= 1.0001, engine

    def test_run_one_family(self):
        result = run_fig10(
            families={"CS": ("CS",)}, bf_cap_s=5.0, afl_cap_s=2.0
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.family == "CS"
        assert "Figure 10" in result.format()


class TestFig11Driver:
    def test_fig11a_tiny(self):
        result = run_fig11a(program_name="CS", sizes=(64,), repetitions=1)
        assert len(result.rows) == 1
        assert result.rows[0].size == 64
        assert "file size" in result.format()

    def test_fig11bc_bound_parameter(self):
        result = run_fig11bc(
            program_names=("LDC2D",), thresholds=(5.0,),
            repetitions=1, parameter="bound_d_thresh",
        )
        assert result.parameter == "bound_d_thresh"
        assert "bound_d_thresh" in result.format()

    def test_fig11bc_unknown_parameter(self):
        with pytest.raises(ValueError):
            run_fig11bc(parameter="magic_thresh")


class TestTable3Driver:
    def test_rows_and_format(self):
        result = run_table3(programs=("MSI",), budget_scale=1.0)
        row = result.rows[0]
        assert row.program == "MSI"
        assert row.bf_precision == 1.0
        assert row.kondo_recall >= row.bf_recall
        assert 0 < row.kondo_debloat < 1
        assert "Table III" in result.format()


class TestMissedAccessDriver:
    def test_one_program(self):
        result = run_missed_access(programs=("CS",), max_valuations=500)
        name, report = result.reports[0]
        assert name == "CS"
        assert report.n_valuations == 500
        assert 0 <= result.worst_rate <= 1
        assert "missed" in result.format()
