"""Smoke tests for the extension experiment drivers."""

import pytest

from repro.experiments.extensions import (
    run_chunk_granularity,
    run_hybrid_consultation,
    run_merkle_delivery,
    run_vpic,
)


class TestChunkGranularityDriver:
    def test_small(self):
        result = run_chunk_granularity(
            program_name="CS", dims=(32, 32), chunk_sizes=(4, 8)
        )
        assert len(result.rows) == 2
        assert result.rows[0].inflation >= 1.0
        assert "chunk" in result.format()


class TestHybridDriver:
    def test_single_program(self):
        result = run_hybrid_consultation(
            program_names=("CS",), residual_fraction=0.1
        )
        row = result.rows[0]
        assert row.hybrid_raw_recall >= row.kondo_raw_recall
        assert "hybrid" in result.format()


class TestMerkleDriver:
    def test_small(self):
        result = run_merkle_delivery(dims=(48, 48), env_nbytes=32_768)
        assert result.row("cold").dedup_fraction == 0.0
        assert result.row("warm-original").dedup_fraction > 0.2
        assert "Merkle" in result.format()
        with pytest.raises(KeyError):
            result.row("nobody")


class TestVPICDriver:
    def test_small(self):
        result = run_vpic(dims=(64, 64))
        assert result.accuracy.recall > 0.8
        assert result.n_hulls >= 1
        assert "VPIC" in result.format()
