"""Unit tests for the report/table formatting helpers."""

import pytest

from repro.experiments.report import format_table, mean, stdev


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [("a", 1.0), ("longer", 0.5)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456,)])
        assert "0.123" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = format_table(["a"], [(17,), ("s",), (1.5,)])
        assert "17" in text and "s" in text and "1.500" in text


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2.0, 4.0]) == pytest.approx(2.0 ** 0.5)
        assert stdev([5.0]) == 0.0
        assert stdev([]) == 0.0
