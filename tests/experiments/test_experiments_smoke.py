"""Smoke tests for the experiment drivers (tiny configurations).

Full regenerations live under benchmarks/; these verify the machinery —
budgets, engine dispatch, row shapes, formatting — on minimal workloads.
"""

import numpy as np
import pytest

from repro.experiments import (
    ascii_scatter,
    engine_runs,
    kondo_time_budget,
    run_ablations,
    run_engine,
    run_fig4,
    run_fig7,
    run_fig8,
    run_fig11bc,
    run_table2,
)
from repro.errors import ProgramError
from repro.workloads import default_dims, get_program


class TestCommon:
    def test_run_engine_kondo(self):
        run = run_engine("Kondo", get_program("CS"), (32, 32))
        assert run.engine == "Kondo"
        assert run.recall > 0.8
        assert run.executions > 0
        assert run.n_hulls >= 1

    def test_run_engine_bf_budgeted(self):
        run = run_engine(
            "BF", get_program("CS"), (32, 32), max_executions=50
        )
        assert run.precision == 1.0
        assert run.executions == 50

    def test_run_engine_afl(self):
        run = run_engine(
            "AFL", get_program("CS"), (32, 32), max_executions=200
        )
        assert run.precision == 1.0

    def test_run_engine_sc(self):
        run = run_engine("SC", get_program("LDC2D"), (64, 64),
                         max_executions=300)
        assert run.n_hulls <= 1

    def test_run_engine_random(self):
        run = run_engine("Random", get_program("CS"), (32, 32),
                         max_executions=100)
        assert run.precision == 1.0

    def test_unknown_engine(self):
        with pytest.raises(ProgramError):
            run_engine("Magic", get_program("CS"), (32, 32))

    def test_budget_positive_and_cached(self):
        program = get_program("CS")
        dims = (32, 32)
        b1 = kondo_time_budget(program, dims)
        b2 = kondo_time_budget(program, dims)
        assert b1 > 0
        assert b1 == b2  # cached

    def test_engine_runs_repetitions(self):
        runs = engine_runs("Kondo", "CS", repetitions=2, dims=(32, 32))
        assert len(runs) == 2
        # Different seeds -> (almost surely) different fuzz campaigns.
        assert runs[0].executions > 0


class TestDrivers:
    def test_fig4_small(self):
        result = run_fig4(program_name="CS", iterations=120)
        assert result.plain.n_runs == 120
        assert result.boundary.n_runs == 120
        art = ascii_scatter(result.boundary)
        assert len(art.splitlines()) == 48
        assert "|" in art or "-" in art
        assert "Figure 4" in result.format()

    def test_fig7_single_family(self):
        result = run_fig7(families={"CS": ("CS",)}, engines=("Kondo", "BF"))
        assert len(result.rows) == 2
        assert 0 <= result.recall_of("CS", "Kondo") <= 1
        assert "recall" in result.format()

    def test_fig8_single_program(self):
        result = run_fig8(programs=("CS",), engines=("Kondo", "SC"))
        assert result.precision_of("CS", "Kondo") > 0
        assert "precision" in result.format()

    def test_fig11bc_two_thresholds(self):
        result = run_fig11bc(
            program_names=("LDC2D",), thresholds=(5.0, 40.0), repetitions=1
        )
        assert len(result.rows) == 2
        assert "center_d_thresh" in result.format()

    def test_table2_format(self):
        result = run_table2(programs=("CS", "PRL2D"))
        assert len(result.rows) == 2
        assert "Theta" in result.format()

    def test_ablations_tiny(self):
        result = run_ablations(programs=("CS",), repetitions=1)
        assert result.row("carver", "merge (default)").mean_recall > 0
        assert "ablation" in result.format()
