"""Unit tests for h5bench-style configuration loading."""

import pytest

from repro.errors import ProgramError
from repro.workloads import get_program
from repro.workloads.h5bench_config import (
    BenchmarkPlan,
    load_h5bench_config,
    load_h5bench_config_file,
)


class TestLoadConfig:
    def test_paper_defaults(self):
        plan = load_h5bench_config("{}")
        assert plan.mode == "sync"
        assert plan.dims == (128, 128)
        assert plan.blocksize == 2
        assert plan.dtype == "f16"
        # Paper: "data dimensions set to 128 by 128 (256 KB)".
        assert plan.data_nbytes == 256 * 1024
        assert plan.program_names == ("CS", "PRL2D", "LDC2D", "RDC2D")

    def test_explicit_document(self):
        doc = """{
          "mode": "sync",
          "dims": [64, 64],
          "blocksize": 4,
          "dtype": "f8",
          "chunks": [16, 16],
          "benchmarks": ["CS", "CS3"]
        }"""
        plan = load_h5bench_config(doc)
        assert plan.dims == (64, 64)
        assert plan.chunks == (16, 16)
        assert plan.schema().chunks == (16, 16)
        assert [p.name for p in plan.programs()] == ["CS", "CS3"]

    def test_malformed_json(self):
        with pytest.raises(ProgramError):
            load_h5bench_config("{nope")

    def test_non_object(self):
        with pytest.raises(ProgramError):
            load_h5bench_config("[1, 2]")

    def test_bad_mode(self):
        with pytest.raises(ProgramError):
            load_h5bench_config('{"mode": "turbo"}')

    def test_bad_dims(self):
        with pytest.raises(ProgramError):
            load_h5bench_config('{"dims": [0, 4]}')

    def test_bad_blocksize(self):
        with pytest.raises(ProgramError):
            load_h5bench_config('{"blocksize": 0}')

    def test_bad_dtype(self):
        with pytest.raises(ProgramError):
            load_h5bench_config('{"dtype": "f2"}')

    def test_unknown_benchmark(self):
        with pytest.raises(ProgramError):
            load_h5bench_config('{"benchmarks": ["NOPE"]}')

    def test_file_loading(self, tmp_path):
        p = tmp_path / "config.json"
        p.write_text('{"dims": [32, 32], "dtype": "f8"}')
        plan = load_h5bench_config_file(str(p))
        assert plan.dims == (32, 32)


class TestDimsAdaptation:
    def test_2d_plan_matches_2d_program(self):
        plan = load_h5bench_config("{}")
        assert plan.dims_for(get_program("CS")) == (128, 128)

    def test_2d_plan_adapts_to_3d_program(self):
        # The paper pairs 128x128 2-D with 64^3 3-D defaults.
        plan = load_h5bench_config("{}")
        assert plan.dims_for(get_program("PRL3D")) == (64, 64, 64)

    def test_unadaptable_rejected(self):
        plan = load_h5bench_config('{"dims": [16, 16, 16, 16]}')
        with pytest.raises(ProgramError):
            plan.dims_for(get_program("CS"))


class TestPlanEndToEnd:
    def test_plan_drives_kondo(self):
        from repro.core import Kondo
        from repro.fuzzing import FuzzConfig
        from repro.metrics import accuracy

        plan = load_h5bench_config(
            '{"dims": [32, 32], "benchmarks": ["CS"], "dtype": "f8"}'
        )
        program = plan.programs()[0]
        dims = plan.dims_for(program)
        kondo = Kondo(program, dims, fuzz_config=FuzzConfig(max_iter=400))
        result = kondo.analyze()
        acc = accuracy(program.ground_truth_flat(dims), result.carved_flat)
        assert acc.recall > 0.85
