"""Unit tests for the VPIC threshold-subsetting extension workload."""

import numpy as np
import pytest

from repro.workloads import get_program
from repro.workloads.registry import ALL_BENCHMARKS, EXTENSION_PROGRAMS
from repro.workloads.vpic import synthetic_energy_field


class TestEnergyField:
    def test_deterministic(self):
        a = synthetic_energy_field((32, 32))
        b = synthetic_energy_field((32, 32))
        assert np.array_equal(a, b)

    def test_normalized(self):
        f = synthetic_energy_field((48, 48))
        assert f.max() == pytest.approx(1.0)
        assert f.min() >= 0.0

    def test_multiple_blobs(self):
        """Super-level sets near the top should be several components."""
        f = synthetic_energy_field((96, 96))
        mask = f >= 0.8
        import scipy.ndimage as ndi

        _, n = ndi.label(mask)
        assert n >= 2


class TestVPICProgram:
    def test_registered_as_extension(self):
        assert "VPIC" in EXTENSION_PROGRAMS
        assert "VPIC" not in ALL_BENCHMARKS  # not part of Table II

    def test_gt_matches_bruteforce(self):
        prog = get_program("VPIC")
        dims = (32, 32)
        assert np.array_equal(
            prog.ground_truth_flat(dims),
            prog.ground_truth_brute_force(dims),
        )

    def test_monotone_in_threshold(self):
        """Higher thresholds access subsets of lower thresholds' cells."""
        prog = get_program("VPIC")
        dims = (64, 64)
        low = {tuple(r) for r in prog.access_indices((700,), dims)}
        high = {tuple(r) for r in prog.access_indices((950,), dims)}
        assert high < low

    def test_out_of_range_threshold_nonuseful(self):
        prog = get_program("VPIC")
        assert prog.access_indices((100,), (64, 64)).size == 0
        assert prog.access_indices((999,), (64, 64)).size == 0

    def test_kondo_carves_blobs(self):
        from repro.core import Kondo
        from repro.fuzzing import FuzzConfig
        from repro.metrics import accuracy

        prog = get_program("VPIC")
        dims = (96, 96)
        kondo = Kondo(prog, dims, fuzz_config=FuzzConfig(rng_seed=0))
        res = kondo.analyze()
        acc = accuracy(prog.ground_truth_flat(dims), res.carved_flat)
        assert acc.recall > 0.95
        assert acc.precision > 0.8
        # Disjoint energy blobs carve into more than one hull.
        assert res.carve.n_hulls >= 2
