"""Program-suite tests: determinism, guards, and ground-truth validation.

The critical property: every program's analytic ``ground_truth_mask`` must
equal the brute-force union of ``access_indices`` over its whole parameter
space (checked on small arrays, where BF enumeration is exact).
"""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.workloads import (
    ALL_BENCHMARKS,
    REAL_APPLICATIONS,
    all_benchmarks,
    default_dims,
    get_program,
)

SMALL_DIMS = {2: (24, 24), 3: (16, 16, 16)}


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestGroundTruthAgainstBruteForce:
    def test_analytic_gt_matches_bf(self, name):
        prog = get_program(name)
        dims = SMALL_DIMS[prog.ndim]
        analytic = prog.ground_truth_flat(dims)
        brute = prog.ground_truth_brute_force(dims)
        assert np.array_equal(analytic, brute), (
            f"{name}: analytic ground truth disagrees with brute force "
            f"(analytic {analytic.size}, bf {brute.size})"
        )


@pytest.mark.parametrize("name", ALL_BENCHMARKS + REAL_APPLICATIONS)
class TestProgramContracts:
    def test_determinism(self, name):
        prog = get_program(name)
        dims = SMALL_DIMS.get(prog.ndim, default_dims(prog))
        if name in REAL_APPLICATIONS:
            dims = default_dims(prog)
        space = prog.parameter_space(dims)
        rng = np.random.default_rng(0)
        for _ in range(5):
            v = space.sample(rng)
            a = prog.access_indices(v, dims)
            b = prog.access_indices(v, dims)
            assert np.array_equal(a, b)

    def test_indices_within_bounds(self, name):
        prog = get_program(name)
        dims = default_dims(prog)
        space = prog.parameter_space(dims)
        rng = np.random.default_rng(1)
        for _ in range(10):
            idx = prog.access_indices(space.sample(rng), dims)
            if idx.size:
                assert idx.min() >= 0
                assert (idx < np.asarray(dims)).all()

    def test_out_of_space_value_is_nonuseful(self, name):
        prog = get_program(name)
        dims = default_dims(prog)
        bad = tuple(-1000 for _ in range(prog.ndim))
        assert prog.access_indices(bad, dims).size == 0

    def test_accesses_subset_of_ground_truth(self, name):
        prog = get_program(name)
        dims = SMALL_DIMS.get(prog.ndim, default_dims(prog))
        if name in REAL_APPLICATIONS:
            dims = default_dims(prog)
        gt = set(prog.ground_truth_flat(dims).tolist())
        space = prog.parameter_space(dims)
        rng = np.random.default_rng(2)
        for _ in range(20):
            flat = prog.access_flat(space.sample(rng), dims)
            assert set(flat.tolist()) <= gt

    def test_some_valuation_useful(self, name):
        prog = get_program(name)
        dims = default_dims(prog)
        space = prog.parameter_space(dims)
        rng = np.random.default_rng(3)
        assert any(
            prog.is_useful(space.sample(rng), dims) for _ in range(300)
        )

    def test_wrong_rank_dims_rejected(self, name):
        prog = get_program(name)
        with pytest.raises(ProgramError):
            prog.check_dims((8,) * (prog.ndim + 1))

    def test_run_replays_accesses(self, name):
        prog = get_program(name)
        dims = default_dims(prog)
        space = prog.parameter_space(dims)
        rng = np.random.default_rng(4)
        for _ in range(500):
            v = space.sample(rng)
            expected = prog.access_indices(v, dims)
            if expected.size:
                seen = []
                n = prog.run(lambda i: seen.append(i) or 1.0, v, dims)
                assert n == expected.shape[0]
                assert sorted(seen) == sorted(map(tuple, expected.tolist()))
                break
        else:
            pytest.fail("no useful valuation found")


class TestProgramShapes:
    def test_cs_is_lower_triangular(self):
        prog = get_program("CS")
        mask = prog.ground_truth_mask((24, 24))
        # Fully above the band x <= y + 1 nothing is accessed.
        assert not mask[10, 0]
        assert mask[0, 0]
        assert mask[5, 10]

    def test_ldc_two_separated_components(self):
        prog = get_program("LDC2D")
        mask = prog.ground_truth_mask((128, 128))
        assert mask[0, 0] and mask[127, 127]
        assert not mask[64, 64]
        assert not mask[0, 127] and not mask[127, 0]

    def test_rdc_anti_diagonal_components(self):
        prog = get_program("RDC2D")
        mask = prog.ground_truth_mask((128, 128))
        assert mask[127, 0] and mask[0, 127]
        assert not mask[0, 0] and not mask[127, 127]
        assert not mask[64, 64]

    def test_prl_has_central_hole(self):
        prog = get_program("PRL2D")
        mask = prog.ground_truth_mask((128, 128))
        assert not mask[64, 64]       # hole center
        assert mask[64 + 20, 64]      # within the ring band
        assert not mask[0, 0]         # outside the ring

    def test_prl3d_hole_relatively_larger(self):
        p2 = get_program("PRL2D")
        p3 = get_program("PRL3D")
        m2 = p2.ground_truth_mask((64, 64))
        m3 = p3.ground_truth_mask((64, 64, 64))
        # Hole fraction relative to the covered bounding box.
        def hole_fraction(mask):
            idx = np.argwhere(mask)
            lo, hi = idx.min(axis=0), idx.max(axis=0)
            box = mask[tuple(slice(a, b + 1) for a, b in zip(lo, hi))]
            return 1.0 - box.mean()
        assert hole_fraction(m3) > hole_fraction(m2)

    def test_cs5_has_hole_cs1_does_not(self):
        gt1 = get_program("CS1").ground_truth_flat((128, 128)).size
        gt5 = get_program("CS5").ground_truth_flat((128, 128)).size
        assert gt5 < gt1

    def test_ard_reads_full_temporal_extent(self):
        prog = get_program("ARD")
        dims = default_dims(prog)
        idx = prog.access_indices((3, 5, 17), dims)
        assert idx.size
        assert set(np.unique(idx[:, 2]).tolist()) == set(range(dims[2]))

    def test_ard_t_parameter_does_not_change_accesses(self):
        prog = get_program("ARD")
        dims = default_dims(prog)
        a = prog.access_indices((3, 5, 0), dims)
        b = prog.access_indices((3, 5, 4095), dims)
        assert np.array_equal(a, b)

    def test_msi_reads_full_planes(self):
        prog = get_program("MSI")
        dims = default_dims(prog)
        space = prog.parameter_space(dims)
        s = int(space.ranges[0].lo)
        idx = prog.access_indices((s, 0, 0), dims)
        assert np.unique(idx[:, 0]).size == dims[0]
        assert np.unique(idx[:, 1]).size == dims[1]
        zs = np.unique(idx[:, 2])
        assert zs.size == prog.window
        assert zs.min() == s

    def test_bloat_fraction_realapps_high(self):
        # Table III: ~97% debloat for ARD, ~96% for MSI.
        ard = get_program("ARD")
        msi = get_program("MSI")
        assert ard.bloat_fraction(default_dims(ard)) > 0.9
        assert msi.bloat_fraction(default_dims(msi)) > 0.9

    def test_eleven_benchmarks(self):
        assert len(all_benchmarks()) == 11
        assert len({p.name for p in all_benchmarks()}) == 11
