"""Unit tests for stencil shapes (Table I)."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.workloads import Stencil, block_with_hole, cross, solid_block


class TestSolidBlock:
    def test_2x2_in_2d(self):
        s = solid_block(2, extent=2)
        assert s.size == 4
        assert set(s.offsets) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_2x2x2_in_3d(self):
        assert solid_block(3, extent=2).size == 8

    def test_extent_validation(self):
        with pytest.raises(ProgramError):
            solid_block(2, extent=0)


class TestBlockWithHole:
    def test_hole_removed(self):
        s = block_with_hole(2, extent=4, hole=2)
        assert s.size == 16 - 4
        assert (1, 1) not in s.offsets
        assert (2, 2) not in s.offsets
        assert (0, 0) in s.offsets

    def test_hole_validation(self):
        with pytest.raises(ProgramError):
            block_with_hole(2, extent=4, hole=4)
        with pytest.raises(ProgramError):
            block_with_hole(2, extent=4, hole=0)

    def test_3d_hole(self):
        s = block_with_hole(3, extent=4, hole=2)
        assert s.size == 64 - 8


class TestCross:
    def test_radius_1(self):
        s = cross(2, radius=1)
        assert set(s.offsets) == {(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_radius_2_size(self):
        assert cross(2, radius=2).size == 1 + 2 * 2 * 2
        assert cross(3, radius=1).size == 7


class TestApply:
    def test_apply_clips_bounds(self):
        s = solid_block(2, extent=2)
        cells = s.apply(np.array([[9, 9]]), (10, 10))
        assert {tuple(c) for c in cells} == {(9, 9)}

    def test_apply_dedupes_overlap(self):
        s = solid_block(2, extent=2)
        cells = s.apply(np.array([[0, 0], [1, 1]]), (10, 10))
        assert cells.shape[0] == 7  # 4 + 4 - 1 shared

    def test_apply_empty_anchors(self):
        s = solid_block(2)
        assert s.apply(np.empty((0, 2)), (10, 10)).shape == (0, 2)

    def test_negative_offsets_clip(self):
        s = cross(2, radius=1)
        cells = s.apply(np.array([[0, 0]]), (10, 10))
        assert {tuple(c) for c in cells} == {(0, 0), (1, 0), (0, 1)}

    def test_mixed_rank_rejected(self):
        with pytest.raises(ProgramError):
            Stencil("bad", ((0, 0), (0, 0, 0)))

    def test_empty_stencil_rejected(self):
        with pytest.raises(ProgramError):
            Stencil("empty", ())

    def test_max_extent(self):
        assert solid_block(2, 3).max_extent() == (2, 2)
        assert cross(2, 2).max_extent() == (2, 2)
