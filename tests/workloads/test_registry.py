"""Unit tests for the program registry."""

import pytest

from repro.errors import ProgramError
from repro.workloads import (
    ALL_BENCHMARKS,
    DEFAULT_DIMS_2D,
    DEFAULT_DIMS_3D,
    EXTENSION_PROGRAMS,
    MICRO_BENCHMARKS,
    REAL_APPLICATIONS,
    SYNTHETIC_PROGRAMS,
    all_benchmarks,
    default_dims,
    get_program,
    micro_benchmarks,
    program_names,
    real_applications,
    synthetic_programs,
)


class TestRegistry:
    def test_suites_disjoint_and_complete(self):
        assert len(MICRO_BENCHMARKS) == 4
        assert len(SYNTHETIC_PROGRAMS) == 7
        assert set(MICRO_BENCHMARKS) | set(SYNTHETIC_PROGRAMS) == set(
            ALL_BENCHMARKS
        )
        assert not set(MICRO_BENCHMARKS) & set(SYNTHETIC_PROGRAMS)
        assert not set(ALL_BENCHMARKS) & set(REAL_APPLICATIONS)
        assert not set(ALL_BENCHMARKS) & set(EXTENSION_PROGRAMS)

    def test_unknown_program(self):
        with pytest.raises(ProgramError) as exc:
            get_program("NOPE")
        assert "known" in str(exc.value)

    def test_lookup_is_stable_instance(self):
        assert get_program("CS") is get_program("CS")

    def test_program_names_sorted(self):
        names = program_names()
        assert names == sorted(names)
        assert "CS" in names and "VPIC" in names

    def test_default_dims_by_rank(self):
        assert default_dims(get_program("CS")) == DEFAULT_DIMS_2D
        assert default_dims(get_program("PRL3D")) == DEFAULT_DIMS_3D

    def test_default_dims_explicit_override(self):
        # Real applications carry their own scaled default shapes.
        assert default_dims(get_program("ARD")) == (64, 96, 128)
        assert default_dims(get_program("MSI")) == (24, 24, 2048)

    def test_suite_helpers(self):
        assert [p.name for p in micro_benchmarks()] == list(MICRO_BENCHMARKS)
        assert [p.name for p in synthetic_programs()] == list(
            SYNTHETIC_PROGRAMS
        )
        assert len(all_benchmarks()) == 11
        assert [p.name for p in real_applications()] == list(
            REAL_APPLICATIONS
        )

    def test_every_program_has_description(self):
        for name in program_names():
            prog = get_program(name)
            assert prog.description
            assert prog.ndim in (2, 3)
