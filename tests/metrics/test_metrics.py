"""Unit tests for accuracy and missed-access metrics."""

import numpy as np
import pytest

from repro.metrics import accuracy, bloat_fraction, missed_valuations
from repro.workloads import get_program


class TestAccuracy:
    def test_perfect(self):
        a = accuracy(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert a.precision == 1.0 and a.recall == 1.0 and a.f1 == 1.0

    def test_over_approximation(self):
        a = accuracy(np.array([1, 2]), np.array([1, 2, 3, 4]))
        assert a.precision == 0.5
        assert a.recall == 1.0

    def test_under_approximation(self):
        a = accuracy(np.array([1, 2, 3, 4]), np.array([1]))
        assert a.precision == 1.0
        assert a.recall == 0.25

    def test_disjoint(self):
        a = accuracy(np.array([1, 2]), np.array([3, 4]))
        assert a.precision == 0.0 and a.recall == 0.0 and a.f1 == 0.0

    def test_empty_approx(self):
        a = accuracy(np.array([1, 2]), np.array([]))
        assert a.precision == 1.0  # vacuous: nothing wrongly included
        assert a.recall == 0.0

    def test_empty_truth(self):
        a = accuracy(np.array([]), np.array([1]))
        assert a.recall == 1.0
        assert a.precision == 0.0

    def test_duplicates_ignored(self):
        a = accuracy(np.array([1, 1, 2]), np.array([2, 2, 1]))
        assert a.precision == 1.0 and a.recall == 1.0
        assert a.n_truth == 2 and a.n_approx == 2

    def test_counts(self):
        a = accuracy(np.array([1, 2, 3]), np.array([2, 3, 4]))
        assert a.n_common == 2


class TestBloatFraction:
    def test_basic(self):
        assert bloat_fraction(np.arange(25), 100) == pytest.approx(0.75)

    def test_full_keep(self):
        assert bloat_fraction(np.arange(10), 10) == 0.0

    def test_empty_keep(self):
        assert bloat_fraction(np.array([]), 10) == 1.0

    def test_zero_total(self):
        assert bloat_fraction(np.array([]), 0) == 0.0


class TestMissedValuations:
    def test_full_ground_truth_never_misses(self):
        prog = get_program("CS")
        dims = (16, 16)
        report = missed_valuations(prog, dims, prog.ground_truth_flat(dims))
        assert report.exhaustive
        assert report.n_missed == 0
        assert report.missed_rate == 0.0

    def test_empty_subset_misses_all_useful(self):
        prog = get_program("CS")
        dims = (16, 16)
        report = missed_valuations(prog, dims, np.array([], dtype=np.int64))
        space = prog.parameter_space(dims)
        n_useful = sum(1 for v in space.grid() if prog.is_useful(v, dims))
        assert report.n_missed == n_useful
        assert 0 < report.missed_rate < 1

    def test_partial_subset(self):
        prog = get_program("CS")
        dims = (16, 16)
        gt = prog.ground_truth_flat(dims)
        half = gt[: gt.size // 2]
        report = missed_valuations(prog, dims, half)
        assert 0 < report.n_missed <= report.n_valuations

    def test_sampled_mode(self):
        prog = get_program("CS")
        dims = (32, 32)
        report = missed_valuations(
            prog, dims, prog.ground_truth_flat(dims), max_valuations=50
        )
        assert not report.exhaustive
        assert report.n_valuations == 50
        assert report.n_missed == 0
