"""Unit tests for the debloat test (Definition 2)."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.core import DebloatTest
from repro.errors import ProgramError
from repro.workloads import get_program


class TestDirectMode:
    def test_flat_offsets_returned(self):
        test = DebloatTest(get_program("CS"), (16, 16))
        flat = test((1, 1))
        assert flat.size > 0
        assert flat.dtype == np.int64
        assert flat.max() < 256

    def test_nonuseful_value_empty(self):
        test = DebloatTest(get_program("CS"), (16, 16))
        assert test((5, 1)).size == 0  # stepX > stepY fails the guard

    def test_execution_counters(self):
        test = DebloatTest(get_program("CS"), (16, 16))
        test((1, 1))
        test((5, 1))
        assert test.executions == 2
        assert test.useful_executions == 1

    def test_n_flat(self):
        assert DebloatTest(get_program("CS"), (16, 16)).n_flat == 256

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProgramError):
            DebloatTest(get_program("CS"), (16, 16), mode="ptrace")

    def test_audited_requires_path(self):
        with pytest.raises(ProgramError):
            DebloatTest(get_program("CS"), (16, 16), mode="audited")


class TestAuditedMode:
    def test_audited_agrees_with_direct(self, tmp_path):
        """The real-I/O audited path must produce the same I_v as the
        direct offset-replay path (the paper's simplifying transformation
        'does not in any way affect the region computed')."""
        dims = (16, 16)
        prog = get_program("CS")
        path = str(tmp_path / "d.knd")
        ArrayFile.create(
            path, ArraySchema(dims, "f8"),
            np.arange(256, dtype="f8").reshape(dims),
        ).close()
        direct = DebloatTest(prog, dims, mode="direct")
        audited = DebloatTest(prog, dims, mode="audited", data_path=path)
        for v in [(1, 1), (2, 3), (0, 1), (5, 1), (3, 3)]:
            assert np.array_equal(sorted(direct(v)), sorted(audited(v))), v

    def test_audited_agrees_on_chunked_file(self, tmp_path):
        dims = (16, 16)
        prog = get_program("CS")
        path = str(tmp_path / "c.knd")
        ArrayFile.create(
            path, ArraySchema(dims, "f8", chunks=(5, 5)),
            np.arange(256, dtype="f8").reshape(dims),
        ).close()
        direct = DebloatTest(prog, dims, mode="direct")
        audited = DebloatTest(prog, dims, mode="audited", data_path=path)
        for v in [(1, 2), (4, 4)]:
            assert np.array_equal(sorted(direct(v)), sorted(audited(v))), v
