"""Unit tests for the end-to-end Kondo pipeline."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile, KondoRuntime
from repro.core import Kondo
from repro.errors import DataMissingError, ProgramError
from repro.fuzzing import CarveConfig, FuzzConfig
from repro.metrics import accuracy
from repro.workloads import get_program


@pytest.fixture(scope="module")
def cs_result():
    prog = get_program("CS")
    kondo = Kondo(prog, (32, 32), fuzz_config=FuzzConfig(max_iter=600))
    return prog, kondo, kondo.analyze()


class TestAnalyze:
    def test_result_fields(self, cs_result):
        _, _, res = cs_result
        assert res.program == "CS"
        assert res.dims == (32, 32)
        assert res.fuzz.iterations > 0
        assert res.carve.n_hulls >= 1
        assert res.carved_flat.size > 0

    def test_high_recall_on_cs(self, cs_result):
        prog, _, res = cs_result
        acc = accuracy(prog.ground_truth_flat((32, 32)), res.carved_flat)
        assert acc.recall > 0.9
        assert acc.precision > 0.8

    def test_observed_subset_of_carved(self, cs_result):
        _, _, res = cs_result
        assert set(res.observed_flat.tolist()) <= set(res.carved_flat.tolist())

    def test_summary_readable(self, cs_result):
        _, _, res = cs_result
        text = res.summary()
        assert "CS" in text and "hulls" in text and "debloated" in text

    def test_unknown_carver_rejected(self):
        with pytest.raises(ProgramError):
            Kondo(get_program("CS"), (32, 32), carver="magic")

    def test_simple_carver_selectable(self):
        kondo = Kondo(
            get_program("LDC2D"), (64, 64),
            fuzz_config=FuzzConfig(max_iter=300), carver="simple",
        )
        res = kondo.analyze()
        assert res.carve.n_hulls <= 1

    def test_auto_scale_configs(self):
        prog = get_program("CS")
        k = Kondo(prog, (256, 256))
        # 256-wide parameter extents double the frame distances.
        assert k.fuzz_config.u_dist[0] > FuzzConfig().u_dist[0]
        assert k.carve_config.cell_size > CarveConfig().cell_size

    def test_auto_scale_off(self):
        k = Kondo(get_program("CS"), (256, 256), auto_scale=False)
        assert k.fuzz_config == FuzzConfig()

    def test_3d_iteration_scaling(self):
        k = Kondo(get_program("LDC3D"), (16, 16, 16))
        assert k.fuzz_config.max_iter == 2 * FuzzConfig().max_iter


class TestDebloatFile:
    def test_roundtrip_with_runtime(self, tmp_path, cs_result):
        prog, kondo, res = cs_result
        dims = (32, 32)
        data = np.arange(1024, dtype="f8").reshape(dims)
        src = str(tmp_path / "d.knd")
        out = str(tmp_path / "d.knds")
        ArrayFile.create(src, ArraySchema(dims, "f8"), data).close()
        subset = kondo.debloat_file(src, out, res)
        # The debloated file is smaller and serves the program's reads.
        with ArrayFile.open(src) as original:
            assert subset.file_nbytes < original.file_nbytes
        rt = KondoRuntime(subset)
        stats = rt.run_program(prog, (1, 2), dims)
        assert stats.reads > 0
        assert stats.misses == 0  # recall high enough for this valuation
        for idx in map(tuple, prog.access_indices((1, 2), dims)):
            assert subset.read_point(idx) == data[idx]
        subset.close()

    def test_dims_mismatch_rejected(self, tmp_path, cs_result):
        _, kondo, res = cs_result
        src = str(tmp_path / "wrong.knd")
        ArrayFile.create(src, ArraySchema((8, 8), "f8")).close()
        with pytest.raises(ProgramError):
            kondo.debloat_file(src, str(tmp_path / "w.knds"), res)

    def test_chunked_source(self, tmp_path, cs_result):
        prog, kondo, res = cs_result
        dims = (32, 32)
        data = np.arange(1024, dtype="f8").reshape(dims)
        src = str(tmp_path / "c.knd")
        ArrayFile.create(src, ArraySchema(dims, "f8", chunks=(8, 8)), data).close()
        subset = kondo.debloat_file(src, str(tmp_path / "c.knds"), res)
        for idx in map(tuple, prog.access_indices((2, 2), dims)):
            assert subset.read_point(idx) == data[idx]
        subset.close()

    def test_never_accessed_is_missing(self, tmp_path, cs_result):
        prog, kondo, res = cs_result
        dims = (32, 32)
        src = str(tmp_path / "m.knd")
        ArrayFile.create(src, ArraySchema(dims, "f8")).close()
        subset = kondo.debloat_file(src, str(tmp_path / "m.knds"), res)
        # (31, 0) is deep in the never-accessed upper triangle.
        with pytest.raises(DataMissingError):
            subset.read_point((31, 0))
        subset.close()
