"""Unit tests for multi-array Kondo analysis."""

import numpy as np
import pytest

from repro.arraymodel.layout import flatten_many
from repro.core.multifile import MultiArrayProgram, MultiKondo
from repro.errors import ProgramError
from repro.fuzzing import FuzzConfig
from repro.metrics import accuracy
from repro.workloads.multi import WeatherCoupled


@pytest.fixture(scope="module")
def analysis():
    program = WeatherCoupled((48, 48))
    mk = MultiKondo(program, fuzz_config=FuzzConfig(rng_seed=0))
    return program, mk.analyze()


class TestWeatherCoupledGroundTruth:
    def test_gt_matches_bruteforce_small(self):
        program = WeatherCoupled((24, 24))
        gt = program.ground_truth_multi()
        space = program.parameter_space()
        bitmaps = {
            n: np.zeros(int(np.prod(d)), dtype=bool)
            for n, d in program.arrays.items()
        }
        for v in space.grid():
            for n, idx in program.access_indices_multi(v).items():
                if idx.size:
                    bitmaps[n][flatten_many(idx, program.arrays[n])] = True
        for n in program.arrays:
            assert np.array_equal(np.flatnonzero(bitmaps[n]), gt[n]), n

    def test_terrain_never_accessed(self):
        program = WeatherCoupled((24, 24))
        assert program.ground_truth_multi()["terrain"].size == 0


class TestMultiKondo:
    def test_per_array_carves(self, analysis):
        program, result = analysis
        assert set(result.carves) == {"temperature", "pressure", "terrain"}
        gt = program.ground_truth_multi()
        for name in ("temperature", "pressure"):
            acc = accuracy(gt[name], result.carved_flat(name))
            assert acc.recall > 0.9, name
            assert acc.precision > 0.8, name

    def test_untouched_array_detected(self, analysis):
        _, result = analysis
        assert result.untouched_arrays == ["terrain"]
        assert result.carved_flat("terrain").size == 0

    def test_summary_mentions_drop(self, analysis):
        _, result = analysis
        assert "UNTOUCHED" in result.summary()

    def test_offsets_namespaced_disjointly(self, analysis):
        program, result = analysis
        n = int(np.prod(program.arrays["temperature"]))
        # Global fuzz offsets must stay within the 3-array namespace.
        assert result.fuzz.flat_indices.max() < 3 * n

    def test_program_without_arrays_rejected(self):
        class Empty(MultiArrayProgram):
            name = "empty"
            arrays = {}

        with pytest.raises(ProgramError):
            MultiKondo(Empty())

    def test_undeclared_array_access_rejected(self):
        class Rogue(MultiArrayProgram):
            name = "rogue"
            arrays = {"a": (8, 8)}

            def parameter_space(self):
                from repro.fuzzing import ParameterSpace

                return ParameterSpace.of((0, 7))

            def access_indices_multi(self, v):
                return {"ghost": np.array([[0, 0]])}

        mk = MultiKondo(Rogue(), fuzz_config=FuzzConfig(max_iter=5, stop_iter=5))
        with pytest.raises(ProgramError):
            mk.analyze()
