"""Unit tests for analysis artifact persistence."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.core import Kondo
from repro.core.persistence import AnalysisArtifact
from repro.errors import DataMissingError, KondoError
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program


@pytest.fixture(scope="module")
def analysis():
    program = get_program("CS")
    kondo = Kondo(program, (32, 32), fuzz_config=FuzzConfig(max_iter=500))
    return program, kondo.analyze()


class TestArtifactRoundtrip:
    def test_save_load(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        path = str(tmp_path / "a.npz")
        artifact.save(path)
        loaded = AnalysisArtifact.load(path)
        assert loaded.program == "CS"
        assert loaded.dims == (32, 32)
        assert np.array_equal(loaded.carved_flat, result.carved_flat)
        assert np.array_equal(loaded.observed_flat, result.observed_flat)
        assert loaded.iterations == result.fuzz.iterations
        assert loaded.stop_reason == result.fuzz.stop_reason
        assert loaded.n_hulls == result.carve.n_hulls

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(KondoError):
            AnalysisArtifact.load(str(path))

    def test_out_of_range_offsets_rejected(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        artifact.carved_flat = np.array([10**9])
        artifact.observed_flat = np.array([], dtype=np.int64)
        path = str(tmp_path / "bad.npz")
        artifact.save(path)
        with pytest.raises(KondoError):
            AnalysisArtifact.load(path)

    def test_observed_must_be_subset(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        artifact.observed_flat = np.array([0, 1, 2])
        artifact.carved_flat = np.array([5, 6])
        path = str(tmp_path / "sub.npz")
        artifact.save(path)
        with pytest.raises(KondoError):
            AnalysisArtifact.load(path)


class TestArtifactDebloat:
    def test_debloat_without_reanalysis(self, tmp_path, analysis):
        program, result = analysis
        artifact_path = str(tmp_path / "a.npz")
        AnalysisArtifact.from_result(result).save(artifact_path)

        data = np.arange(1024, dtype="f8").reshape(32, 32)
        src = str(tmp_path / "d.knd")
        ArrayFile.create(src, ArraySchema((32, 32), "f8"), data).close()

        artifact = AnalysisArtifact.load(artifact_path)
        subset = artifact.debloat_file(src, str(tmp_path / "d.knds"))
        # Serves the same subset the live pipeline would.
        for flat in result.carved_flat[::29]:
            idx = (int(flat) // 32, int(flat) % 32)
            assert subset.read_point(idx) == data[idx]
        with pytest.raises(DataMissingError):
            subset.read_point((31, 0))
        subset.close()

    def test_dims_mismatch(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        src = str(tmp_path / "w.knd")
        ArrayFile.create(src, ArraySchema((8, 8), "f8")).close()
        with pytest.raises(KondoError):
            artifact.debloat_file(src, str(tmp_path / "w.knds"))

    def test_chunk_granularity_via_artifact(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        src = str(tmp_path / "c.knd")
        ArrayFile.create(
            src, ArraySchema((32, 32), "f8", chunks=(8, 8)),
            np.zeros((32, 32)),
        ).close()
        subset = artifact.debloat_file(src, str(tmp_path / "c.knds"),
                                       granularity="chunk")
        assert subset.kept_nbytes % (64 * 8) == 0  # whole chunks only
        subset.close()

    def test_unknown_granularity(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        src = str(tmp_path / "g.knd")
        ArrayFile.create(src, ArraySchema((32, 32), "f8")).close()
        with pytest.raises(KondoError):
            artifact.debloat_file(src, str(tmp_path / "g.knds"),
                                  granularity="page")


class TestAtomicSave:
    def test_save_appends_npz_suffix_like_numpy(self, tmp_path, analysis):
        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        bare = str(tmp_path / "artifact")
        artifact.save(bare)
        loaded = AnalysisArtifact.load(bare + ".npz")
        assert np.array_equal(loaded.carved_flat, result.carved_flat)

    def test_save_replaces_prior_artifact_atomically(self, tmp_path,
                                                     analysis):
        import os

        _, result = analysis
        artifact = AnalysisArtifact.from_result(result)
        path = str(tmp_path / "a.npz")
        artifact.save(path)
        first_bytes = os.path.getsize(path)
        artifact.save(path)  # overwrite in place
        assert os.path.getsize(path) == first_bytes
        loaded = AnalysisArtifact.load(path)
        assert np.array_equal(loaded.carved_flat, result.carved_flat)
        # No temp files left next to the artifact.
        assert os.listdir(str(tmp_path)) == ["a.npz"]
