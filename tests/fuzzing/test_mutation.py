"""Unit tests for UNIFORM and GREEDY mutation operators."""

import numpy as np
import pytest

from repro.fuzzing import ParameterSpace
from repro.fuzzing.clusters import Cluster
from repro.fuzzing.mutation import greedy_mutations, uniform_mutations


@pytest.fixture
def space():
    return ParameterSpace.of((0, 127), (0, 127))


class TestUniform:
    def test_rep_count(self, space, rng):
        out = uniform_mutations((64, 64), space, (5, 15), 8, rng)
        assert len(out) == 8

    def test_children_within_space(self, space, rng):
        for child in uniform_mutations((0, 127), space, (30, 50), 20, rng):
            assert space.contains(child)

    def test_step_magnitudes_in_frame(self, space, rng):
        v = np.array([64.0, 64.0])
        for child in uniform_mutations(v, space, (5, 15), 50, rng):
            delta = np.abs(np.asarray(child) - v)
            # Rounding to integers can shift by at most 0.5 per dim.
            assert (delta >= 4.5).all()
            assert (delta <= 15.5).all()

    def test_integer_children(self, space, rng):
        for child in uniform_mutations((64, 64), space, (5, 15), 10, rng):
            assert all(float(x).is_integer() for x in child)

    def test_zero_reps(self, space, rng):
        assert uniform_mutations((64, 64), space, (5, 15), 0, rng) == []


class TestGreedy:
    def test_moves_toward_target(self, space, rng):
        v = np.array([20.0, 20.0])
        target = Cluster(center=np.array([100.0, 20.0]), useful=False)
        children = greedy_mutations(
            v, space, target, 80.0, (5, 15), 30, rng
        )
        # Children predominantly move in +x (toward the target center).
        xs = np.array([c[0] for c in children])
        assert (xs > 20).mean() > 0.9

    def test_never_overshoots_target(self, space, rng):
        v = np.array([20.0, 20.0])
        target = Cluster(center=np.array([30.0, 20.0]), useful=False)
        for child in greedy_mutations(v, space, target, 10.0, (5, 15), 40, rng):
            # Magnitude along the direction is capped by the distance, so
            # children never land far beyond the target center (jitter of
            # up to dist_lo per dim remains).
            assert child[0] <= 30.0 + 5.0 + 0.5

    def test_frame_scales_with_distance(self, space, rng):
        v = np.array([0.0, 0.0])
        near_t = Cluster(center=np.array([6.0, 0.0]), useful=False)
        far_t = Cluster(center=np.array([120.0, 0.0]), useful=False)
        near_steps = [
            abs(c[0]) for c in
            greedy_mutations(v, space, near_t, 6.0, (5, 15), 40, rng)
        ]
        far_steps = [
            abs(c[0]) for c in
            greedy_mutations(v, space, far_t, 120.0, (5, 15), 40, rng)
        ]
        assert np.mean(far_steps) > np.mean(near_steps)

    def test_on_center_falls_back_to_uniform(self, space, rng):
        v = np.array([50.0, 50.0])
        target = Cluster(center=np.array([50.0, 50.0]), useful=False)
        children = greedy_mutations(v, space, target, 0.0, (5, 15), 10, rng)
        assert len(children) == 10
        for child in children:
            assert space.contains(child)

    def test_children_within_space(self, space, rng):
        v = np.array([126.0, 1.0])
        target = Cluster(center=np.array([0.0, 127.0]), useful=False)
        for child in greedy_mutations(v, space, target, 178.0, (30, 50), 20, rng):
            assert space.contains(child)
