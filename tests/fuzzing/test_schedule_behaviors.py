"""Behavioral tests for schedule internals: restarts, exhaustion, clusters."""

import numpy as np
import pytest

from repro.fuzzing import FuzzConfig, FuzzSchedule, ParameterSpace


def always_empty(v):
    return np.empty(0, dtype=np.int64)


def always_one(v):
    return np.array([0], dtype=np.int64)


class TestRandomRestart:
    def test_restart_clears_queue(self):
        space = ParameterSpace.of((0, 200), (0, 200))
        sched = FuzzSchedule(always_one, space, FuzzConfig(rng_seed=0), 10)
        sched.queue.extend([(1.0, 1.0), (2.0, 2.0)])
        sched.random_restart()
        assert len(sched.queue) == sched.config.n_initial
        assert (1.0, 1.0) not in sched.queue

    def test_restart_avoids_seen(self):
        space = ParameterSpace.of((0, 3))  # only 4 valuations
        sched = FuzzSchedule(always_one, space, FuzzConfig(rng_seed=0,
                                                           n_initial=4), 10)
        sched.seen.update({(0.0,), (1.0,), (2.0,)})
        sched.random_restart()
        # Sampling avoids the seen ones first, then accepts repeats.
        assert len(sched.queue) == 4

    def test_restarts_disabled(self):
        space = ParameterSpace.of((0, 500), (0, 500))
        cfg = FuzzConfig(rng_seed=1, max_iter=300, stop_iter=300,
                         enable_restart=False, restart=10)
        sched = FuzzSchedule(always_one, space, cfg, 10)
        result = sched.run()
        # Without restarts the queue only refills when empty; the run
        # still completes and evaluates every iteration.
        assert result.iterations == 300

    def test_tiny_space_exhaustion_does_not_hang(self):
        space = ParameterSpace.of((0, 1))  # two valuations
        cfg = FuzzConfig(rng_seed=0, max_iter=50, stop_iter=50)
        result = FuzzSchedule(always_empty, space, cfg, 10).run()
        assert result.iterations == 50  # repeats allowed rather than stall
        assert result.n_offsets == 0


class TestClusterFormation:
    def test_useful_and_nonuseful_clusters_populate(self):
        space = ParameterSpace.of((0, 63), (0, 63))

        def half(v):
            if v[0] < 32:
                return np.array([int(v[0])], dtype=np.int64)
            return np.empty(0, dtype=np.int64)

        cfg = FuzzConfig(rng_seed=3, max_iter=300, stop_iter=300)
        sched = FuzzSchedule(half, space, cfg, 64)
        sched.run()
        assert len(sched.cl_u) > 0
        assert len(sched.cl_n) > 0
        # Useful cluster centers live on the useful side.
        for cluster in sched.cl_u.clusters:
            assert cluster.center[0] < 40  # mean drift stays left

    def test_mutate_uses_opposite_cluster_when_greedy(self):
        space = ParameterSpace.of((0, 63), (0, 63))
        cfg = FuzzConfig(rng_seed=0, eps=0.0)  # always greedy when possible
        sched = FuzzSchedule(always_one, space, cfg, 10)
        from repro.fuzzing.parameters import Seed

        seed = Seed(v=(10.0, 10.0))
        seed.useful = True
        # No opposite (non-useful) clusters yet: falls back to uniform.
        children = sched.mutate(seed)
        assert len(children) == cfg.u_reps
        # Add a non-useful cluster far to the right; greedy walks toward it.
        sched.cl_n.add((60.0, 10.0))
        children = sched.mutate(seed)
        assert np.mean([c[0] for c in children]) > 10.0


class TestStoppingPriorities:
    def test_max_iter_beats_stagnation_order(self):
        space = ParameterSpace.of((0, 500), (0, 500))
        cfg = FuzzConfig(rng_seed=0, max_iter=20, stop_iter=5)
        result = FuzzSchedule(always_empty, space, cfg, 10).run()
        # Stagnation (5) fires before max_iter (20).
        assert result.stop_reason == "stagnation"
        assert result.iterations <= 10

    def test_useful_seed_resets_stagnation(self):
        space = ParameterSpace.of((0, 500))
        calls = {"n": 0}

        def drip(v):
            calls["n"] += 1
            if calls["n"] % 4 == 0:  # a new offset every 4th run
                return np.array([calls["n"]], dtype=np.int64)
            return np.empty(0, dtype=np.int64)

        cfg = FuzzConfig(rng_seed=0, max_iter=40, stop_iter=6)
        result = FuzzSchedule(drip, space, cfg, 1000).run()
        assert result.stop_reason == "max_iter"
