"""Unit tests for the hybrid (future-work) schedule."""

import numpy as np
import pytest

from repro.core import DebloatTest
from repro.errors import FuzzConfigError
from repro.fuzzing import FuzzConfig
from repro.fuzzing.hybrid import HybridSchedule
from repro.workloads import get_program


def make(program="CS", dims=(32, 32), consult=("random", "afl"),
         residual=0.25, max_iter=200):
    prog = get_program(program)
    test = DebloatTest(prog, dims)
    return prog, HybridSchedule(
        test, prog.parameter_space(dims),
        FuzzConfig(max_iter=max_iter, stop_iter=max_iter, rng_seed=0),
        test.n_flat, consult=consult, residual_fraction=residual,
    )


class TestHybridSchedule:
    def test_unknown_consultant_rejected(self):
        with pytest.raises(FuzzConfigError):
            make(consult=("magic",))

    def test_negative_residual_rejected(self):
        with pytest.raises(FuzzConfigError):
            make(residual=-0.1)

    def test_union_superset_of_primary(self):
        _, hybrid = make()
        result = hybrid.run()
        primary = set(result.primary.flat_indices.tolist())
        union = set(result.flat_indices.tolist())
        assert primary <= union
        assert result.stage_new_offsets["kondo"] == len(primary)

    def test_stage_accounting_sums(self):
        _, hybrid = make()
        result = hybrid.run()
        assert sum(result.stage_new_offsets.values()) == result.flat_indices.size
        assert result.extra_offsets == (
            result.flat_indices.size - result.primary.flat_indices.size
        )

    def test_offsets_remain_sound(self):
        prog, hybrid = make(program="CS", dims=(32, 32))
        result = hybrid.run()
        gt = set(prog.ground_truth_flat((32, 32)).tolist())
        assert set(result.flat_indices.tolist()) <= gt

    def test_zero_residual_is_pure_kondo(self):
        _, hybrid = make(residual=0.0)
        result = hybrid.run()
        assert result.extra_offsets == 0
        assert np.array_equal(result.flat_indices, result.primary.flat_indices)

    def test_random_only_consultation(self):
        _, hybrid = make(consult=("random",), residual=1.0)
        result = hybrid.run()
        assert set(result.stage_new_offsets) == {"kondo", "random"}

    def test_consultation_never_reduces_recall(self):
        """The whole point: consulting can only add offsets."""
        prog, hybrid = make(program="CS3", dims=(64, 64), max_iter=400,
                            residual=0.5)
        result = hybrid.run()
        assert result.flat_indices.size >= result.primary.flat_indices.size
