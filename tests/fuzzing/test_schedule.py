"""Unit tests for the fuzz schedule (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import FuzzConfigError
from repro.fuzzing import FuzzConfig, FuzzSchedule, ParameterSpace, run_fuzz_schedule


def square_test(v):
    """A toy debloat test: valid iff both params <= 31; accesses one offset
    per valid parameter value (flat offset space 64x64)."""
    x, y = int(v[0]), int(v[1])
    if 0 <= x <= 31 and 0 <= y <= 31:
        return np.array([x * 64 + y], dtype=np.int64)
    return np.empty(0, dtype=np.int64)


@pytest.fixture
def space():
    return ParameterSpace.of((0, 63), (0, 63))


class TestScheduleMechanics:
    def test_runs_to_max_iter(self, space):
        cfg = FuzzConfig(max_iter=50, stop_iter=500, rng_seed=1)
        result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        assert result.iterations == 50
        assert result.stop_reason == "max_iter"

    def test_stagnation_stop(self, space):
        def dead_test(v):
            return np.empty(0, dtype=np.int64)

        cfg = FuzzConfig(max_iter=10_000, stop_iter=30, rng_seed=1)
        result = run_fuzz_schedule(dead_test, space, cfg, 64 * 64)
        assert result.stop_reason == "stagnation"
        assert result.iterations <= 40
        assert result.n_offsets == 0

    def test_time_budget_stop(self, space):
        import time

        def slow_test(v):
            time.sleep(0.002)
            return square_test(v)

        cfg = FuzzConfig(max_iter=10_000, stop_iter=10_000, rng_seed=1)
        result = run_fuzz_schedule(
            slow_test, space, cfg, 64 * 64, time_budget_s=0.05
        )
        assert result.stop_reason == "time_budget"
        assert result.elapsed_seconds < 1.0

    def test_bad_n_flat(self, space):
        with pytest.raises(FuzzConfigError):
            FuzzSchedule(square_test, space, FuzzConfig(), 0)

    def test_discovery_trace_monotone(self, space):
        cfg = FuzzConfig(max_iter=200, rng_seed=0)
        result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        counts = [n for _, _, n in result.discovery_trace]
        assert counts == sorted(counts)
        assert counts[-1] == result.n_offsets

    def test_seeds_recorded_with_outcomes(self, space):
        cfg = FuzzConfig(max_iter=100, rng_seed=0)
        result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        assert len(result.seeds) == result.iterations
        assert all(s.evaluated for s in result.seeds)
        assert result.n_useful + result.n_nonuseful == result.iterations
        assert result.n_useful > 0
        assert result.n_nonuseful > 0

    def test_offsets_are_sound(self, space):
        """Every reported offset must come from a genuinely valid run."""
        cfg = FuzzConfig(max_iter=300, rng_seed=2)
        result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        for flat in result.flat_indices:
            x, y = divmod(int(flat), 64)
            assert 0 <= x <= 31 and 0 <= y <= 31

    def test_deterministic_given_seed(self, space):
        cfg = FuzzConfig(max_iter=150, rng_seed=7)
        r1 = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        r2 = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        assert np.array_equal(r1.flat_indices, r2.flat_indices)
        assert [s.v for s in r1.seeds] == [s.v for s in r2.seeds]

    def test_different_seeds_differ(self, space):
        r1 = run_fuzz_schedule(
            square_test, space, FuzzConfig(max_iter=100, rng_seed=0), 64 * 64
        )
        r2 = run_fuzz_schedule(
            square_test, space, FuzzConfig(max_iter=100, rng_seed=1), 64 * 64
        )
        assert [s.v for s in r1.seeds] != [s.v for s in r2.seeds]

    def test_eps_decays(self, space):
        cfg = FuzzConfig(max_iter=1000, decay_iter=100, decay=0.5, rng_seed=0)
        result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
        assert result.final_eps == pytest.approx(0.5 ** 10)

    def test_no_duplicate_evaluations_from_queue(self, space):
        cfg = FuzzConfig(max_iter=300, rng_seed=3)
        schedule = FuzzSchedule(square_test, space, cfg, 64 * 64)
        result = schedule.run()
        # Mutation-enqueued children are deduplicated; only random-restart
        # seeds may repeat (when Theta is nearly exhausted).
        values = [s.v for s in result.seeds]
        assert len(set(values)) >= len(values) * 0.95


class TestScheduleEffectiveness:
    def test_boundary_ee_beats_plain_ee_near_boundary(self, space):
        """Boundary-based EE concentrates evaluations near the subset
        boundary compared to plain exploit-and-explore."""

        def boundary_density(plain):
            cfg = FuzzConfig(
                max_iter=1500, stop_iter=5000, rng_seed=4, plain_ee=plain,
                decay_iter=50, decay=0.8,
            )
            result = run_fuzz_schedule(square_test, space, cfg, 64 * 64)
            near = sum(
                1 for s in result.seeds
                if abs(s.v[0] - 31.5) < 8 or abs(s.v[1] - 31.5) < 8
            )
            return near / len(result.seeds)

        assert boundary_density(plain=False) > boundary_density(plain=True)

    def test_coverage_grows_with_iterations(self, space):
        small = run_fuzz_schedule(
            square_test, space, FuzzConfig(max_iter=50, rng_seed=0), 64 * 64
        )
        large = run_fuzz_schedule(
            square_test, space, FuzzConfig(max_iter=1000, rng_seed=0), 64 * 64
        )
        assert large.n_offsets > small.n_offsets
