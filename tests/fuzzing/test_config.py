"""Unit tests for fuzz/carve configuration validation."""

import pytest

from repro.errors import FuzzConfigError
from repro.fuzzing import (
    PAPER_CARVE_CONFIG,
    PAPER_FUZZ_CONFIG,
    CarveConfig,
    FuzzConfig,
)


class TestPaperDefaults:
    def test_section_vb_values(self):
        c = PAPER_FUZZ_CONFIG
        assert c.u_reps == 8
        assert c.n_reps == 5
        assert c.max_iter == 2000
        assert c.stop_iter == 500
        assert c.u_dist == (5.0, 15.0)
        assert c.n_dist == (30.0, 50.0)
        assert c.eps == 1.0
        assert c.decay == 0.97
        assert c.decay_iter == 200

    def test_carve_defaults(self):
        c = PAPER_CARVE_CONFIG
        assert c.center_d_thresh == 20.0
        assert c.bound_d_thresh == 10.0
        assert c.close_mode == "or"


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("max_iter", 0),
        ("stop_iter", -1),
        ("n_initial", 0),
        ("u_reps", -1),
        ("diameter", 0),
        ("restart", 0),
        ("decay_iter", 0),
        ("decay", 0.0),
        ("decay", 1.5),
        ("eps", -0.1),
        ("eps", 1.1),
        ("u_dist", (5, 2)),
        ("n_dist", (-1, 2)),
    ])
    def test_bad_fuzz_values(self, field, value):
        with pytest.raises(FuzzConfigError):
            FuzzConfig(**{field: value})

    @pytest.mark.parametrize("field,value", [
        ("cell_size", 0),
        ("center_d_thresh", -1),
        ("bound_d_thresh", -1),
        ("close_mode", "xor"),
        ("raster_tol", -0.5),
    ])
    def test_bad_carve_values(self, field, value):
        with pytest.raises(FuzzConfigError):
            CarveConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            FuzzConfig().max_iter = 5


class TestScaling:
    def test_fuzz_scaled_to_doubles(self):
        c = FuzzConfig().scaled_to(256.0)
        assert c.u_dist == (10.0, 30.0)
        assert c.n_dist == (60.0, 100.0)
        assert c.diameter == 40.0
        # Iteration counts and decay are not distance-like; unchanged.
        assert c.max_iter == 2000

    def test_carve_scaled_to(self):
        c = CarveConfig().scaled_to(64.0)
        assert c.cell_size == 8.0
        assert c.center_d_thresh == 10.0
        assert c.bound_d_thresh == 5.0
        assert c.raster_tol == 0.5  # lattice unit, not distance-scaled

    def test_scale_identity(self):
        assert FuzzConfig().scaled_to(128.0) == FuzzConfig()

    def test_bad_extent(self):
        with pytest.raises(FuzzConfigError):
            FuzzConfig().scaled_to(0.0)
