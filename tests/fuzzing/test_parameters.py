"""Unit tests for parameter ranges, spaces, and seeds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FuzzConfigError, ProgramError
from repro.fuzzing import ParameterRange, ParameterSpace, Seed


class TestParameterRange:
    def test_inverted_rejected(self):
        with pytest.raises(FuzzConfigError):
            ParameterRange(5, 1)

    def test_cardinality_integer(self):
        assert ParameterRange(0, 9).cardinality == 10
        assert ParameterRange(3, 3).cardinality == 1

    def test_cardinality_real_rejected(self):
        with pytest.raises(FuzzConfigError):
            _ = ParameterRange(0.0, 1.0, integer=False).cardinality

    def test_clip(self):
        r = ParameterRange(0, 10)
        assert r.clip(-5) == 0.0
        assert r.clip(15) == 10.0
        assert r.clip(5.4) == 5.0  # integer rounding

    def test_clip_real(self):
        r = ParameterRange(0.0, 10.0, integer=False)
        assert r.clip(5.4) == 5.4

    def test_contains(self):
        r = ParameterRange(0, 10)
        assert r.contains(5)
        assert not r.contains(5.5)  # non-integer in integer range
        assert not r.contains(11)

    def test_sample_in_range(self, rng):
        r = ParameterRange(3, 7)
        for _ in range(50):
            x = r.sample(rng)
            assert 3 <= x <= 7
            assert float(x).is_integer()


class TestParameterSpace:
    def test_of_shorthand(self):
        s = ParameterSpace.of((0, 30), (0, 50))
        assert s.ndim == 2
        assert s.cardinality == 31 * 51

    def test_empty_rejected(self):
        with pytest.raises(FuzzConfigError):
            ParameterSpace(())

    def test_contains(self):
        s = ParameterSpace.of((0, 10), (0, 10))
        assert s.contains((5, 5))
        assert not s.contains((5,))
        assert not s.contains((11, 5))

    def test_clip_rank_mismatch(self):
        with pytest.raises(ProgramError):
            ParameterSpace.of((0, 10)).clip((1, 2))

    def test_grid_full_enumeration(self):
        s = ParameterSpace.of((0, 2), (0, 1))
        assert list(s.grid()) == [
            (0.0, 0.0), (0.0, 1.0), (1.0, 0.0),
            (1.0, 1.0), (2.0, 0.0), (2.0, 1.0),
        ]

    def test_grid_max_points(self):
        s = ParameterSpace.of((0, 100), (0, 100))
        assert len(list(s.grid(max_points=7))) == 7

    def test_grid_matches_cardinality(self):
        s = ParameterSpace.of((2, 5), (0, 3), (1, 2))
        assert len(list(s.grid())) == s.cardinality

    def test_max_extent(self):
        s = ParameterSpace.of((0, 10), (0, 100))
        assert s.max_extent == 100

    @given(st.integers(0, 2 ** 31))
    @settings(max_examples=30)
    def test_samples_always_contained(self, seed):
        rng = np.random.default_rng(seed)
        s = ParameterSpace.of((0, 30), (-5, 5), (100, 200))
        for _ in range(10):
            assert s.contains(s.sample(rng))

    def test_sample_many(self, rng):
        s = ParameterSpace.of((0, 10))
        assert len(s.sample_many(rng, 7)) == 7


class TestSeed:
    def test_lifecycle(self):
        seed = Seed(v=(1.0, 2.0))
        assert not seed.evaluated
        seed.useful = True
        assert seed.evaluated
        assert seed.key() == (1.0, 2.0)
