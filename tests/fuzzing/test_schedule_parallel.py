"""The batched executor path must be seed-for-seed identical to serial.

Algorithm 1 stays a serial state machine; only the debloat-test calls are
prefetched onto the pool.  Every observable of the campaign — the seed
sequence, usefulness labels, discovered offsets, iteration count, stop
reason, epsilon — must match the ``executor=None`` run exactly.
"""

import numpy as np
import pytest

from repro.fuzzing import FuzzConfig
from repro.fuzzing.schedule import FuzzSchedule
from repro.perf import PerfConfig, make_executor
from repro.workloads import get_program


def _campaign(program_name, dims, config, executor=None):
    program = get_program(program_name)
    space = program.parameter_space(dims)
    n_flat = int(np.prod(dims))

    def test(v):
        from repro.arraymodel.layout import flatten_many

        idx = program.access_indices(v, dims)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        return flatten_many(idx, dims)

    schedule = FuzzSchedule(test, space, config, n_flat)
    return schedule.run(executor=executor)


def _assert_same_campaign(a, b):
    assert np.array_equal(a.flat_indices, b.flat_indices)
    assert a.iterations == b.iterations
    assert a.stop_reason == b.stop_reason
    assert a.final_eps == b.final_eps
    assert [s.v for s in a.seeds] == [s.v for s in b.seeds]
    assert [s.useful for s in a.seeds] == [s.useful for s in b.seeds]
    assert [s.n_new_offsets for s in a.seeds] == \
        [s.n_new_offsets for s in b.seeds]
    # Trace timestamps differ; iteration/offset columns must not.
    assert [(t[0], t[2]) for t in a.discovery_trace] == \
        [(t[0], t[2]) for t in b.discovery_trace]


@pytest.mark.parametrize("program,dims",
                         [("CS", (48, 48)), ("PRL2D", (48, 48))])
def test_parallel_equals_serial(program, dims):
    config = FuzzConfig(max_iter=400, stop_iter=200, rng_seed=13)
    serial = _campaign(program, dims, config)
    with make_executor(PerfConfig(workers=3, batch_size=16)) as ex:
        batched = _campaign(program, dims, config, executor=ex)
    _assert_same_campaign(serial, batched)


def test_batches_respect_restart_boundaries():
    """With restart=7 a batch may never span a restart, so prefetched
    results always align with the queue — the assert inside run() would
    fire otherwise.  Output equality is checked too."""
    config = FuzzConfig(max_iter=200, stop_iter=200, restart=7, rng_seed=5)
    serial = _campaign("CS", (32, 32), config)
    with make_executor(PerfConfig(workers=2, batch_size=64)) as ex:
        batched = _campaign("CS", (32, 32), config, executor=ex)
    _assert_same_campaign(serial, batched)


def test_restarts_disabled_allows_full_batches():
    config = FuzzConfig(max_iter=150, stop_iter=150, enable_restart=False,
                        rng_seed=2)
    serial = _campaign("CS", (32, 32), config)
    with make_executor(PerfConfig(workers=2, batch_size=32)) as ex:
        batched = _campaign("CS", (32, 32), config, executor=ex)
    _assert_same_campaign(serial, batched)


def test_serial_executor_is_a_noop_wrapper():
    config = FuzzConfig(max_iter=100, stop_iter=100, rng_seed=1)
    plain = _campaign("CS", (32, 32), config)
    with make_executor(PerfConfig(workers=0)) as ex:
        wrapped = _campaign("CS", (32, 32), config, executor=ex)
    _assert_same_campaign(plain, wrapped)
