"""Unit tests for useful/non-useful seed clusters (ADD_TO_CLUSTER)."""

import numpy as np
import pytest

from repro.fuzzing import Cluster, ClusterSet


class TestCluster:
    def test_running_mean_center(self):
        c = Cluster(center=np.array([0.0, 0.0]))
        c.add(np.array([2.0, 0.0]))
        assert np.allclose(c.center, [1.0, 0.0])
        c.add(np.array([4.0, 3.0]))
        assert np.allclose(c.center, [2.0, 1.0])
        assert c.size == 3


class TestClusterSet:
    def test_first_value_founds_cluster(self):
        cs = ClusterSet(diameter=5.0, useful=True)
        cs.add((0.0, 0.0))
        assert len(cs) == 1

    def test_nearby_value_joins(self):
        cs = ClusterSet(diameter=5.0, useful=True)
        cs.add((0.0, 0.0))
        cs.add((3.0, 0.0))
        assert len(cs) == 1
        assert cs.clusters[0].size == 2
        assert np.allclose(cs.clusters[0].center, [1.5, 0.0])

    def test_distant_value_founds_new_cluster(self):
        """ADD_TO_CLUSTER: distance above the diameter -> new center."""
        cs = ClusterSet(diameter=5.0, useful=False)
        cs.add((0.0, 0.0))
        cs.add((10.0, 0.0))
        assert len(cs) == 2

    def test_boundary_distance_joins(self):
        cs = ClusterSet(diameter=5.0, useful=True)
        cs.add((0.0, 0.0))
        cs.add((5.0, 0.0))  # exactly the diameter: joins
        assert len(cs) == 1

    def test_nearest(self):
        cs = ClusterSet(diameter=2.0, useful=True)
        cs.add((0.0, 0.0))
        cs.add((10.0, 0.0))
        cluster, dist = cs.nearest((8.0, 0.0))
        assert np.allclose(cluster.center, [10.0, 0.0])
        assert dist == pytest.approx(2.0)

    def test_nearest_empty(self):
        assert ClusterSet(diameter=1.0, useful=True).nearest((0.0,)) is None

    def test_reset(self):
        cs = ClusterSet(diameter=1.0, useful=True)
        cs.add((0.0, 0.0))
        cs.reset()
        assert len(cs) == 0

    def test_center_drifts_toward_mass(self):
        cs = ClusterSet(diameter=10.0, useful=True)
        cs.add((0.0, 0.0))
        for _ in range(99):
            cs.add((8.0, 0.0))
        assert len(cs) == 1
        assert cs.clusters[0].center[0] == pytest.approx(7.92)
