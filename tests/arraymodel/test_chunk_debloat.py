"""Unit tests for chunk-granular debloating (Section VI)."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, ChunkedLayout
from repro.arraymodel.chunk_debloat import (
    chunk_granularity_report,
    chunk_keep_extents,
    chunks_for_flat_indices,
)
from repro.core import Kondo
from repro.errors import ProgramError, SchemaError
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program


def layout_16():
    return ChunkedLayout(ArraySchema((16, 16), "f8", chunks=(4, 4)))


class TestChunksForIndices:
    def test_single_element_single_chunk(self):
        lay = layout_16()
        chunks = chunks_for_flat_indices(lay, np.array([0]), (16, 16))
        assert chunks.tolist() == [0]

    def test_elements_spanning_chunks(self):
        lay = layout_16()
        # (0,0) -> chunk 0; (0,4) -> chunk 1; (4,0) -> chunk 4 (grid 4x4).
        flats = np.array([0, 4, 4 * 16])
        assert chunks_for_flat_indices(lay, flats, (16, 16)).tolist() == [0, 1, 4]

    def test_duplicates_deduped(self):
        lay = layout_16()
        chunks = chunks_for_flat_indices(lay, np.array([0, 1, 2, 17]), (16, 16))
        assert chunks.tolist() == [0]

    def test_empty(self):
        assert chunks_for_flat_indices(layout_16(), np.array([]), (16, 16)).size == 0

    def test_dims_mismatch(self):
        with pytest.raises(SchemaError):
            chunks_for_flat_indices(layout_16(), np.array([0]), (8, 8))


class TestKeepExtents:
    def test_adjacent_chunks_merge(self):
        lay = layout_16()
        extents = chunk_keep_extents(lay, np.array([0, 1, 3]))
        chunk_bytes = 16 * 8
        assert extents == [(0, 2 * chunk_bytes), (3 * chunk_bytes, chunk_bytes)]

    def test_report_inflation(self):
        lay = layout_16()
        report = chunk_granularity_report(lay, np.array([0]), (16, 16))
        assert report.n_elements_carved == 1
        assert report.n_chunks_kept == 1
        assert report.element_nbytes == 8
        assert report.chunk_nbytes == 16 * 8
        assert report.inflation == 16.0
        assert report.chunk_fraction_kept == pytest.approx(1 / 16)


class TestPipelineChunkGranularity:
    @pytest.fixture
    def analysis(self, tmp_path):
        dims = (32, 32)
        program = get_program("CS")
        src = str(tmp_path / "c.knd")
        data = np.arange(1024, dtype="f8").reshape(dims)
        ArrayFile.create(
            src, ArraySchema(dims, "f8", chunks=(8, 8)), data
        ).close()
        kondo = Kondo(program, dims, fuzz_config=FuzzConfig(max_iter=600))
        return kondo, kondo.analyze(), src, data

    def test_chunk_subset_superset_of_element_subset(self, tmp_path, analysis):
        kondo, result, src, data = analysis
        elem = kondo.debloat_file(src, str(tmp_path / "e.knds"), result,
                                  granularity="element")
        chunk = kondo.debloat_file(src, str(tmp_path / "c.knds"), result,
                                   granularity="chunk")
        # Whole chunks are a superset: strictly more bytes kept ...
        assert chunk.kept_nbytes >= elem.kept_nbytes
        # ... and every element readable at element granularity is readable
        # at chunk granularity too, with identical values.
        from repro.arraymodel.layout import unflatten_many

        for flat in result.carved_flat[::17]:
            idx = tuple(unflatten_many(np.array([flat]), (32, 32))[0])
            assert chunk.read_point(idx) == elem.read_point(idx) == data[idx]
        elem.close()
        chunk.close()

    def test_chunk_granularity_requires_chunked_file(self, tmp_path, analysis):
        kondo, result, _src, _ = analysis
        flat_src = str(tmp_path / "flat.knd")
        ArrayFile.create(flat_src, ArraySchema((32, 32), "f8")).close()
        with pytest.raises(ProgramError):
            kondo.debloat_file(flat_src, str(tmp_path / "f.knds"), result,
                               granularity="chunk")

    def test_unknown_granularity(self, tmp_path, analysis):
        kondo, result, src, _ = analysis
        with pytest.raises(ProgramError):
            kondo.debloat_file(src, str(tmp_path / "x.knds"), result,
                               granularity="page")
