"""Unit tests for KNB multi-array bundles."""

import numpy as np
import pytest

from repro.arraymodel import ArraySchema
from repro.arraymodel.bundle import BundleFile, member_path
from repro.audit import AuditSession
from repro.errors import FileFormatError, LayoutError


@pytest.fixture
def bundle(tmp_path):
    temp = np.arange(64, dtype="f8").reshape(8, 8)
    pres = np.arange(64, 128, dtype="f8").reshape(8, 8)
    b = BundleFile.create(
        str(tmp_path / "w.knb"),
        {
            "temperature": (ArraySchema((8, 8), "f8"), temp),
            "pressure": (ArraySchema((8, 8), "f8"), pres),
            "terrain": (ArraySchema((4, 4), "f4"), None),
        },
    )
    yield b
    b.close()


class TestBundle:
    def test_member_names(self, bundle):
        assert bundle.member_names() == ["pressure", "temperature", "terrain"]

    def test_member_values(self, bundle):
        assert bundle.member("temperature").read_point((0, 0)) == 0.0
        assert bundle.member("temperature").read_point((7, 7)) == 63.0
        assert bundle.member("pressure").read_point((0, 0)) == 64.0
        assert bundle.member("terrain").read_point((3, 3)) == 0.0

    def test_unknown_member(self, bundle):
        with pytest.raises(FileFormatError):
            bundle.member("wind")

    def test_member_nbytes(self, bundle):
        assert bundle.member_nbytes("temperature") == 64 * 8
        assert bundle.member_nbytes("terrain") == 16 * 4

    def test_read_extent_bounds(self, bundle):
        m = bundle.member("temperature")
        assert len(m.read_extent(0, 16)) == 16
        with pytest.raises(LayoutError):
            m.read_extent(0, 10_000)

    def test_empty_bundle_rejected(self, tmp_path):
        with pytest.raises(FileFormatError):
            BundleFile.create(str(tmp_path / "e.knb"), {})

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(FileFormatError):
            BundleFile.create(
                str(tmp_path / "s.knb"),
                {"x": (ArraySchema((4, 4), "f8"), np.zeros((3, 3)))},
            )

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.knb"
        p.write_bytes(b"XXXX" + b"\x00" * 64)
        with pytest.raises(FileFormatError):
            BundleFile.open(str(p))

    def test_truncated_payload(self, tmp_path, bundle):
        raw = open(bundle.path, "rb").read()
        p = tmp_path / "trunc.knb"
        p.write_bytes(raw[:-32])
        with pytest.raises(FileFormatError):
            BundleFile.open(str(p))

    def test_closed_rejects(self, tmp_path):
        b = BundleFile.create(
            str(tmp_path / "c.knb"),
            {"x": (ArraySchema((2, 2), "f8"), np.zeros((2, 2)))},
        )
        m = b.member("x")
        b.close()
        with pytest.raises(FileFormatError):
            m.read_point((0, 0))

    def test_chunked_member(self, tmp_path):
        data = np.arange(100, dtype="f8").reshape(10, 10)
        b = BundleFile.create(
            str(tmp_path / "ch.knb"),
            {"x": (ArraySchema((10, 10), "f8", chunks=(4, 4)), data)},
        )
        for idx in [(0, 0), (9, 9), (4, 7)]:
            assert b.member("x").read_point(idx) == data[idx]
        b.close()

    def test_f16_member(self, tmp_path):
        data = np.arange(16).reshape(4, 4)
        b = BundleFile.create(
            str(tmp_path / "ld.knb"),
            {"x": (ArraySchema((4, 4), "f16"), data)},
        )
        assert b.member("x").read_point((3, 2)) == 14.0
        b.close()


class TestBundleAudit:
    def test_per_member_lineage(self, tmp_path):
        temp = np.zeros((8, 8))
        b = BundleFile.create(
            str(tmp_path / "a.knb"),
            {
                "used": (ArraySchema((8, 8), "f8"), temp),
                "unused": (ArraySchema((8, 8), "f8"), temp),
            },
        )
        b.close()
        session = AuditSession()
        b = BundleFile.open(str(tmp_path / "a.knb"), recorder=session.record)
        b.member("used").read_point((2, 3))
        b.member("used").read_point((2, 4))
        used_path = member_path(b.path, "used")
        unused_path = member_path(b.path, "unused")
        # Offsets are member-relative, so lineage is per member.
        assert session.accessed_ranges(used_path) == [(19 * 8, 21 * 8)]
        assert session.accessed_ranges(unused_path) == []
        idx = session.accessed_indices(used_path, b.member("used").layout)
        assert idx.tolist() == [[2, 3], [2, 4]]
        b.close()
