"""KND/KNDS integrity: CRC checksums catch corruption as FileFormatError.

Every corruption — truncation, bad magic, flipped header bytes, flipped
payload bytes — must surface as :class:`FileFormatError` at open time,
never as ``struct.error``/``IndexError``/``UnicodeDecodeError`` leaking
from the parser, and never as silently-garbage floats at read time.
Version-1 files (headers without checksum fields) must stay readable.
"""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.arraymodel.datafile import FORMAT_VERSION, meta_crc32
from repro.errors import FileFormatError
from repro.resilience.faults import corrupt_file

DIMS = (6, 6)


@pytest.fixture
def knd(tmp_path):
    data = np.arange(36, dtype="f8").reshape(DIMS)
    path = str(tmp_path / "f.knd")
    ArrayFile.create(path, ArraySchema(DIMS, "f8"), data).close()
    return path


@pytest.fixture
def knds(tmp_path, knd):
    path = str(tmp_path / "f.knds")
    with ArrayFile.open(knd) as source:
        DebloatedArrayFile.create(
            path, source, keep_flat_indices=np.arange(12, dtype=np.int64)
        ).close()
    return path


def _header(path):
    """Parse (header_dict, header_start, payload_start) of a KND/KNDS file."""
    with open(path, "rb") as fh:
        fh.seek(4)
        hlen = int.from_bytes(fh.read(4), "little")
        raw = fh.read(hlen)
    return json.loads(raw.decode("utf-8")), 8, 8 + hlen


def _rewrite_header(path, header):
    """Replace a file's JSON header in place, keeping the payload."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
        hlen = int.from_bytes(fh.read(4), "little")
        fh.seek(8 + hlen)
        payload = fh.read()
    raw = json.dumps(header).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(magic + struct.pack("<I", len(raw)) + raw + payload)


class TestWrittenHeaders:
    def test_files_carry_version_and_checksums(self, knd, knds):
        for path in (knd, knds):
            header, _, _ = _header(path)
            assert header["version"] == FORMAT_VERSION
            assert isinstance(header["meta_crc32"], int)
            assert isinstance(header["payload_crc32"], int)

    def test_payload_crc_matches_payload_bytes(self, knd):
        header, _, payload_start = _header(knd)
        with open(knd, "rb") as fh:
            fh.seek(payload_start)
            payload = fh.read()
        assert header["payload_crc32"] == zlib.crc32(payload)


class TestCorruptKnd:
    def test_bad_magic(self, knd):
        corrupt_file(knd, mode="flip", offset=0)
        with pytest.raises(FileFormatError, match="magic"):
            ArrayFile.open(knd)

    def test_truncated_to_nothing(self, knd):
        corrupt_file(knd, mode="truncate", offset=2)
        with pytest.raises(FileFormatError):
            ArrayFile.open(knd)

    def test_truncated_inside_header(self, knd):
        corrupt_file(knd, mode="truncate", offset=20)
        with pytest.raises(FileFormatError):
            ArrayFile.open(knd)

    def test_truncated_inside_payload(self, knd):
        import os

        corrupt_file(knd, mode="truncate", offset=os.path.getsize(knd) - 9)
        with pytest.raises(FileFormatError):
            ArrayFile.open(knd)

    def test_flipped_header_byte(self, knd):
        # Flip one byte inside the JSON header (after magic + length).
        corrupt_file(knd, mode="flip", offset=12)
        with pytest.raises(FileFormatError):
            ArrayFile.open(knd)

    def test_flipped_payload_byte(self, knd):
        import os

        corrupt_file(knd, mode="flip", offset=os.path.getsize(knd) - 5)
        with pytest.raises(FileFormatError, match="payload checksum"):
            ArrayFile.open(knd)

    def test_flipped_payload_byte_skippable(self, knd):
        import os

        corrupt_file(knd, mode="flip", offset=os.path.getsize(knd) - 5)
        f = ArrayFile.open(knd, verify_checksum=False)
        f.close()

    def test_every_single_byte_corruption_is_controlled(self, tmp_path):
        """Exhaustive sweep: flipping ANY single byte either raises
        FileFormatError at open or is caught by the payload CRC — no
        uncontrolled exception type ever escapes."""
        data = np.arange(16, dtype="f8").reshape(4, 4)
        ref = str(tmp_path / "ref.knd")
        ArrayFile.create(ref, ArraySchema((4, 4), "f8"), data).close()
        with open(ref, "rb") as fh:
            blob = fh.read()
        victim = str(tmp_path / "victim.knd")
        for offset in range(len(blob)):
            with open(victim, "wb") as fh:
                fh.write(blob)
            corrupt_file(victim, mode="flip", offset=offset)
            with pytest.raises(FileFormatError):
                ArrayFile.open(victim)


class TestCorruptKnds:
    def test_flipped_payload_byte(self, knds):
        import os

        corrupt_file(knds, mode="flip", offset=os.path.getsize(knds) - 5)
        with pytest.raises(FileFormatError, match="payload checksum"):
            DebloatedArrayFile.open(knds)

    def test_flipped_header_byte(self, knds):
        corrupt_file(knds, mode="flip", offset=12)
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.open(knds)

    def test_truncated(self, knds):
        import os

        corrupt_file(knds, mode="truncate",
                     offset=os.path.getsize(knds) - 4)
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.open(knds)


class TestBackwardCompatibility:
    def test_version1_header_without_checksums_still_opens(self, knd):
        header, _, _ = _header(knd)
        v1 = {"schema": header["schema"]}  # no version/CRC fields at all
        _rewrite_header(knd, v1)
        with ArrayFile.open(knd) as f:
            assert f.read_point((2, 3)) == 15.0

    def test_explicit_version1_opens(self, knd):
        header, _, _ = _header(knd)
        _rewrite_header(knd, {"schema": header["schema"], "version": 1})
        ArrayFile.open(knd).close()

    def test_future_version_rejected(self, knd):
        header, _, _ = _header(knd)
        _rewrite_header(
            knd, {"schema": header["schema"], "version": FORMAT_VERSION + 1}
        )
        with pytest.raises(FileFormatError, match="version"):
            ArrayFile.open(knd)

    def test_malformed_crc_field_is_format_error(self, knd):
        header, _, _ = _header(knd)
        body = {"schema": header["schema"]}
        bad = dict(body)
        bad["version"] = FORMAT_VERSION
        bad["meta_crc32"] = meta_crc32(body)
        bad["payload_crc32"] = "not-a-number"
        _rewrite_header(knd, bad)
        with pytest.raises(FileFormatError, match="payload_crc32"):
            ArrayFile.open(knd)

    def test_tampered_meta_crc_detected(self, knd):
        header, _, _ = _header(knd)
        header["meta_crc32"] = (header["meta_crc32"] + 1) & 0xFFFFFFFF
        _rewrite_header(knd, header)
        with pytest.raises(FileFormatError, match="header checksum"):
            ArrayFile.open(knd)
