"""Unit + property tests for the row-major layout bijection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel import ArraySchema, RowMajorLayout
from repro.arraymodel.layout import (
    extents_for_indices,
    flatten_index,
    flatten_many,
    row_major_strides,
    unflatten_index,
    unflatten_many,
)
from repro.errors import LayoutError

dims_strategy = st.lists(st.integers(1, 12), min_size=1, max_size=4).map(tuple)


class TestFlatten:
    def test_2d_known_values(self):
        dims = (4, 5)
        assert flatten_index((0, 0), dims) == 0
        assert flatten_index((0, 4), dims) == 4
        assert flatten_index((1, 0), dims) == 5
        assert flatten_index((3, 4), dims) == 19

    def test_out_of_bounds_raises(self):
        with pytest.raises(LayoutError):
            flatten_index((4, 0), (4, 5))
        with pytest.raises(LayoutError):
            flatten_index((0, -1), (4, 5))

    def test_rank_mismatch_raises(self):
        with pytest.raises(LayoutError):
            flatten_index((1, 2, 3), (4, 5))

    def test_strides_row_major(self):
        assert row_major_strides((4, 5, 6)) == (30, 6, 1)
        assert row_major_strides((7,)) == (1,)

    @given(dims_strategy, st.data())
    @settings(max_examples=60)
    def test_roundtrip_property(self, dims, data):
        index = tuple(
            data.draw(st.integers(0, d - 1)) for d in dims
        )
        flat = flatten_index(index, dims)
        assert unflatten_index(flat, dims) == index

    @given(dims_strategy)
    @settings(max_examples=40)
    def test_flatten_is_bijection(self, dims):
        n = int(np.prod(dims))
        flats = flatten_many(
            unflatten_many(np.arange(n), dims), dims
        )
        assert np.array_equal(flats, np.arange(n))

    def test_vectorized_matches_scalar(self):
        dims = (3, 4, 5)
        idx = np.array([[0, 0, 0], [2, 3, 4], [1, 2, 3]])
        flats = flatten_many(idx, dims)
        for row, f in zip(idx, flats):
            assert flatten_index(tuple(row), dims) == f

    def test_unflatten_many_out_of_bounds(self):
        with pytest.raises(LayoutError):
            unflatten_many(np.array([100]), (4, 5))

    def test_flatten_many_out_of_bounds(self):
        with pytest.raises(LayoutError):
            flatten_many(np.array([[4, 0]]), (4, 5))


class TestRowMajorLayout:
    def test_offset_of_scaled_by_itemsize(self):
        lay = RowMajorLayout(ArraySchema((4, 5), "f8"))
        assert lay.offset_of((1, 2)) == 7 * 8
        assert lay.payload_nbytes == 20 * 8

    def test_index_of_inverse(self):
        lay = RowMajorLayout(ArraySchema((4, 5), "f8"))
        for idx in [(0, 0), (1, 2), (3, 4)]:
            assert lay.index_of(lay.offset_of(idx)) == idx

    def test_unaligned_offset_raises(self):
        lay = RowMajorLayout(ArraySchema((4, 5), "f8"))
        with pytest.raises(LayoutError):
            lay.index_of(7)

    def test_indices_in_range_exact_elements(self):
        lay = RowMajorLayout(ArraySchema((4, 5), "f8"))
        idx = lay.indices_in_range(8, 16)  # elements 1 and 2
        assert idx.tolist() == [[0, 1], [0, 2]]

    def test_indices_in_range_partial_elements(self):
        lay = RowMajorLayout(ArraySchema((4, 5), "f8"))
        # Bytes [4, 12) straddle elements 0 and 1.
        idx = lay.indices_in_range(4, 8)
        assert idx.tolist() == [[0, 0], [0, 1]]

    def test_indices_in_range_clipped_to_payload(self):
        lay = RowMajorLayout(ArraySchema((2, 2), "f8"))
        idx = lay.indices_in_range(0, 10_000)
        assert idx.shape == (4, 2)

    def test_indices_in_range_empty(self):
        lay = RowMajorLayout(ArraySchema((2, 2), "f8"))
        assert lay.indices_in_range(0, 0).shape == (0, 2)
        assert lay.indices_in_range(999, 8).shape == (0, 2)

    @given(st.integers(0, 31), st.integers(1, 64))
    @settings(max_examples=50)
    def test_indices_in_range_matches_bruteforce(self, start, size):
        lay = RowMajorLayout(ArraySchema((4, 8), "f8"))
        got = {tuple(r) for r in lay.indices_in_range(start, size)}
        expect = set()
        for flat in range(32):
            lo, hi = flat * 8, flat * 8 + 8
            if lo < start + size and hi > start:
                expect.add(tuple(unflatten_index(flat, (4, 8))))
        assert got == expect


class TestExtentsForIndices:
    def test_contiguous_merge(self):
        lay = RowMajorLayout(ArraySchema((2, 4), "f8"))
        runs = extents_for_indices(lay, [(0, 0), (0, 1), (0, 2)])
        assert runs == [(0, 24)]

    def test_gap_splits_runs(self):
        lay = RowMajorLayout(ArraySchema((2, 4), "f8"))
        runs = extents_for_indices(lay, [(0, 0), (0, 2)])
        assert runs == [(0, 8), (16, 8)]

    def test_duplicates_ignored(self):
        lay = RowMajorLayout(ArraySchema((2, 4), "f8"))
        runs = extents_for_indices(lay, [(0, 1), (0, 1)])
        assert runs == [(8, 8)]

    def test_row_wrap_is_contiguous(self):
        # (0,3) and (1,0) are adjacent in row-major flat order.
        lay = RowMajorLayout(ArraySchema((2, 4), "f8"))
        runs = extents_for_indices(lay, [(0, 3), (1, 0)])
        assert runs == [(24, 16)]
