"""Unit tests for ArraySchema."""

import pytest

from repro.arraymodel import DTYPE_SIZES, ArraySchema
from repro.errors import SchemaError


class TestArraySchemaValidation:
    def test_basic_2d(self):
        s = ArraySchema((128, 128), "f8")
        assert s.ndim == 2
        assert s.n_elements == 128 * 128
        assert s.itemsize == 8
        assert s.nbytes == 128 * 128 * 8

    def test_default_dtype_is_long_double(self):
        # The paper's experiments assume 16-byte long double elements.
        assert ArraySchema((4, 4)).itemsize == 16

    def test_empty_dims_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema(())

    def test_zero_extent_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema((4, 0))

    def test_negative_extent_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema((-1, 4))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema((4, 4), "f2")

    def test_all_dtypes_have_positive_sizes(self):
        for code, size in DTYPE_SIZES.items():
            assert size > 0
            assert ArraySchema((4,), code).itemsize == size

    def test_chunk_rank_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema((4, 4), "f8", chunks=(2,))

    def test_zero_chunk_rejected(self):
        with pytest.raises(SchemaError):
            ArraySchema((4, 4), "f8", chunks=(0, 2))

    def test_dims_coerced_to_ints(self):
        s = ArraySchema((4.0, 8.0), "f8")
        assert s.dims == (4, 8)
        assert all(isinstance(d, int) for d in s.dims)


class TestArraySchemaDerived:
    def test_chunk_grid_exact(self):
        s = ArraySchema((8, 8), "f8", chunks=(4, 4))
        assert s.chunk_grid == (2, 2)

    def test_chunk_grid_ceil(self):
        s = ArraySchema((10, 10), "f8", chunks=(4, 4))
        assert s.chunk_grid == (3, 3)

    def test_chunk_grid_without_chunks_raises(self):
        with pytest.raises(SchemaError):
            _ = ArraySchema((4, 4), "f8").chunk_grid

    def test_contains_index(self):
        s = ArraySchema((4, 6), "f8")
        assert s.contains_index((0, 0))
        assert s.contains_index((3, 5))
        assert not s.contains_index((4, 0))
        assert not s.contains_index((0, 6))
        assert not s.contains_index((-1, 0))
        assert not s.contains_index((0,))

    def test_roundtrip_dict(self):
        s = ArraySchema((10, 20, 30), "f4", chunks=(5, 5, 5))
        assert ArraySchema.from_dict(s.to_dict()) == s

    def test_roundtrip_dict_no_chunks(self):
        s = ArraySchema((7,), "i8")
        assert ArraySchema.from_dict(s.to_dict()) == s

    def test_3d_elements(self):
        s = ArraySchema((64, 64, 64), "f16")
        assert s.n_elements == 64 ** 3
        assert s.nbytes == 64 ** 3 * 16
