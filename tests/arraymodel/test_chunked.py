"""Unit + property tests for the chunked layout bijection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel import ArraySchema, ChunkedLayout, RowMajorLayout, make_layout
from repro.errors import LayoutError, SchemaError


def layout_10x10():
    return ChunkedLayout(ArraySchema((10, 10), "f8", chunks=(4, 4)))


class TestChunkedLayoutBasics:
    def test_requires_chunks(self):
        with pytest.raises(SchemaError):
            ChunkedLayout(ArraySchema((4, 4), "f8"))

    def test_make_layout_dispatch(self):
        assert isinstance(make_layout(ArraySchema((4, 4), "f8")), RowMajorLayout)
        assert isinstance(
            make_layout(ArraySchema((4, 4), "f8", chunks=(2, 2))), ChunkedLayout
        )

    def test_payload_includes_padding(self):
        lay = layout_10x10()
        # 3x3 chunk grid, each chunk 16 elements of 8 bytes.
        assert lay.n_chunks == 9
        assert lay.payload_nbytes == 9 * 16 * 8

    def test_chunk_of(self):
        lay = layout_10x10()
        assert lay.chunk_of((0, 0)) == (0, 0)
        assert lay.chunk_of((3, 3)) == (0, 0)
        assert lay.chunk_of((4, 0)) == (1, 0)
        assert lay.chunk_of((9, 9)) == (2, 2)

    def test_chunk_byte_range(self):
        lay = layout_10x10()
        start, size = lay.chunk_byte_range((0, 0))
        assert (start, size) == (0, 128)
        start, size = lay.chunk_byte_range((0, 1))
        assert (start, size) == (128, 128)

    def test_first_chunk_is_row_major_within(self):
        lay = layout_10x10()
        assert lay.offset_of((0, 0)) == 0
        assert lay.offset_of((0, 1)) == 8
        assert lay.offset_of((1, 0)) == 4 * 8

    def test_second_chunk_offset(self):
        lay = layout_10x10()
        # (0, 4) is the first element of chunk (0, 1).
        assert lay.offset_of((0, 4)) == 128

    def test_out_of_bounds_raises(self):
        lay = layout_10x10()
        with pytest.raises(LayoutError):
            lay.offset_of((10, 0))

    def test_padding_offset_raises(self):
        lay = layout_10x10()
        # Chunk (2, 2) covers indices 8..9 in each dim; its within-chunk
        # cell (2, 2) would be logical index (10, 10) -> padding.
        pad_offset = lay.chunk_byte_range((2, 2))[0] + (2 * 4 + 2) * 8
        with pytest.raises(LayoutError):
            lay.index_of(pad_offset)
        assert lay.is_padding(pad_offset)

    def test_unaligned_offset_raises(self):
        with pytest.raises(LayoutError):
            layout_10x10().index_of(3)


class TestChunkedBijection:
    @given(st.tuples(st.integers(0, 9), st.integers(0, 9)))
    @settings(max_examples=100)
    def test_roundtrip_every_index(self, idx):
        lay = layout_10x10()
        assert lay.index_of(lay.offset_of(idx)) == idx

    def test_offsets_are_unique(self):
        lay = layout_10x10()
        offsets = {
            lay.offset_of((i, j)) for i in range(10) for j in range(10)
        }
        assert len(offsets) == 100

    def test_vectorized_matches_scalar(self):
        lay = layout_10x10()
        idx = np.array([[i, j] for i in range(10) for j in range(10)])
        offs = lay.offsets_of(idx)
        for row, off in zip(idx, offs):
            assert lay.offset_of(tuple(row)) == off

    def test_vectorized_out_of_bounds(self):
        with pytest.raises(LayoutError):
            layout_10x10().offsets_of(np.array([[10, 0]]))

    def test_3d_roundtrip(self):
        lay = ChunkedLayout(ArraySchema((5, 6, 7), "f4", chunks=(2, 3, 4)))
        for idx in [(0, 0, 0), (4, 5, 6), (2, 3, 4), (1, 1, 1)]:
            assert lay.index_of(lay.offset_of(idx)) == idx


class TestChunkedIndicesInRange:
    def test_whole_chunk_maps_to_its_cells(self):
        lay = layout_10x10()
        start, size = lay.chunk_byte_range((0, 0))
        idx = {tuple(r) for r in lay.indices_in_range(start, size)}
        assert idx == {(i, j) for i in range(4) for j in range(4)}

    def test_padding_excluded(self):
        lay = layout_10x10()
        start, size = lay.chunk_byte_range((2, 2))
        idx = {tuple(r) for r in lay.indices_in_range(start, size)}
        # Only the 2x2 real corner of the edge chunk.
        assert idx == {(i, j) for i in (8, 9) for j in (8, 9)}

    def test_full_payload_covers_all_cells(self):
        lay = layout_10x10()
        idx = lay.indices_in_range(0, lay.payload_nbytes)
        assert idx.shape == (100, 2)
