"""Unit tests for the Kondo user-side runtime."""

import numpy as np
import pytest

from repro.arraymodel import DebloatedArrayFile, KondoRuntime
from repro.errors import DataMissingError


@pytest.fixture
def runtime_pair(tmp_path, knd_file):
    keep = np.arange(50)  # first five rows
    db = DebloatedArrayFile.create(
        str(tmp_path / "r.knds"), knd_file, keep_flat_indices=keep
    )
    yield db
    db.close()


class TestKondoRuntime:
    def test_hit_returns_value(self, runtime_pair, small_data):
        rt = KondoRuntime(runtime_pair)
        assert rt.read((2, 3)) == small_data[2, 3]
        assert rt.stats.hits == 1
        assert rt.stats.misses == 0

    def test_miss_raises_without_fetcher(self, runtime_pair):
        rt = KondoRuntime(runtime_pair)
        with pytest.raises(DataMissingError):
            rt.read((9, 9))
        assert rt.stats.misses == 1
        assert rt.stats.missed_indices == [(9, 9)]

    def test_remote_fetcher_recovers(self, runtime_pair, small_data):
        rt = KondoRuntime(
            runtime_pair,
            remote_fetcher=lambda idx: float(small_data[idx]),
        )
        assert rt.read((9, 9)) == small_data[9, 9]
        assert rt.stats.remote_fetches == 1
        assert rt.stats.misses == 1

    def test_miss_rate(self, runtime_pair):
        rt = KondoRuntime(runtime_pair)
        rt.read((0, 0))
        for idx in [(9, 9), (8, 8), (7, 7)]:
            with pytest.raises(DataMissingError):
                rt.read(idx)
        assert rt.stats.reads == 4
        assert rt.stats.miss_rate == pytest.approx(0.75)

    def test_record_misses_off(self, runtime_pair):
        rt = KondoRuntime(runtime_pair, record_misses=False)
        with pytest.raises(DataMissingError):
            rt.read((9, 9))
        assert rt.stats.missed_indices == []

    def test_run_program_counts_misses(self, runtime_pair):
        from repro.workloads import get_program

        # CS on 10x10: small steps access early rows (kept) and later rows
        # (debloated away) -> stats should show both hits and misses.
        prog = get_program("CS")
        rt = KondoRuntime(runtime_pair)
        stats = rt.run_program(prog, (1, 1), dims=(10, 10))
        assert stats.reads > 0
        assert stats.hits > 0
        assert stats.misses > 0
