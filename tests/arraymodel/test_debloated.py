"""Unit + property tests for the KNDS debloated file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.arraymodel.debloated import extents_from_flat_indices, merge_extents
from repro.errors import DataMissingError, FileFormatError, LayoutError


class TestMergeExtents:
    def test_disjoint_sorted(self):
        assert merge_extents([(0, 10), (20, 5)]) == [(0, 10), (20, 5)]

    def test_overlap_merges(self):
        # The paper's Section IV-C example: reads (0,110), (70,30),
        # (130,20), (90,30) merge into (0,120) and (130,150).
        events = [(0, 110), (70, 30), (130, 20), (90, 30)]
        assert merge_extents(events) == [(0, 120), (130, 20)]

    def test_adjacent_merges(self):
        assert merge_extents([(0, 10), (10, 10)]) == [(0, 20)]

    def test_unsorted_input(self):
        assert merge_extents([(20, 5), (0, 10)]) == [(0, 10), (20, 5)]

    def test_zero_size_dropped(self):
        assert merge_extents([(5, 0), (1, 2)]) == [(1, 2)]

    @given(st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 50)), max_size=20
    ))
    @settings(max_examples=80)
    def test_merged_coverage_equals_union(self, extents):
        merged = merge_extents(extents)
        covered = set()
        for s, z in extents:
            covered.update(range(s, s + z))
        merged_cover = set()
        for s, z in merged:
            assert z > 0
            merged_cover.update(range(s, s + z))
        assert merged_cover == covered
        # Merged extents are sorted and non-touching.
        for (s1, z1), (s2, _z2) in zip(merged, merged[1:]):
            assert s1 + z1 < s2


class TestExtentsFromFlat:
    def test_contiguous_run(self):
        assert extents_from_flat_indices(np.array([3, 4, 5]), 8) == [(24, 24)]

    def test_gap(self):
        assert extents_from_flat_indices(np.array([0, 2]), 8) == [(0, 8), (16, 8)]

    def test_duplicates(self):
        assert extents_from_flat_indices(np.array([1, 1, 2]), 4) == [(4, 8)]

    def test_empty(self):
        assert extents_from_flat_indices(np.array([]), 8) == []


@pytest.fixture
def subset(tmp_path, knd_file):
    keep = np.array([0, 1, 2, 55, 56, 99])
    path = str(tmp_path / "s.knds")
    db = DebloatedArrayFile.create(path, knd_file, keep_flat_indices=keep)
    yield db
    db.close()


class TestDebloatedFile:
    def test_kept_elements_readable(self, subset, small_data):
        assert subset.read_point((0, 0)) == small_data[0, 0]
        assert subset.read_point((5, 5)) == small_data[5, 5]
        assert subset.read_point((9, 9)) == small_data[9, 9]

    def test_missing_raises_with_index(self, subset):
        with pytest.raises(DataMissingError) as exc:
            subset.read_point((4, 4))
        assert exc.value.index == (4, 4)

    def test_contains_index(self, subset):
        assert subset.contains_index((5, 6))
        assert not subset.contains_index((7, 7))

    def test_kept_nbytes(self, subset):
        assert subset.kept_nbytes == 6 * 8

    def test_reduction(self, subset):
        assert subset.reduction_vs(100 * 8) == pytest.approx(0.94)

    def test_file_smaller_than_source(self, subset, knd_file):
        assert subset.file_nbytes < knd_file.file_nbytes

    def test_create_requires_exactly_one_selector(self, tmp_path, knd_file):
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.create(str(tmp_path / "x.knds"), knd_file)
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.create(
                str(tmp_path / "y.knds"), knd_file,
                keep_flat_indices=np.array([0]), keep_extents=[(0, 8)],
            )

    def test_extent_out_of_payload_rejected(self, tmp_path, knd_file):
        with pytest.raises(LayoutError):
            DebloatedArrayFile.create(
                str(tmp_path / "z.knds"), knd_file,
                keep_extents=[(0, 10_000)],
            )

    def test_open_roundtrip(self, subset, small_data):
        reopened = DebloatedArrayFile.open(subset.path)
        assert reopened.read_point((5, 6)) == small_data[5, 6]
        reopened.close()

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.knds"
        p.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(FileFormatError):
            DebloatedArrayFile.open(str(p))

    def test_extent_selector(self, tmp_path, knd_file, small_data):
        db = DebloatedArrayFile.create(
            str(tmp_path / "e.knds"), knd_file,
            keep_extents=[(0, 80)],  # first row
        )
        for j in range(10):
            assert db.read_point((0, j)) == small_data[0, j]
        with pytest.raises(DataMissingError):
            db.read_point((1, 0))
        db.close()

    @given(st.sets(st.integers(0, 99), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_membership_matches_keep_set(self, tmp_path_factory, keep):
        tmp = tmp_path_factory.mktemp("prop")
        data = np.arange(100, dtype="f8").reshape(10, 10)
        src = ArrayFile.create(
            str(tmp / "src.knd"), ArraySchema((10, 10), "f8"), data
        )
        db = DebloatedArrayFile.create(
            str(tmp / "s.knds"), src,
            keep_flat_indices=np.array(sorted(keep), dtype=np.int64),
        )
        for flat in range(100):
            idx = (flat // 10, flat % 10)
            if flat in keep:
                assert db.read_point(idx) == data[idx]
            else:
                with pytest.raises(DataMissingError):
                    db.read_point(idx)
        db.close()
        src.close()
