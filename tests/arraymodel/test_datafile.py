"""Unit tests for the KND array file format."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.errors import FileFormatError, LayoutError


class TestCreateOpen:
    def test_roundtrip_values(self, knd_file, small_data):
        for idx in [(0, 0), (3, 4), (9, 9), (5, 0)]:
            assert knd_file.read_point(idx) == small_data[idx]

    def test_default_fill(self, tmp_path):
        f = ArrayFile.create(
            str(tmp_path / "z.knd"), ArraySchema((4, 4), "f8"), fill=7.0
        )
        assert f.read_point((2, 2)) == 7.0
        f.close()

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(FileFormatError):
            ArrayFile.create(
                str(tmp_path / "x.knd"),
                ArraySchema((4, 4), "f8"),
                np.zeros((3, 3)),
            )

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.knd"
        path.write_bytes(b"XXXX" + b"\x00" * 64)
        with pytest.raises(FileFormatError):
            ArrayFile.open(str(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "trunc.knd"
        path.write_bytes(b"KND1" + (1000).to_bytes(4, "little") + b"{}")
        with pytest.raises(FileFormatError):
            ArrayFile.open(str(path))

    def test_truncated_payload_rejected(self, tmp_path, small_data):
        path = str(tmp_path / "p.knd")
        ArrayFile.create(path, ArraySchema((10, 10), "f8"), small_data).close()
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[:-16])
        with pytest.raises(FileFormatError):
            ArrayFile.open(path)

    def test_malformed_header_json(self, tmp_path):
        body = b"not json"
        path = tmp_path / "j.knd"
        path.write_bytes(b"KND1" + len(body).to_bytes(4, "little") + body)
        with pytest.raises(FileFormatError):
            ArrayFile.open(str(path))

    def test_file_nbytes(self, knd_file):
        assert knd_file.file_nbytes > 100 * 8

    def test_context_manager_closes(self, tmp_path, small_data):
        path = str(tmp_path / "cm.knd")
        with ArrayFile.create(path, ArraySchema((10, 10), "f8"), small_data) as f:
            assert f.read_point((1, 1)) == 11.0
        with pytest.raises(FileFormatError):
            f.read_point((1, 1))


class TestReads:
    def test_read_box(self, knd_file, small_data):
        box = knd_file.read_box((2, 3), (5, 7))
        assert np.array_equal(box, small_data[2:5, 3:7])

    def test_read_box_full(self, knd_file, small_data):
        box = knd_file.read_box((0, 0), (10, 10))
        assert np.array_equal(box, small_data)

    def test_read_box_out_of_bounds(self, knd_file):
        with pytest.raises(LayoutError):
            knd_file.read_box((0, 0), (11, 10))
        with pytest.raises(LayoutError):
            knd_file.read_box((5, 5), (5, 6))  # empty first axis

    def test_read_extent_bounds(self, knd_file):
        data = knd_file.read_extent(0, 16)
        assert len(data) == 16
        with pytest.raises(LayoutError):
            knd_file.read_extent(0, 10_000)
        with pytest.raises(LayoutError):
            knd_file.read_extent(-8, 8)

    def test_chunked_values(self, chunked_knd_file, small_data):
        for idx in [(0, 0), (3, 3), (4, 4), (9, 9), (7, 2), (2, 7)]:
            assert chunked_knd_file.read_point(idx) == small_data[idx]

    def test_chunked_box(self, chunked_knd_file, small_data):
        box = chunked_knd_file.read_box((2, 2), (7, 8))
        assert np.array_equal(box, small_data[2:7, 2:8])


class TestDtypes:
    @pytest.mark.parametrize("dtype", ["f4", "f8", "f16", "i4", "i8"])
    def test_roundtrip_each_dtype(self, tmp_path, dtype):
        data = np.arange(12).reshape(3, 4)
        path = str(tmp_path / f"{dtype}.knd")
        with ArrayFile.create(path, ArraySchema((3, 4), dtype), data) as f:
            assert f.read_point((2, 3)) == 11.0
            assert f.read_point((0, 0)) == 0.0

    def test_audit_recorder_called(self, tmp_path, small_data):
        events = []
        path = str(tmp_path / "r.knd")
        ArrayFile.create(path, ArraySchema((10, 10), "f8"), small_data).close()
        with ArrayFile.open(
            path, recorder=lambda p, op, off, sz: events.append((p, op, off, sz))
        ) as f:
            f.read_point((1, 1))
        assert events == [(path, "read", 11 * 8, 8)]
