"""Failure injection: corrupted KND/KNDS/KNB files must fail cleanly.

Whatever bytes we throw at the openers, they must either succeed or raise
a :class:`KondoError` subclass — never an uncontrolled exception type.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.arraymodel.bundle import BundleFile
from repro.errors import KondoError


def make_valid_knd(tmp_path):
    path = str(tmp_path / "v.knd")
    ArrayFile.create(
        path, ArraySchema((6, 6), "f8"),
        np.arange(36, dtype="f8").reshape(6, 6),
    ).close()
    return path


class TestCorruptedFiles:
    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_knd(self, tmp_path_factory, data):
        tmp = tmp_path_factory.mktemp("fuzzknd")
        path = str(tmp / "x.knd")
        with open(path, "wb") as fh:
            fh.write(data)
        try:
            f = ArrayFile.open(path)
            f.close()
        except KondoError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_knds(self, tmp_path_factory, data):
        tmp = tmp_path_factory.mktemp("fuzzknds")
        path = str(tmp / "x.knds")
        with open(path, "wb") as fh:
            fh.write(data)
        try:
            f = DebloatedArrayFile.open(path)
            f.close()
        except KondoError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_knb(self, tmp_path_factory, data):
        tmp = tmp_path_factory.mktemp("fuzzknb")
        path = str(tmp / "x.knb")
        with open(path, "wb") as fh:
            fh.write(data)
        try:
            b = BundleFile.open(path)
            b.close()
        except KondoError:
            pass

    @given(st.integers(0, 400), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_single_byte_corruption_of_valid_file(
        self, tmp_path_factory, pos, value
    ):
        """Flip one byte of a valid KND file: open either succeeds (payload
        corruption is not detectable without checksums) or raises a
        KondoError — reads must still be well-formed floats."""
        tmp = tmp_path_factory.mktemp("flip")
        path = make_valid_knd(tmp)
        raw = bytearray(open(path, "rb").read())
        pos = pos % len(raw)
        raw[pos] = value
        with open(path, "wb") as fh:
            fh.write(raw)
        try:
            f = ArrayFile.open(path)
        except KondoError:
            return
        try:
            out = f.read_point((3, 3))
            assert isinstance(out, float)
        except KondoError:
            pass
        finally:
            f.close()

    def test_header_schema_with_hostile_values(self, tmp_path):
        """A header declaring absurd dims must be rejected, not allocate."""
        import json

        header = json.dumps(
            {"schema": {"dims": [0], "dtype": "f8", "chunks": None}}
        ).encode()
        path = tmp_path / "h.knd"
        path.write_bytes(b"KND1" + len(header).to_bytes(4, "little") + header)
        with pytest.raises(KondoError):
            ArrayFile.open(str(path))
