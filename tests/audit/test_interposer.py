"""Unit tests for in-process file interposition."""

import os

import pytest

from repro.audit import AuditSession, audited_open
from repro.audit.events import EventType
from repro.errors import AuditError


@pytest.fixture
def data_file(tmp_path):
    p = tmp_path / "blob.bin"
    p.write_bytes(bytes(range(256)))
    return str(p)


class TestAuditedFile:
    def test_open_close_events(self, data_file):
        s = AuditSession()
        f = audited_open(data_file, s)
        f.close()
        types = [e.c for e in s.events]
        assert types == [EventType.OPEN, EventType.CLOSE]

    def test_sequential_reads_tracked_with_position(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            assert f.read(10) == bytes(range(10))
            assert f.read(5) == bytes(range(10, 15))
        assert s.accessed_ranges(data_file) == [(0, 15)]

    def test_seek_then_read(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            f.seek(100)
            assert f.tell() == 100
            f.read(10)
        assert s.accessed_ranges(data_file) == [(100, 110)]

    def test_seek_does_not_emit_access(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            f.seek(50)
        assert s.accessed_ranges(data_file) == []

    def test_pread_does_not_move_cursor(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            f.seek(10)
            assert f.pread(4, 200) == bytes(range(200, 204))
            assert f.tell() == 10
        assert s.accessed_ranges(data_file) == [(200, 204)]

    def test_mmap_region(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            data = f.mmap_region(64, 32)
        assert data == bytes(range(64, 96))
        assert s.accessed_ranges(data_file) == [(64, 96)]
        assert any(e.c is EventType.MMAP for e in s.events)

    def test_short_read_at_eof_records_actual_bytes(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            f.seek(250)
            data = f.read(100)
        assert len(data) == 6
        assert s.accessed_ranges(data_file) == [(250, 256)]

    def test_read_all(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s) as f:
            assert len(f.read()) == 256
        assert s.accessed_ranges(data_file) == [(0, 256)]

    def test_closed_raises(self, data_file):
        s = AuditSession()
        f = audited_open(data_file, s)
        f.close()
        with pytest.raises(AuditError):
            f.read(1)
        f.close()  # idempotent

    def test_custom_pid(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s, pid=777) as f:
            f.read(8)
        assert s.accessed_ranges(data_file, pid=777) == [(0, 8)]
        assert s.accessed_ranges(data_file, pid=os.getpid()) == []

    def test_two_handles_two_processes(self, data_file):
        s = AuditSession()
        with audited_open(data_file, s, pid=1) as f1, \
                audited_open(data_file, s, pid=2) as f2:
            f1.read(10)
            f2.seek(50)
            f2.read(10)
        assert s.accessed_ranges(data_file, pid=1) == [(0, 10)]
        assert s.accessed_ranges(data_file, pid=2) == [(50, 60)]
        assert s.accessed_ranges(data_file) == [(0, 10), (50, 60)]
