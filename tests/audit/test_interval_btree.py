"""Unit + property tests for the interval B-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import IntervalBTree
from repro.errors import AuditError

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 60)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    max_size=120,
)


def brute_force_overlaps(intervals, qs, qe):
    # Half-open semantics: an empty query [q, q) overlaps nothing (use
    # (p, p + 1) for stabbing queries) — matching the documented contract.
    if qe <= qs:
        return []
    return sorted(
        (s, e, None) for s, e in intervals if s < qe and e > qs
    )


class TestBasics:
    def test_empty(self):
        t = IntervalBTree()
        assert len(t) == 0
        assert t.overlapping(0, 100) == []
        assert t.merged() == []
        assert not t.covers(5)

    def test_small_degree_rejected(self):
        with pytest.raises(AuditError):
            IntervalBTree(t=1)

    def test_invalid_interval_rejected(self):
        t = IntervalBTree()
        with pytest.raises(AuditError):
            t.insert(10, 5)

    def test_invalid_query_rejected(self):
        t = IntervalBTree()
        with pytest.raises(AuditError):
            t.overlapping(10, 5)

    def test_single_insert_lookup(self):
        t = IntervalBTree()
        t.insert(10, 20, "a")
        assert t.overlapping(15, 16) == [(10, 20, "a")]
        assert t.overlapping(0, 10) == []   # half-open: ends before 10
        assert t.overlapping(20, 30) == []  # starts at the open end
        assert t.overlapping(19, 20) == [(10, 20, "a")]
        assert t.covers(10)
        assert t.covers(19)
        assert not t.covers(20)

    def test_payloads_preserved(self):
        t = IntervalBTree()
        for i in range(10):
            t.insert(i * 10, i * 10 + 5, f"p{i}")
        (s, e, payload), = t.overlapping(42, 43)
        assert payload == "p4"

    def test_duplicate_intervals_kept(self):
        t = IntervalBTree()
        t.insert(0, 10, "x")
        t.insert(0, 10, "y")
        assert len(t.overlapping(5, 6)) == 2

    def test_merged_example_from_paper(self):
        # Section IV-C worked example: reads (0,110), (70,30), (130,20),
        # (90,30) -> merged accessed offsets (0,120) and (130,150).
        t = IntervalBTree()
        for start, size in [(0, 110), (70, 30), (130, 20), (90, 30)]:
            t.insert(start, start + size)
        assert t.merged() == [(0, 120), (130, 150)]

    def test_height_grows_with_splits(self):
        t = IntervalBTree(t=2)
        for i in range(100):
            t.insert(i, i + 1)
        assert t.height() > 1
        t.check_invariants()

    def test_iter_sorted(self):
        t = IntervalBTree(t=2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            s = int(rng.integers(0, 1000))
            t.insert(s, s + int(rng.integers(0, 50)))
        starts = [k[:2] for k in t.iter_intervals()]
        assert starts == sorted(starts)
        assert len(starts) == 200


class TestPropertyBased:
    @given(intervals_strategy, st.integers(0, 600), st.integers(0, 80))
    @settings(max_examples=120)
    def test_overlap_query_matches_bruteforce(self, intervals, qs, width):
        t = IntervalBTree(t=3)
        for s, e in intervals:
            t.insert(s, e)
        qe = qs + width
        got = sorted((s, e, p) for s, e, p in t.overlapping(qs, qe))
        assert got == brute_force_overlaps(intervals, qs, qe)

    @given(intervals_strategy)
    @settings(max_examples=80)
    def test_invariants_after_inserts(self, intervals):
        t = IntervalBTree(t=2)
        for s, e in intervals:
            t.insert(s, e)
        t.check_invariants()
        assert len(t) == len(intervals)

    @given(intervals_strategy)
    @settings(max_examples=80)
    def test_merged_equals_point_union(self, intervals):
        t = IntervalBTree(t=3)
        covered = set()
        for s, e in intervals:
            t.insert(s, e)
            covered.update(range(s, e))
        merged_cover = set()
        prev_end = None
        for s, e in t.merged():
            assert e > s
            if prev_end is not None:
                assert s > prev_end  # disjoint, non-touching
            prev_end = e
            merged_cover.update(range(s, e))
        assert merged_cover == covered

    @given(intervals_strategy, st.integers(0, 550))
    @settings(max_examples=80)
    def test_covers_matches_membership(self, intervals, point):
        t = IntervalBTree(t=4)
        covered = set()
        for s, e in intervals:
            t.insert(s, e)
            covered.update(range(s, e))
        assert t.covers(point) == (point in covered)
