"""Concurrency tests: the audit session under multi-threaded recording.

The paper's auditing system observes events from multiple processes; the
in-process substitute must tolerate concurrent recorders (simulated
processes on threads) without losing or corrupting events.
"""

import threading

import numpy as np

from repro.audit import AuditSession, Event, EventType


class TestConcurrentRecording:
    def test_parallel_recorders_lose_nothing(self):
        session = AuditSession()
        n_threads, per_thread = 8, 500

        def worker(pid):
            for k in range(per_thread):
                session.record_event(
                    Event(pid=pid, path="f", c=EventType.READ,
                          l=k * 10, sz=10)
                )

        threads = [
            threading.Thread(target=worker, args=(pid,))
            for pid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert session.n_events == n_threads * per_thread
        # Each pid's coverage is one contiguous run of per_thread reads.
        for pid in range(n_threads):
            assert session.accessed_ranges("f", pid=pid) == [
                (0, per_thread * 10)
            ]

    def test_parallel_mixed_files(self):
        session = AuditSession()

        def worker(pid, path):
            for k in range(200):
                session.record(path, "read", k * 8, 8, pid=pid)

        threads = [
            threading.Thread(target=worker, args=(pid, f"file{pid % 3}"))
            for pid in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(3):
            assert session.accessed_ranges(f"file{i}") == [(0, 1600)]

    def test_btrees_valid_after_concurrent_inserts(self):
        session = AuditSession()

        def worker(pid):
            rng = np.random.default_rng(pid)
            for _ in range(300):
                start = int(rng.integers(0, 10_000))
                session.record("f", "read", start, int(rng.integers(1, 64)),
                               pid=pid)

        threads = [
            threading.Thread(target=worker, args=(pid,)) for pid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every per-identity B-tree still satisfies its invariants.
        for identity in session.identities():
            session._trees[identity].check_invariants()
            assert len(session._trees[identity]) == 300
