"""Block-capture equivalence: batched sessions vs the per-event seed path.

The block path is opt-in and must be *query-identical* to the event path:
same ``accessed_ranges``, ``accessed_indices``, ``accessed_nbytes``, and
``had_writes`` for any interleaving of reads/seeks/mmaps across threads.
Hypothesis drives random event soups through both capture modes (and, for
the threaded property, through racing recorder threads) and compares
every observable.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arraymodel import ArrayFile, ArraySchema, RowMajorLayout
from repro.audit import AuditSession, BlockRecorder
from repro.audit.blockcapture import _ThreadBuffer
from repro.errors import AuditError

#: One simulated syscall: (path#, op, offset, size, pid).
events = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(["read", "pread64", "mmap", "write", "open", "close"]),
        st.integers(0, 2000),
        st.integers(0, 128),
        st.integers(1, 3),
    ),
    max_size=120,
)


def replay(session, evs):
    for path_no, op, offset, size, pid in evs:
        session.record(f"file{path_no}", op, offset, size, pid=pid)


def assert_observables_equal(event_s, block_s, evs):
    paths = sorted({f"file{p}" for p, *_ in evs} | {"file0"})
    layout = RowMajorLayout(ArraySchema((64, 64), "f8"))
    assert block_s.n_events == event_s.n_events
    assert block_s.had_writes == event_s.had_writes
    assert block_s.identities() == event_s.identities()
    for path in paths:
        assert (block_s.accessed_ranges(path)
                == event_s.accessed_ranges(path)), path
        assert block_s.accessed_nbytes(path) == event_s.accessed_nbytes(path)
        assert np.array_equal(block_s.accessed_indices(path, layout),
                              event_s.accessed_indices(path, layout))
        for pid in (1, 2, 3):
            assert (block_s.accessed_ranges(path, pid=pid)
                    == event_s.accessed_ranges(path, pid=pid))
            assert (block_s.range_overlaps(path, 0, 3000, pid=pid)
                    == event_s.range_overlaps(path, 0, 3000, pid=pid))


class TestEquivalenceProperties:
    @settings(max_examples=120, deadline=None)
    @given(evs=events, buffer_size=st.sampled_from([1, 2, 7, 64, 4096]))
    def test_block_session_matches_event_session(self, evs, buffer_size):
        event_s = AuditSession()
        block_s = AuditSession(capture="block", block_buffer=buffer_size)
        replay(event_s, evs)
        replay(block_s, evs)
        assert_observables_equal(event_s, block_s, evs)
        # Event materialization: same multiset, same per-identity order.
        key = lambda e: (e.pid, e.path, e.l, e.sz, e.c.value)  # noqa: E731
        assert sorted(block_s.events, key=key) == sorted(event_s.events, key=key)

    @settings(max_examples=25, deadline=None)
    @given(evs=events, buffer_size=st.sampled_from([1, 8, 64]))
    def test_threaded_block_recording_matches_event_session(
            self, evs, buffer_size):
        # Each simulated pid records from its own racing thread; totals
        # and per-identity coverage must match a serial event session.
        event_s = AuditSession()
        replay(event_s, evs)
        block_s = AuditSession(capture="block", block_buffer=buffer_size)
        by_pid = {pid: [e for e in evs if e[4] == pid] for pid in (1, 2, 3)}
        threads = [
            threading.Thread(target=replay, args=(block_s, chunk))
            for chunk in by_pid.values()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert_observables_equal(event_s, block_s, evs)

    @settings(max_examples=60, deadline=None)
    @given(evs=events)
    def test_queries_between_records_flush_correctly(self, evs):
        # Interleave queries with records: every flush point must leave
        # the already-recorded prefix fully visible.
        event_s = AuditSession()
        block_s = AuditSession(capture="block", block_buffer=16)
        for i, (path_no, op, offset, size, pid) in enumerate(evs):
            event_s.record(f"file{path_no}", op, offset, size, pid=pid)
            block_s.record(f"file{path_no}", op, offset, size, pid=pid)
            if i % 7 == 0:
                path = f"file{path_no}"
                assert (block_s.accessed_ranges(path)
                        == event_s.accessed_ranges(path))
        assert_observables_equal(event_s, block_s, evs)


class TestBlockSessionBehavior:
    def test_events_materialize_in_thread_order(self):
        s = AuditSession(capture="block")
        s.record("f", "read", 0, 8, pid=1)
        s.record("f", "pread", 8, 8, pid=1)
        s.record("f", "mmap", 16, 8, pid=1)
        evs = s.events
        assert [(e.l, e.c.value) for e in evs] == [
            (0, "read"), (8, "pread"), (16, "mmap")
        ]
        assert all(e.pid == 1 and e.path == "f" for e in evs)

    def test_buffer_full_flush_is_transparent(self):
        s = AuditSession(capture="block", block_buffer=4)
        for k in range(11):  # 2 full flushes + 3 pending
            s.record("f", "read", k * 8, 8)
        assert s.n_events == 11
        assert s.accessed_ranges("f") == [(0, 88)]

    def test_write_only_visible_after_flush_on_query(self):
        s = AuditSession(capture="block", block_buffer=1024)
        s.record("f", "write", 0, 8)
        # had_writes is a query: it must flush the pending buffer.
        assert s.had_writes
        assert s.accessed_ranges("f") == []

    def test_close_flushes_pending_buffer(self):
        s = AuditSession(capture="block", block_buffer=1024)
        s.record("f", "read", 0, 32)
        s.close()
        assert s.n_events == 1
        assert s.accessed_ranges("f") == [(0, 32)]

    def test_record_and_reset_after_close_raise(self):
        for capture in ("event", "block"):
            s = AuditSession(capture=capture)
            s.record("f", "read", 0, 8)
            s.close()
            s.close()  # idempotent
            with pytest.raises(AuditError):
                s.record("f", "read", 8, 8)
            with pytest.raises(AuditError):
                s.record_event(s.events[0])
            with pytest.raises(AuditError):
                s.reset()

    def test_reset_clears_block_state(self):
        s = AuditSession(capture="block", block_buffer=4)
        for k in range(9):
            s.record("f", "read", k * 8, 8)
        s.reset()
        assert s.n_events == 0
        assert s.accessed_ranges("f") == []
        s.record("f", "read", 0, 8)
        assert s.accessed_ranges("f") == [(0, 8)]

    def test_unknown_capture_and_index_rejected(self):
        with pytest.raises(AuditError):
            AuditSession(capture="mystery")
        with pytest.raises(AuditError):
            AuditSession(index="mystery")

    def test_event_capture_with_flat_index(self):
        # Index selection is orthogonal to capture mode.
        s = AuditSession(capture="event", index="flat")
        s.record("f", "read", 0, 10)
        s.record("f", "read", 5, 10)
        assert s.accessed_ranges("f") == [(0, 15)]
        assert s.events[0].c.value == "read"

    def test_invalid_record_arguments(self):
        s = AuditSession(capture="block")
        with pytest.raises(AuditError):
            s.record("f", "read", -1, 8)
        with pytest.raises(AuditError):
            s.record("f", "read", 0, -8)
        with pytest.raises(AuditError):
            s.record("f", "frobnicate", 0, 8)

    def test_record_event_routes_through_buffers(self):
        from repro.audit import Event, EventType

        s = AuditSession(capture="block")
        s.record_event(Event(pid=9, path="f", c=EventType.READ, l=0, sz=16))
        assert s.accessed_ranges("f", pid=9) == [(0, 16)]

    def test_array_file_accepts_session_directly(self, tmp_path):
        path = str(tmp_path / "x.knd")
        ArrayFile.create(path, ArraySchema((4, 4), "f8"),
                         np.zeros((4, 4))).close()
        for capture in ("event", "block"):
            s = AuditSession(capture=capture)
            with ArrayFile.open(path, recorder=s) as f:
                f.read_point((1, 2))
            assert s.accessed_nbytes(path) == 8, capture


class TestBlockRecorderInternals:
    def test_recorder_requires_positive_buffer(self):
        with pytest.raises(AuditError):
            BlockRecorder(buffer_size=0)

    def test_thread_buffer_slots(self):
        buf = _ThreadBuffer(8)
        assert buf.n == 0 and buf.offsets.size == 8

    def test_standalone_recorder(self):
        r = BlockRecorder(buffer_size=2)
        r.record("f", "read", 0, 8)
        r.record("f", "read", 8, 8)   # triggers buffer-full flush
        r.record("f", "write", 0, 4)
        r.flush()
        assert r.n_events == 3
        assert r.had_writes
        assert len(r.events()) == 3
        (store,) = r.stores.values()
        assert store.merged() == [(0, 16)]
        r.close()
        with pytest.raises(AuditError):
            r.record("f", "read", 0, 8)
