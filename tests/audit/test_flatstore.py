"""FlatIntervalStore: unit + property tests against the interval B-tree.

The flat store is only admissible as a per-session substitute for the
B-tree if the two agree query-for-query; the hypothesis properties here
pin ``merged()`` / ``overlapping()`` / ``covers()`` agreement on random
interval sets, in the spirit of the PR 1/PR 5 bit-identical guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import FlatIntervalStore, IntervalBTree, IntervalIndex
from repro.audit.flatstore import merge_ranges_arrays
from repro.errors import AuditError

intervals = st.lists(
    st.tuples(st.integers(0, 400), st.integers(0, 60)),
    max_size=80,
)


def build_both(ivs):
    flat, btree = FlatIntervalStore(capacity=4), IntervalBTree()
    for start, size in ivs:
        flat.insert(start, start + size, "read")
        btree.insert(start, start + size, "read")
    return flat, btree


class TestUnit:
    def test_empty(self):
        fs = FlatIntervalStore()
        assert len(fs) == 0
        assert fs.merged() == []
        assert fs.overlapping(0, 100) == []
        assert not fs.covers(0)

    def test_insert_and_merge_touching(self):
        fs = FlatIntervalStore()
        fs.insert(0, 10)
        fs.insert(10, 20)
        fs.insert(30, 40)
        assert fs.merged() == [(0, 20), (30, 40)]

    def test_zero_length_dropped_from_merged(self):
        fs = FlatIntervalStore()
        fs.insert(5, 5)
        assert fs.merged() == []
        assert len(fs) == 1

    def test_invalid_interval_rejected(self):
        fs = FlatIntervalStore()
        with pytest.raises(AuditError):
            fs.insert(10, 5)
        with pytest.raises(AuditError):
            fs.overlapping(10, 5)

    def test_insert_batch(self):
        fs = FlatIntervalStore(capacity=2)
        starts = np.array([0, 50, 8], dtype=np.int64)
        ends = np.array([8, 60, 16], dtype=np.int64)
        fs.insert_batch(starts, ends, np.array(["read"] * 3, dtype=object))
        assert len(fs) == 3
        assert fs.merged() == [(0, 16), (50, 60)]
        assert fs.overlapping(4, 12) == [(0, 8, "read"), (8, 16, "read")]

    def test_insert_batch_rejects_bad_shapes(self):
        fs = FlatIntervalStore()
        with pytest.raises(AuditError):
            fs.insert_batch(np.array([0, 1]), np.array([1]))
        with pytest.raises(AuditError):
            fs.insert_batch(np.array([5]), np.array([0]))

    def test_growth_across_many_batches(self):
        fs = FlatIntervalStore(capacity=1)
        for k in range(100):
            fs.insert(k * 2, k * 2 + 1)
        assert len(fs) == 100
        assert len(fs.merged()) == 100
        fs.check_invariants()

    def test_payloads_preserved_in_order(self):
        fs = FlatIntervalStore()
        fs.insert(10, 20, "b")
        fs.insert(0, 5, "a")
        assert [p for _, _, p in fs.iter_intervals()] == ["a", "b"]

    def test_protocol_satisfied(self):
        assert isinstance(FlatIntervalStore(), IntervalIndex)
        assert isinstance(IntervalBTree(), IntervalIndex)


class TestMergeRangesArrays:
    def test_empty(self):
        s, e = merge_ranges_arrays(np.empty(0), np.empty(0))
        assert s.size == 0 and e.size == 0

    def test_matches_python_merge(self):
        starts = np.array([40, 0, 10, 5, 90])
        ends = np.array([60, 10, 30, 8, 90])
        ms, me = merge_ranges_arrays(starts, ends)
        assert list(zip(ms.tolist(), me.tolist())) == [(0, 30), (40, 60)]


class TestPropertyAgreement:
    @settings(max_examples=200, deadline=None)
    @given(ivs=intervals)
    def test_merged_agree(self, ivs):
        flat, btree = build_both(ivs)
        assert flat.merged() == btree.merged()

    @settings(max_examples=200, deadline=None)
    @given(ivs=intervals, qs=st.integers(0, 500), qlen=st.integers(0, 80))
    def test_overlapping_agree(self, ivs, qs, qlen):
        flat, btree = build_both(ivs)
        assert (sorted(flat.overlapping(qs, qs + qlen))
                == sorted(btree.overlapping(qs, qs + qlen)))

    @settings(max_examples=200, deadline=None)
    @given(ivs=intervals, point=st.integers(0, 500))
    def test_covers_agree(self, ivs, point):
        flat, btree = build_both(ivs)
        assert flat.covers(point) == btree.covers(point)

    @settings(max_examples=100, deadline=None)
    @given(ivs=intervals)
    def test_iter_intervals_agree(self, ivs):
        flat, btree = build_both(ivs)
        assert list(flat.iter_intervals()) == list(btree.iter_intervals())

    @settings(max_examples=100, deadline=None)
    @given(ivs=intervals)
    def test_batch_equals_singles(self, ivs):
        singles, _ = build_both(ivs)
        batched = FlatIntervalStore()
        if ivs:
            starts = np.array([s for s, _ in ivs], dtype=np.int64)
            ends = np.array([s + z for s, z in ivs], dtype=np.int64)
            batched.insert_batch(starts, ends,
                                 np.array(["read"] * len(ivs), dtype=object))
        assert list(batched.iter_intervals()) == list(singles.iter_intervals())
        batched.check_invariants()

    @settings(max_examples=100, deadline=None)
    @given(ivs=intervals, qs=st.integers(0, 500), qlen=st.integers(0, 80))
    def test_interleaved_insert_query_insert(self, ivs, qs, qlen):
        # Queries between inserts must not freeze the store's contents.
        flat, btree = FlatIntervalStore(), IntervalBTree()
        half = len(ivs) // 2
        for start, size in ivs[:half]:
            flat.insert(start, start + size)
            btree.insert(start, start + size)
        flat.merged(), flat.covers(qs)  # force a sort mid-stream
        for start, size in ivs[half:]:
            flat.insert(start, start + size)
            btree.insert(start, start + size)
        assert flat.merged() == btree.merged()
        assert (sorted(flat.overlapping(qs, qs + qlen))
                == sorted(btree.overlapping(qs, qs + qlen)))
