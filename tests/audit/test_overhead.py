"""Unit tests for audit-overhead measurement."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.audit.overhead import OverheadReport, measure_overhead, summarize


@pytest.fixture
def knd(tmp_path):
    path = str(tmp_path / "o.knd")
    ArrayFile.create(
        path, ArraySchema((16, 16), "f8"),
        np.arange(256, dtype="f8").reshape(16, 16),
    ).close()
    return path


def row_reader(f):
    calls = 0
    for i in range(16):
        for j in range(16):
            f.read_point((i, j))
            calls += 1
    return calls


class TestMeasureOverhead:
    def test_report_fields(self, knd):
        report = measure_overhead("toy", knd, row_reader)
        assert report.program == "toy"
        assert report.n_io_calls == 256
        assert report.plain_seconds > 0
        assert report.audited_seconds > 0
        assert report.merge_seconds >= 0
        assert report.lookup_seconds >= 0
        assert report.file_nbytes > 256 * 8

    def test_overhead_fraction_sane(self, knd):
        report = measure_overhead("toy", knd, row_reader)
        # Auditing costs something but stays within an order of magnitude.
        assert -0.5 < report.overhead_fraction < 10.0

    def test_summarize(self):
        reports = [
            OverheadReport("a", 1, 1, 1.0, 1.2, 0.05, 0.05),
            OverheadReport("b", 1, 1, 1.0, 1.4, 0.0, 0.0),
        ]
        assert summarize(reports) == pytest.approx((0.3 + 0.4) / 2)

    def test_summarize_empty(self):
        assert summarize([]) == 0.0

    def test_zero_plain_seconds(self):
        r = OverheadReport("z", 1, 1, 0.0, 1.0, 0.0, 0.0)
        assert r.overhead_fraction == 0.0
