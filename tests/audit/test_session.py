"""Unit tests for AuditSession."""

import numpy as np
import pytest

from repro.arraymodel import ArraySchema, RowMajorLayout
from repro.audit import AuditSession, Event, EventType
from repro.errors import AuditError


def ev(pid, path, c, l, sz):
    return Event(pid=pid, path=path, c=c, l=l, sz=sz)


class TestRecording:
    def test_paper_example_two_processes(self):
        # Section IV-C: events e1(P1,R,0,110), e2(P2,R,70,30),
        # e3(P1,R,130,20), e4(P1,R,90,30) on one file ->
        # accessed offsets (0,120) and (130,150).
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.READ, 0, 110))
        s.record_event(ev(2, "f", EventType.READ, 70, 30))
        s.record_event(ev(1, "f", EventType.READ, 130, 20))
        s.record_event(ev(1, "f", EventType.READ, 90, 30))
        assert s.accessed_ranges("f") == [(0, 120), (130, 150)]

    def test_per_process_lookup(self):
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.READ, 0, 10))
        s.record_event(ev(2, "f", EventType.READ, 100, 10))
        assert s.accessed_ranges("f", pid=1) == [(0, 10)]
        assert s.accessed_ranges("f", pid=2) == [(100, 110)]
        assert s.accessed_ranges("f") == [(0, 10), (100, 110)]

    def test_per_file_isolation(self):
        s = AuditSession()
        s.record_event(ev(1, "a", EventType.READ, 0, 10))
        s.record_event(ev(1, "b", EventType.READ, 50, 10))
        assert s.accessed_ranges("a") == [(0, 10)]
        assert s.accessed_ranges("b") == [(50, 60)]

    def test_writes_tracked_not_merged(self):
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.WRITE, 0, 10))
        assert s.had_writes
        assert s.accessed_ranges("f") == []

    def test_open_close_not_accesses(self):
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.OPEN, 0, 0))
        s.record_event(ev(1, "f", EventType.CLOSE, 0, 0))
        assert s.accessed_ranges("f") == []
        assert s.n_events == 2

    def test_zero_size_read_ignored_in_ranges(self):
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.READ, 10, 0))
        assert s.accessed_ranges("f") == []

    def test_mmap_counts_as_access(self):
        s = AuditSession()
        s.record_event(ev(1, "f", EventType.MMAP, 0, 4096))
        assert s.accessed_ranges("f") == [(0, 4096)]

    def test_record_callback_form(self):
        s = AuditSession()
        s.record("f", "read", 8, 16, pid=7)
        assert s.accessed_ranges("f", pid=7) == [(8, 24)]

    def test_closed_session_rejects(self):
        s = AuditSession()
        s.close()
        with pytest.raises(AuditError):
            s.record("f", "read", 0, 8)

    def test_reset(self):
        s = AuditSession()
        s.record("f", "read", 0, 8)
        s.reset()
        assert s.n_events == 0
        assert s.accessed_ranges("f") == []

    def test_identities(self):
        s = AuditSession()
        s.record("a", "read", 0, 8, pid=2)
        s.record("b", "read", 0, 8, pid=1)
        assert s.identities() == [(1, "b"), (2, "a")]

    def test_accessed_nbytes(self):
        s = AuditSession()
        s.record("f", "read", 0, 10)
        s.record("f", "read", 5, 10)
        s.record("f", "read", 100, 10)
        assert s.accessed_nbytes("f") == 25


class TestIndexResolution:
    def test_accessed_indices(self):
        s = AuditSession()
        layout = RowMajorLayout(ArraySchema((4, 4), "f8"))
        s.record("f", "read", 0, 16)       # elements 0, 1
        s.record("f", "read", 15 * 8, 8)   # element 15
        idx = s.accessed_indices("f", layout)
        assert idx.tolist() == [[0, 0], [0, 1], [3, 3]]

    def test_accessed_indices_empty(self):
        s = AuditSession()
        layout = RowMajorLayout(ArraySchema((4, 4), "f8"))
        assert s.accessed_indices("f", layout).shape == (0, 2)

    def test_partial_element_read_maps_to_index(self):
        s = AuditSession()
        layout = RowMajorLayout(ArraySchema((4, 4), "f8"))
        s.record("f", "read", 4, 2)  # straddles element 0 only
        assert s.accessed_indices("f", layout).tolist() == [[0, 0]]

    def test_range_overlaps(self):
        s = AuditSession()
        s.record("f", "read", 0, 10)
        s.record("f", "read", 50, 10)
        hits = s.range_overlaps("f", 5, 55)
        assert [(h[0], h[1]) for h in hits] == [(0, 10), (50, 60)]
