"""Unit tests for the strace output parser."""

import pytest

from repro.audit import AuditSession, StraceParser, parse_strace_text
from repro.audit.events import EventType


def parse(text, **kw):
    return parse_strace_text(text, **kw)


class TestBasicParsing:
    def test_open_seek_read_close(self):
        trace = """\
1234  openat(AT_FDCWD, "/data/a.knd", O_RDONLY) = 3
1234  lseek(3, 880, SEEK_SET) = 880
1234  read(3, "...", 16) = 16
1234  read(3, "...", 16) = 16
1234  close(3) = 0
"""
        s = parse(trace)
        assert s.accessed_ranges("/data/a.knd") == [(880, 912)]

    def test_sequential_reads_without_seek(self):
        trace = """\
openat(AT_FDCWD, "/f", O_RDONLY) = 5
read(5, "", 100) = 100
read(5, "", 100) = 50
"""
        s = parse(trace)
        assert s.accessed_ranges("/f") == [(0, 150)]

    def test_pread_positional(self):
        trace = """\
openat(AT_FDCWD, "/f", O_RDONLY) = 4
pread64(4, "", 64, 4096) = 64
"""
        s = parse(trace)
        assert s.accessed_ranges("/f") == [(4096, 4160)]

    def test_mmap_file_backed(self):
        trace = """\
openat(AT_FDCWD, "/lib.so", O_RDONLY) = 3
mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3, 4096) = 0x7f0000000000
"""
        s = parse(trace)
        assert s.accessed_ranges("/lib.so") == [(4096, 12288)]

    def test_anonymous_mmap_ignored(self):
        trace = "mmap(NULL, 8192, PROT_READ, MAP_ANONYMOUS, -1, 0) = 0x7f0000000000\n"
        s = parse(trace)
        assert s.identities() == []

    def test_write_recorded_as_write(self):
        trace = """\
openat(AT_FDCWD, "/f", O_RDONLY) = 3
write(3, "", 10) = 10
"""
        s = parse(trace)
        assert s.had_writes
        assert s.accessed_ranges("/f") == []

    def test_failed_syscall_ignored(self):
        trace = 'openat(AT_FDCWD, "/nope", O_RDONLY) = -1\n'
        s = parse(trace)
        assert s.identities() == []

    def test_read_on_untracked_fd_ignored(self):
        s = parse('read(9, "", 100) = 100\n')
        assert s.identities() == []

    def test_fd_decorated_by_strace_yy(self):
        trace = """\
openat(AT_FDCWD, "/f", O_RDONLY) = 3</f>
read(3</f>, "", 32) = 32
"""
        s = parse(trace)
        assert s.accessed_ranges("/f") == [(0, 32)]

    def test_noise_lines_skipped(self):
        trace = """\
+++ exited with 0 +++
--- SIGCHLD {si_signo=SIGCHLD} ---
some garbage line
"""
        s = parse(trace)
        assert s.n_events == 0


class TestMultiProcess:
    def test_pid_prefixes_separate_fd_tables(self):
        trace = """\
100  openat(AT_FDCWD, "/f", O_RDONLY) = 3
200  openat(AT_FDCWD, "/f", O_RDONLY) = 3
100  lseek(3, 1000, SEEK_SET) = 1000
100  read(3, "", 10) = 10
200  read(3, "", 10) = 10
"""
        s = parse(trace)
        assert s.accessed_ranges("/f", pid=100) == [(1000, 1010)]
        assert s.accessed_ranges("/f", pid=200) == [(0, 10)]

    def test_unfinished_resumed(self):
        trace = """\
100  read(3,  <unfinished ...>
200  openat(AT_FDCWD, "/g", O_RDONLY) = 3
100  <... read resumed> "", 16) = 16
200  read(3, "", 8) = 8
"""
        session = AuditSession()
        parser = StraceParser(session=session)
        # Give pid 100 an fd table entry first.
        parser.feed_line('100  openat(AT_FDCWD, "/f", O_RDONLY) = 3')
        parser.feed(trace.splitlines())
        assert session.accessed_ranges("/f", pid=100) == [(0, 16)]
        assert session.accessed_ranges("/g", pid=200) == [(0, 8)]


class TestFiltering:
    def test_path_filter(self):
        trace = """\
openat(AT_FDCWD, "/data/a.knd", O_RDONLY) = 3
openat(AT_FDCWD, "/lib/lib.so", O_RDONLY) = 4
read(3, "", 10) = 10
read(4, "", 10) = 10
"""
        s = parse(trace, path_filter=".knd")
        assert s.accessed_ranges("/data/a.knd") == [(0, 10)]
        assert s.accessed_ranges("/lib/lib.so") == []

    def test_parse_counts(self):
        session = AuditSession()
        parser = StraceParser(session=session)
        parser.feed_line('openat(AT_FDCWD, "/f", O_RDONLY) = 3')
        parser.feed_line("unknown_call(1, 2) = 0")
        assert parser.n_parsed == 1
        assert parser.n_skipped == 1


class TestRoundtripWithInterposer:
    def test_equivalent_event_streams(self, tmp_path):
        """An strace transcript and the interposer produce the same ranges."""
        p = tmp_path / "x.bin"
        p.write_bytes(bytes(128))
        from repro.audit import audited_open

        s_interp = AuditSession()
        with audited_open(str(p), s_interp, pid=1) as f:
            f.seek(16)
            f.read(32)
        trace = (
            f'1  openat(AT_FDCWD, "{p}", O_RDONLY) = 3\n'
            "1  lseek(3, 16, SEEK_SET) = 16\n"
            '1  read(3, "", 32) = 32\n'
            "1  close(3) = 0\n"
        )
        s_trace = parse(trace)
        assert (
            s_interp.accessed_ranges(str(p))
            == s_trace.accessed_ranges(str(p))
        )


class TestLenientMode:
    BAD_FD = 'read(banana, "", 10) = 10'
    NO_PATH = "openat(AT_FDCWD, O_RDONLY) = 3"
    GOOD = (
        'openat(AT_FDCWD, "/data/a.knd", O_RDONLY) = 3\n'
        'read(3, "", 16) = 16\n'
    )

    def test_strict_is_the_default_and_raises(self):
        from repro.errors import TraceParseError

        parser = StraceParser(session=AuditSession())
        with pytest.raises(TraceParseError):
            parser.feed_line(self.NO_PATH)

    def test_lenient_counts_and_skips_malformed_lines(self):
        session = AuditSession()
        parser = StraceParser(session=session, lenient=True)
        parser.feed(
            (self.GOOD + self.BAD_FD + "\n" + self.NO_PATH).splitlines()
        )
        assert parser.skipped_lines == 2
        assert parser.n_parsed == 2
        # Good lines around the damage are still fully ingested.
        assert session.accessed_ranges("/data/a.knd") == [(0, 16)]

    def test_lenient_parse_strace_text(self):
        text = self.GOOD + self.NO_PATH + "\n"
        session = parse_strace_text(text, lenient=True)
        assert session.accessed_ranges("/data/a.knd") == [(0, 16)]

    def test_skipped_lines_zero_on_clean_trace(self):
        parser = StraceParser(session=AuditSession(), lenient=True)
        parser.feed(self.GOOD.splitlines())
        assert parser.skipped_lines == 0
