"""Unit tests for audit events (Definition 4)."""

import pytest

from repro.audit import ACCESS_TYPES, Event, EventType
from repro.errors import AuditError


class TestEventType:
    @pytest.mark.parametrize("name,expected", [
        ("read", EventType.READ),
        ("readv", EventType.READ),
        ("pread64", EventType.PREAD),
        ("mmap", EventType.MMAP),
        ("mmap2", EventType.MMAP),
        ("write", EventType.WRITE),
        ("pwrite64", EventType.WRITE),
        ("openat", EventType.OPEN),
        ("open", EventType.OPEN),
        ("close", EventType.CLOSE),
    ])
    def test_parse(self, name, expected):
        assert EventType.parse(name) is expected

    def test_parse_unknown(self):
        with pytest.raises(AuditError):
            EventType.parse("ioctl")

    def test_access_types(self):
        assert EventType.READ in ACCESS_TYPES
        assert EventType.PREAD in ACCESS_TYPES
        assert EventType.MMAP in ACCESS_TYPES
        assert EventType.WRITE not in ACCESS_TYPES
        assert EventType.OPEN not in ACCESS_TYPES


class TestEvent:
    def test_four_tuple_fields(self):
        e = Event(pid=42, path="/d/a.knd", c=EventType.READ, l=100, sz=16)
        assert e.id == (42, "/d/a.knd")
        assert e.offset_range == (100, 116)
        assert e.is_access
        assert not e.is_write

    def test_write_flag(self):
        e = Event(pid=1, path="x", c=EventType.WRITE, l=0, sz=4)
        assert e.is_write
        assert not e.is_access

    def test_open_close_not_access(self):
        for c in (EventType.OPEN, EventType.CLOSE):
            assert not Event(pid=1, path="x", c=c, l=0, sz=0).is_access

    def test_negative_offset_rejected(self):
        with pytest.raises(AuditError):
            Event(pid=1, path="x", c=EventType.READ, l=-1, sz=4)

    def test_negative_size_rejected(self):
        with pytest.raises(AuditError):
            Event(pid=1, path="x", c=EventType.READ, l=0, sz=-4)

    def test_frozen(self):
        e = Event(pid=1, path="x", c=EventType.READ, l=0, sz=4)
        with pytest.raises(AttributeError):
            e.l = 5
