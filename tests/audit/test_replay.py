"""Unit + integration tests for run manifests and replay verification."""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema, DebloatedArrayFile
from repro.audit import AuditSession
from repro.audit.replay import (
    RunManifest,
    capture_manifest,
    subset_range_reader,
    verify_manifest,
)
from repro.core import Kondo
from repro.errors import AuditError
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program


@pytest.fixture
def audited_run(tmp_path):
    """Run CS(1,2) against a real file under audit; return the pieces."""
    dims = (16, 16)
    program = get_program("CS")
    data = np.arange(256, dtype="f8").reshape(dims)
    path = str(tmp_path / "r.knd")
    ArrayFile.create(path, ArraySchema(dims, "f8"), data).close()
    session = AuditSession()
    f = ArrayFile.open(path, recorder=session.record)
    program.run(lambda idx: f.read_point(idx), (1, 2), dims)
    return program, dims, path, f, session


class TestManifestCapture:
    def test_capture_and_digest(self, audited_run):
        _prog, _dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        assert manifest.parameter_value == (1.0, 2.0)
        record = manifest.files[path]
        assert record.ranges == session.accessed_ranges(path)
        assert len(record.hashes) == len(record.ranges)
        assert record.accessed_nbytes > 0
        assert len(manifest.digest) == 64
        f.close()

    def test_json_roundtrip(self, audited_run):
        _prog, _dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        clone = RunManifest.from_json(manifest.to_json())
        assert clone.digest == manifest.digest
        assert clone.files[path].ranges == manifest.files[path].ranges
        f.close()

    def test_malformed_json_rejected(self):
        with pytest.raises(AuditError):
            RunManifest.from_json("{}")
        with pytest.raises(AuditError):
            RunManifest.from_json(
                '{"parameter_value": [1], '
                '"files": {"f": {"ranges": [[0, 8]], "hashes": []}}}'
            )


class TestReplayVerification:
    def test_verify_against_original(self, audited_run):
        _prog, _dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        report = verify_manifest(manifest, {path: f.read_extent})
        assert report.ok
        assert report.checked_ranges == len(manifest.files[path].ranges)
        f.close()

    def test_verify_against_debloated_subset(self, audited_run, tmp_path):
        """The central guarantee: the debloated file serves byte-identical
        data for every range a supported run accesses."""
        program, dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        kondo = Kondo(program, dims, fuzz_config=FuzzConfig(max_iter=600))
        result = kondo.analyze()
        subset = kondo.debloat_file(path, str(tmp_path / "r.knds"), result)
        report = verify_manifest(
            manifest, {path: subset_range_reader(subset)}
        )
        assert report.ok, (report.mismatches, report.missing)
        subset.close()
        f.close()

    def test_tampered_data_detected(self, audited_run, tmp_path):
        _prog, dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        f.close()
        tampered = np.arange(256, dtype="f8").reshape(dims)
        tampered[0, 0] = -999.0
        path2 = str(tmp_path / "t.knd")
        ArrayFile.create(path2, ArraySchema(dims, "f8"), tampered).close()
        f2 = ArrayFile.open(path2)
        report = verify_manifest(manifest, {path: f2.read_extent})
        assert not report.ok
        assert report.mismatches
        f2.close()

    def test_over_debloated_subset_reports_missing(self, audited_run, tmp_path):
        _prog, _dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        # Keep almost nothing: every manifest range comes back missing.
        tiny = DebloatedArrayFile.create(
            str(tmp_path / "tiny.knds"), f,
            keep_flat_indices=np.array([255]),
        )
        report = verify_manifest(manifest, {path: subset_range_reader(tiny)})
        assert not report.ok
        assert report.missing
        assert not report.mismatches
        tiny.close()
        f.close()

    def test_absent_reader_counts_missing(self, audited_run):
        _prog, _dims, path, f, session = audited_run
        manifest = capture_manifest(session, (1, 2), {path: f.read_extent})
        report = verify_manifest(manifest, {})
        assert not report.ok
        assert len(report.missing) == len(manifest.files[path].ranges)
        f.close()
