"""Bitmap set operations must be bit-identical to the np.unique paths."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.bitmap import (
    FlatBitmap,
    box_flat_indices,
    make_accumulator,
    ragged_aranges,
    union_flat,
    unique_flat,
    unique_lattice_points,
)


@st.composite
def lattice_cloud(draw):
    d = draw(st.integers(min_value=1, max_value=3))
    dims = tuple(draw(st.integers(min_value=1, max_value=12))
                 for _ in range(d))
    n = draw(st.integers(min_value=0, max_value=60))
    rows = [
        tuple(
            draw(st.integers(min_value=0, max_value=dims[k] - 1))
            for k in range(d)
        )
        for _ in range(n)
    ]
    return dims, np.asarray(rows, dtype=np.int64).reshape(n, d)


class TestUniqueFlat:
    @given(
        flat=st.lists(st.integers(min_value=0, max_value=499), max_size=200),
        max_cells=st.sampled_from([1, 100, 1 << 20]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_np_unique(self, flat, max_cells):
        arr = np.asarray(flat, dtype=np.int64)
        got = unique_flat(arr, 500, max_cells=max_cells)
        assert np.array_equal(got, np.unique(arr))
        assert got.dtype == np.int64

    def test_empty(self):
        assert unique_flat(np.empty(0, dtype=np.int64), 10).size == 0


class TestUnionFlat:
    def test_matches_union1d(self):
        rng = np.random.default_rng(7)
        parts = [rng.integers(0, 300, size=rng.integers(0, 50))
                 for _ in range(5)]
        expect = np.unique(np.concatenate(parts))
        for max_cells in (1, 1 << 20):
            got = union_flat(parts, 300, max_cells=max_cells)
            assert np.array_equal(got, expect)

    def test_all_empty(self):
        assert union_flat([np.empty(0, dtype=np.int64)], 10).size == 0
        assert union_flat([], 10).size == 0


class TestUniqueLatticePoints:
    @given(cloud=lattice_cloud(), max_cells=st.sampled_from([1, 1 << 20]))
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_np_unique_axis0(self, cloud, max_cells):
        dims, pts = cloud
        got = unique_lattice_points(pts, dims, max_cells=max_cells)
        if pts.shape[0] == 0:
            assert got.shape == pts.shape
            return
        expect = np.unique(pts, axis=0)
        assert got.dtype == expect.dtype
        assert np.array_equal(got, expect)

    def test_rejects_shape_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            unique_lattice_points(np.zeros((3, 2), dtype=np.int64), (4, 4, 4))


class TestAccumulators:
    def test_both_flavors_agree(self):
        rng = np.random.default_rng(11)
        batches = [rng.integers(0, 1000, size=200) for _ in range(4)]
        dense = make_accumulator(1000, max_cells=1 << 20)
        keyed = make_accumulator(1000, max_cells=10)  # force key fallback
        for b in batches:
            dense.add(b)
            keyed.add(b)
        expect = np.unique(np.concatenate(batches))
        assert np.array_equal(dense.to_sorted(), expect)
        assert np.array_equal(keyed.to_sorted(), expect)

    def test_empty_accumulators(self):
        assert make_accumulator(10).to_sorted().size == 0
        assert make_accumulator(10, max_cells=1).to_sorted().size == 0

    def test_flat_bitmap(self):
        bm = FlatBitmap(20)
        bm.add(np.array([5, 3, 5]))
        bm.add(np.empty(0, dtype=np.int64))
        assert np.array_equal(bm.to_sorted(), [3, 5])

    @given(
        spans=st.lists(
            st.tuples(st.integers(min_value=0, max_value=49),
                      st.integers(min_value=-3, max_value=49)),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_add_spans_matches_naive(self, spans):
        starts = np.array([s for s, _ in spans], dtype=np.int64)
        ends = np.array([min(s + e, 49) for s, e in spans], dtype=np.int64)
        bm = FlatBitmap(50)
        bm.add_spans(starts, ends)
        expect = sorted({
            z for s, e in zip(starts, ends) for z in range(s, e + 1)
        })
        assert np.array_equal(bm.to_sorted(), expect)
        # Key accumulator must agree.
        key = make_accumulator(50, max_cells=1)
        key.add_spans(starts, ends)
        assert np.array_equal(key.to_sorted(), expect)

    def test_add_box_matches_scatter(self):
        dims = (4, 5, 6)
        lo, hi = (1, 0, 2), (2, 4, 5)
        pts = np.array([
            (x, y, z)
            for x in range(lo[0], hi[0] + 1)
            for y in range(lo[1], hi[1] + 1)
            for z in range(lo[2], hi[2] + 1)
        ])
        from repro.arraymodel.layout import flatten_many

        expect = flatten_many(pts, dims)
        for max_cells in (1, 1 << 20):
            acc = make_accumulator(int(np.prod(dims)), max_cells=max_cells,
                                   dims=dims)
            acc.add_box(lo, hi)
            assert np.array_equal(acc.to_sorted(), np.sort(expect))

    def test_add_box_without_dims_raises(self):
        import pytest

        with pytest.raises(ValueError):
            make_accumulator(10).add_box((0,), (1,))


class TestRaggedAranges:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=-5, max_value=20),
                      st.integers(min_value=0, max_value=6)),
            max_size=10,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_concatenated_aranges(self, pairs):
        starts = np.array([s for s, _ in pairs], dtype=np.int64)
        lengths = np.array([n for _, n in pairs], dtype=np.int64)
        got = ragged_aranges(starts, lengths)
        expect = np.concatenate(
            [np.arange(s, s + n) for s, n in pairs] or
            [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(got, expect)

    def test_box_flat_indices_row_major(self):
        strides = np.array([6, 1], dtype=np.int64)
        got = box_flat_indices((1, 2), (2, 3), strides)
        assert np.array_equal(got, [8, 9, 14, 15])
