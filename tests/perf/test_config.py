"""PerfConfig validation and defaults."""

import pytest

from repro.errors import PerfConfigError
from repro.perf import DEFAULT_BITMAP_MAX_CELLS, SERIAL_PERF_CONFIG, PerfConfig


class TestPerfConfig:
    def test_defaults_are_fast_but_serial(self):
        cfg = PerfConfig()
        assert cfg.workers == 0
        assert not cfg.parallel
        assert cfg.grid_merge and cfg.bitmap_raster
        assert cfg.bitmap_max_cells == DEFAULT_BITMAP_MAX_CELLS

    def test_parallel_requires_two_workers(self):
        assert not PerfConfig(workers=1).parallel
        assert PerfConfig(workers=2).parallel

    def test_serial_config_disables_every_fast_path(self):
        cfg = SERIAL_PERF_CONFIG
        assert not cfg.parallel
        assert not cfg.grid_merge
        assert not cfg.bitmap_raster

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"backend": "mpi"},
            {"batch_size": 0},
            {"bitmap_max_cells": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(PerfConfigError):
            PerfConfig(**kwargs)

    def test_carried_by_both_configs(self):
        from repro.fuzzing.config import CarveConfig, FuzzConfig

        perf = PerfConfig(workers=4, batch_size=8)
        assert FuzzConfig(perf=perf).perf is perf
        assert CarveConfig(perf=perf).perf is perf
        # scaled_to must not drop the perf layer.
        assert FuzzConfig(perf=perf).scaled_to(256.0).perf is perf
        assert CarveConfig(perf=perf).scaled_to(256.0).perf is perf
