"""CampaignExecutor: ordered results, lazy pools, serial degradation."""

import threading

import pytest

from repro.perf import CampaignExecutor, PerfConfig, make_executor


class TestCampaignExecutor:
    def test_serial_map_runs_inline_in_order(self):
        ex = make_executor(PerfConfig(workers=0))
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        assert ex.map(fn, [3, 1, 2]) == [9, 1, 4]
        assert calls == [3, 1, 2]
        assert ex._pool is None  # no pool ever created

    def test_parallel_map_preserves_order(self):
        with make_executor(PerfConfig(workers=4)) as ex:
            items = list(range(50))
            assert ex.map(lambda x: -x, items) == [-x for x in items]

    def test_parallel_actually_uses_worker_threads(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=10)

        def fn(x):
            seen.add(threading.current_thread().name)
            barrier.wait()
            return x

        with make_executor(PerfConfig(workers=2, batch_size=2)) as ex:
            ex.map(fn, [0, 1])
        assert all(name.startswith("kondo-campaign") for name in seen)
        assert len(seen) == 2

    def test_empty_batch(self):
        with make_executor(PerfConfig(workers=2)) as ex:
            assert ex.map(lambda x: x, []) == []

    def test_close_is_idempotent_and_pool_recreates(self):
        ex = make_executor(PerfConfig(workers=2))
        assert ex.map(lambda x: x + 1, [1]) == [2]
        ex.close()
        ex.close()
        assert ex.map(lambda x: x + 1, [2]) == [3]  # lazily re-created
        ex.close()

    def test_worker_exception_propagates(self):
        def boom(_):
            raise ValueError("bad test")

        with make_executor(PerfConfig(workers=2)) as ex:
            with pytest.raises(ValueError, match="bad test"):
                ex.map(boom, [1, 2])

    def test_facade_properties(self):
        cfg = PerfConfig(workers=3, batch_size=7)
        ex = CampaignExecutor(cfg)
        assert ex.workers == 3
        assert ex.batch_size == 7
        assert ex.parallel


class TestMapOutcomes:
    """Hardened batch path: one Outcome per item, failures never poison
    the batch, a broken pool is discarded and lazily recreated."""

    def test_serial_mixed_success_and_failure(self):
        def fn(x):
            if x % 2:
                raise ValueError(f"odd {x}")
            return x * 10

        ex = make_executor(PerfConfig(workers=0))
        outcomes = ex.map_outcomes(fn, [0, 1, 2, 3])
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert [o.value for o in outcomes if o.ok] == [0, 20]
        assert all(isinstance(o.error, ValueError)
                   for o in outcomes if not o.ok)

    def test_parallel_one_failure_does_not_poison_the_batch(self):
        def fn(x):
            if x == 2:
                raise RuntimeError("worker died")
            return -x

        with make_executor(PerfConfig(workers=3)) as ex:
            outcomes = ex.map_outcomes(fn, [1, 2, 3, 4])
            assert [o.ok for o in outcomes] == [True, False, True, True]
            assert outcomes[1].error.args == ("worker died",)
            assert [o.value for o in outcomes if o.ok] == [-1, -3, -4]

    def test_empty_batch(self):
        with make_executor(PerfConfig(workers=2)) as ex:
            assert ex.map_outcomes(lambda x: x, []) == []

    def test_matches_map_when_nothing_fails(self):
        with make_executor(PerfConfig(workers=2)) as ex:
            items = list(range(20))
            assert [o.value for o in ex.map_outcomes(lambda x: x + 1, items)] \
                == ex.map(lambda x: x + 1, items)

    def test_submit_failure_after_shutdown_yields_failed_outcomes(self):
        ex = make_executor(PerfConfig(workers=2))
        pool = ex._ensure_pool()
        pool.shutdown(wait=True)  # simulate a pool dying under us
        outcomes = ex.map_outcomes(lambda x: x, [1, 2])
        assert all(not o.ok for o in outcomes)
        assert ex._pool is None  # carcass discarded
        # Next batch transparently gets a fresh pool.
        assert [o.value for o in ex.map_outcomes(lambda x: x, [3])] == [3]
        ex.close()
