"""CampaignExecutor: ordered results, lazy pools, serial degradation."""

import threading

import pytest

from repro.perf import CampaignExecutor, PerfConfig, make_executor


class TestCampaignExecutor:
    def test_serial_map_runs_inline_in_order(self):
        ex = make_executor(PerfConfig(workers=0))
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        assert ex.map(fn, [3, 1, 2]) == [9, 1, 4]
        assert calls == [3, 1, 2]
        assert ex._pool is None  # no pool ever created

    def test_parallel_map_preserves_order(self):
        with make_executor(PerfConfig(workers=4)) as ex:
            items = list(range(50))
            assert ex.map(lambda x: -x, items) == [-x for x in items]

    def test_parallel_actually_uses_worker_threads(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=10)

        def fn(x):
            seen.add(threading.current_thread().name)
            barrier.wait()
            return x

        with make_executor(PerfConfig(workers=2, batch_size=2)) as ex:
            ex.map(fn, [0, 1])
        assert all(name.startswith("kondo-campaign") for name in seen)
        assert len(seen) == 2

    def test_empty_batch(self):
        with make_executor(PerfConfig(workers=2)) as ex:
            assert ex.map(lambda x: x, []) == []

    def test_close_is_idempotent_and_pool_recreates(self):
        ex = make_executor(PerfConfig(workers=2))
        assert ex.map(lambda x: x + 1, [1]) == [2]
        ex.close()
        ex.close()
        assert ex.map(lambda x: x + 1, [2]) == [3]  # lazily re-created
        ex.close()

    def test_worker_exception_propagates(self):
        def boom(_):
            raise ValueError("bad test")

        with make_executor(PerfConfig(workers=2)) as ex:
            with pytest.raises(ValueError, match="bad test"):
                ex.map(boom, [1, 2])

    def test_facade_properties(self):
        cfg = PerfConfig(workers=3, batch_size=7)
        ex = CampaignExecutor(cfg)
        assert ex.workers == 3
        assert ex.batch_size == 7
        assert ex.parallel
