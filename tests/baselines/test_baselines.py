"""Unit tests for the BF, Random, and MiniAFL baselines."""

import numpy as np
import pytest

from repro.baselines import BruteForce, MiniAFL, RandomSampling
from repro.core import DebloatTest
from repro.metrics import accuracy
from repro.workloads import get_program


def make_test(dims=(16, 16)):
    return DebloatTest(get_program("CS"), dims)


class TestBruteForce:
    def test_exhaustive_reaches_ground_truth(self):
        prog = get_program("CS")
        dims = (16, 16)
        test = DebloatTest(prog, dims)
        out = BruteForce(test, prog.parameter_space(dims)).run()
        assert out.exhausted
        assert np.array_equal(out.flat_indices, prog.ground_truth_flat(dims))
        acc = accuracy(prog.ground_truth_flat(dims), out.flat_indices)
        assert acc.precision == 1.0 and acc.recall == 1.0

    def test_execution_budget(self):
        prog = get_program("CS")
        test = make_test()
        out = BruteForce(test, prog.parameter_space((16, 16))).run(
            max_executions=10
        )
        assert out.executions == 10
        assert not out.exhausted

    def test_partial_recall_lower(self):
        prog = get_program("CS")
        dims = (16, 16)
        test = make_test(dims)
        out = BruteForce(test, prog.parameter_space(dims)).run(
            max_executions=20
        )
        acc = accuracy(prog.ground_truth_flat(dims), out.flat_indices)
        assert acc.precision == 1.0  # BF never over-approximates
        assert acc.recall < 1.0

    def test_trace_monotone(self):
        prog = get_program("CS")
        test = make_test()
        out = BruteForce(test, prog.parameter_space((16, 16))).run(
            max_executions=50
        )
        counts = [n for _, _, n in out.discovery_trace]
        assert counts == sorted(counts)


class TestRandomSampling:
    def test_requires_budget(self):
        prog = get_program("CS")
        with pytest.raises(ValueError):
            RandomSampling(make_test(), prog.parameter_space((16, 16))).run()

    def test_precision_one(self):
        prog = get_program("CS")
        dims = (16, 16)
        test = make_test(dims)
        out = RandomSampling(test, prog.parameter_space(dims)).run(
            max_executions=100
        )
        acc = accuracy(prog.ground_truth_flat(dims), out.flat_indices)
        assert acc.precision == 1.0
        assert out.executions == 100

    def test_seed_reproducible(self):
        prog = get_program("CS")
        dims = (16, 16)
        a = RandomSampling(make_test(dims), prog.parameter_space(dims),
                           rng_seed=5).run(max_executions=50)
        b = RandomSampling(make_test(dims), prog.parameter_space(dims),
                           rng_seed=5).run(max_executions=50)
        assert np.array_equal(a.flat_indices, b.flat_indices)


class TestMiniAFL:
    def test_encode_decode_roundtrip(self):
        prog = get_program("CS")
        afl = MiniAFL(make_test(), prog.parameter_space((16, 16)))
        for v in [(0.0, 0.0), (14.0, 3.0), (7.0, 7.0)]:
            assert afl.decode(afl.encode(v)) == v

    def test_decode_short_buffer_padded(self):
        prog = get_program("CS")
        afl = MiniAFL(make_test(), prog.parameter_space((16, 16)))
        assert afl.decode(b"\x05") == (5.0, 0.0)

    def test_requires_budget(self):
        prog = get_program("CS")
        with pytest.raises(ValueError):
            MiniAFL(make_test(), prog.parameter_space((16, 16))).run()

    def test_campaign_finds_offsets(self):
        prog = get_program("CS")
        dims = (16, 16)
        test = make_test(dims)
        out = MiniAFL(test, prog.parameter_space(dims), rng_seed=0).run(
            max_executions=600
        )
        assert out.name == "AFL"
        assert out.n_offsets > 0
        acc = accuracy(prog.ground_truth_flat(dims), out.flat_indices)
        assert acc.precision == 1.0  # only observed offsets, no carving

    def test_coverage_novelty_grows_queue(self):
        prog = get_program("CS")
        dims = (16, 16)
        afl = MiniAFL(make_test(dims), prog.parameter_space(dims), rng_seed=1)
        afl.run(max_executions=400)
        assert len(afl.queue) >= 10  # seeds plus coverage-novel mutants

    def test_wasted_executions_dominate(self):
        """AFL's byte mutations mostly produce out-of-range valuations —
        the mechanism behind its poor recall in the paper."""
        prog = get_program("CS")
        dims = (16, 16)
        test = make_test(dims)
        afl = MiniAFL(test, prog.parameter_space(dims), rng_seed=2)
        afl.run(max_executions=500)
        useful_fraction = test.useful_executions / test.executions
        assert useful_fraction < 0.5

    def test_kondo_beats_afl_at_equal_executions(self):
        """The paper's headline comparison at matched budgets."""
        from repro.fuzzing import FuzzConfig, run_fuzz_schedule

        prog = get_program("CS")
        dims = (16, 16)
        budget = 400
        gt = prog.ground_truth_flat(dims)
        afl_out = MiniAFL(
            make_test(dims), prog.parameter_space(dims), rng_seed=0
        ).run(max_executions=budget)
        kondo_out = run_fuzz_schedule(
            make_test(dims), prog.parameter_space(dims),
            FuzzConfig(max_iter=budget, stop_iter=budget, rng_seed=0),
            256,
        )
        afl_recall = accuracy(gt, afl_out.flat_indices).recall
        kondo_recall = accuracy(gt, kondo_out.flat_indices).recall
        assert kondo_recall > afl_recall
