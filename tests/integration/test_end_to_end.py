"""Integration tests: the whole pipeline across subsystems.

These exercise fuzzer -> audit -> carver -> debloated file -> runtime on
real files, and check the cross-cutting invariants the paper relies on.
"""

import numpy as np
import pytest

from repro import (
    ArrayFile,
    ArraySchema,
    Kondo,
    KondoRuntime,
    accuracy,
    get_program,
)
from repro.errors import DataMissingError
from repro.fuzzing import FuzzConfig


@pytest.mark.parametrize("name,dims,min_recall", [
    ("CS", (64, 64), 0.95),
    ("PRL2D", (64, 64), 0.9),
    ("LDC2D", (64, 64), 0.85),
    ("RDC2D", (64, 64), 0.85),
])
def test_pipeline_accuracy_per_program(name, dims, min_recall):
    program = get_program(name)
    kondo = Kondo(program, dims, fuzz_config=FuzzConfig(rng_seed=1))
    result = kondo.analyze()
    acc = accuracy(program.ground_truth_flat(dims), result.carved_flat)
    assert acc.recall >= min_recall
    assert acc.precision >= 0.6


def test_full_roundtrip_supported_runs_identical(tmp_path):
    """Executions on D_Theta produce exactly the same values as on D for
    supported valuations that were carved (the paper's Definition 1
    equivalence)."""
    dims = (48, 48)
    program = get_program("CS")
    rng = np.random.default_rng(0)
    data = rng.standard_normal(dims)
    src = str(tmp_path / "d.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8"), data).close()

    kondo = Kondo(program, dims, fuzz_config=FuzzConfig(rng_seed=0))
    result = kondo.analyze()
    subset = kondo.debloat_file(src, str(tmp_path / "d.knds"), result)

    space = program.parameter_space(dims)
    checked = 0
    for v in space.sample_many(np.random.default_rng(1), 40):
        idx = program.access_indices(v, dims)
        if idx.size == 0:
            continue
        values_full = [data[tuple(i)] for i in idx]
        try:
            values_subset = [subset.read_point(tuple(i)) for i in idx]
        except DataMissingError:
            continue  # an (expected, rare) under-carved valuation
        assert values_full == pytest.approx(values_subset)
        checked += 1
    assert checked > 5
    subset.close()


def test_runtime_miss_rate_matches_metric(tmp_path):
    """KondoRuntime's observed misses agree with metrics.missed_valuations."""
    from repro.metrics import missed_valuations

    dims = (32, 32)
    program = get_program("CS")
    src = str(tmp_path / "m.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8")).close()
    kondo = Kondo(program, dims,
                  fuzz_config=FuzzConfig(max_iter=120, stop_iter=60))
    result = kondo.analyze()
    subset = kondo.debloat_file(src, str(tmp_path / "m.knds"), result)

    report = missed_valuations(program, dims, result.carved_flat)
    # Replay every valuation through the runtime; count missing valuations.
    space = program.parameter_space(dims)
    observed = 0
    for v in space.grid():
        runtime = KondoRuntime(subset, record_misses=False)
        stats = runtime.run_program(program, v, dims)
        if stats.misses:
            observed += 1
    assert observed == report.n_missed
    subset.close()


def test_audited_fuzzing_end_to_end(tmp_path):
    """Run the fuzz schedule through the real-file audited debloat test and
    confirm it reaches the same offsets as the direct path."""
    from repro.core import DebloatTest
    from repro.fuzzing import run_fuzz_schedule

    dims = (24, 24)
    program = get_program("CS")
    src = str(tmp_path / "a.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8")).close()
    cfg = FuzzConfig(max_iter=120, stop_iter=120, rng_seed=3)
    space = program.parameter_space(dims)

    direct = run_fuzz_schedule(
        DebloatTest(program, dims), space, cfg, 24 * 24
    )
    audited = run_fuzz_schedule(
        DebloatTest(program, dims, mode="audited", data_path=src),
        space, cfg, 24 * 24,
    )
    assert np.array_equal(direct.flat_indices, audited.flat_indices)


def test_kondo_beats_random_sampling_on_recall():
    """The paper's premise: naive random sampling under-approximates."""
    from repro.baselines import RandomSampling
    from repro.core import DebloatTest

    program = get_program("LDC2D")
    dims = (64, 64)
    truth = program.ground_truth_flat(dims)
    budget = 400

    kondo = Kondo(
        program, dims,
        fuzz_config=FuzzConfig(max_iter=budget, stop_iter=budget, rng_seed=0),
    )
    k_acc = accuracy(truth, kondo.analyze().carved_flat)

    rnd = RandomSampling(
        DebloatTest(program, dims), program.parameter_space(dims), rng_seed=0
    ).run(max_executions=budget)
    r_acc = accuracy(truth, rnd.flat_indices)
    assert k_acc.recall > r_acc.recall
