"""Integration tests for 3-D programs and real-app workflows."""

import numpy as np
import pytest

from repro import (
    ArrayFile,
    ArraySchema,
    Kondo,
    KondoRuntime,
    accuracy,
    get_program,
)
from repro.fuzzing import FuzzConfig
from repro.workloads import default_dims


@pytest.mark.parametrize("name,min_recall,min_precision", [
    ("PRL3D", 0.9, 0.6),
    ("LDC3D", 0.8, 0.9),
    ("RDC3D", 0.8, 0.9),
])
def test_3d_pipeline_accuracy(name, min_recall, min_precision):
    program = get_program(name)
    dims = (32, 32, 32)
    kondo = Kondo(program, dims, fuzz_config=FuzzConfig(rng_seed=2))
    result = kondo.analyze()
    acc = accuracy(program.ground_truth_flat(dims), result.carved_flat)
    assert acc.recall >= min_recall, acc
    assert acc.precision >= min_precision, acc


def test_3d_debloat_roundtrip(tmp_path):
    """Full 3-D roundtrip: analyze, materialize, serve reads."""
    dims = (24, 24, 24)
    program = get_program("LDC3D")
    rng = np.random.default_rng(0)
    data = rng.standard_normal(dims)
    src = str(tmp_path / "v.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8"), data).close()
    kondo = Kondo(program, dims, fuzz_config=FuzzConfig(rng_seed=1))
    result = kondo.analyze()
    subset = kondo.debloat_file(src, str(tmp_path / "v.knds"), result)
    with ArrayFile.open(src) as f:
        assert subset.file_nbytes < f.file_nbytes
    # Spot-check carved elements for byte-identical values.
    from repro.arraymodel.layout import unflatten_many

    sample = result.carved_flat[:: max(1, result.carved_flat.size // 50)]
    for idx in unflatten_many(sample, dims):
        assert subset.read_point(tuple(idx)) == data[tuple(idx)]
    subset.close()


def test_msi_roundtrip_with_runtime(tmp_path):
    """The MSI real-app program served end-to-end from a subset."""
    program = get_program("MSI")
    dims = default_dims(program)
    src = str(tmp_path / "msi.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8")).close()
    kondo = Kondo(program, dims)
    result = kondo.analyze()
    subset = kondo.debloat_file(src, str(tmp_path / "msi.knds"), result)
    rt = KondoRuntime(subset)
    space = program.parameter_space(dims)
    rng = np.random.default_rng(3)
    misses = 0
    for _ in range(10):
        stats = KondoRuntime(subset).run_program(
            program, space.sample(rng), dims
        )
        misses += stats.misses
    assert misses == 0  # recall 1 on MSI, as in Table III
    subset.close()


def test_vpic_debloat_roundtrip(tmp_path):
    """VPIC's data-dependent accesses served from the carved subset."""
    program = get_program("VPIC")
    dims = (96, 96)
    from repro.workloads.vpic import synthetic_energy_field

    data = synthetic_energy_field(dims)
    src = str(tmp_path / "vpic.knd")
    ArrayFile.create(src, ArraySchema(dims, "f8"), data).close()
    kondo = Kondo(program, dims)
    result = kondo.analyze()
    subset = kondo.debloat_file(src, str(tmp_path / "vpic.knds"), result)
    stats = KondoRuntime(subset).run_program(program, (850,), dims)
    assert stats.reads > 0
    assert stats.miss_rate < 0.02
    subset.close()
