"""Metamorphic / invariant properties of the whole pipeline.

These don't assert specific accuracy numbers; they assert relations that
must hold however the campaign unfolds — the soundness and monotonicity
arguments the paper's design rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Kondo, accuracy, get_program
from repro.fuzzing import CarveConfig, FuzzConfig


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_fuzz_offsets_always_sound(seed):
    """Whatever the seed, fuzzing only ever reports truly accessible
    offsets (they come from genuine debloat-test runs)."""
    program = get_program("CS2")
    dims = (48, 48)
    gt = set(program.ground_truth_flat(dims).tolist())
    kondo = Kondo(
        program, dims,
        fuzz_config=FuzzConfig(max_iter=150, stop_iter=150, rng_seed=seed),
    )
    result = kondo.analyze()
    assert set(result.observed_flat.tolist()) <= gt


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_carve_superset_of_observed(seed):
    """Carving may add interior points but never drops observed ones."""
    program = get_program("CS1")
    dims = (64, 64)
    kondo = Kondo(
        program, dims,
        fuzz_config=FuzzConfig(max_iter=200, stop_iter=200, rng_seed=seed),
    )
    result = kondo.analyze()
    observed = set(result.observed_flat.tolist())
    carved = set(result.carved_flat.tolist())
    assert observed <= carved


def test_more_iterations_never_reduce_observed_coverage():
    """Raw fuzz coverage is monotone in the iteration budget (same seed:
    a longer campaign replays the shorter one's prefix)."""
    program = get_program("CS")
    dims = (48, 48)

    def observed(max_iter):
        kondo = Kondo(
            program, dims,
            fuzz_config=FuzzConfig(max_iter=max_iter, stop_iter=max_iter,
                                   rng_seed=5),
        )
        return set(kondo.analyze().observed_flat.tolist())

    small = observed(100)
    large = observed(400)
    assert small <= large


def test_wider_merge_thresholds_monotone_in_coverage():
    """A more permissive CLOSE can only grow the carved subset (the
    precision/recall trade-off of Figure 11b/c, stated set-wise)."""
    program = get_program("CS1")
    dims = (64, 64)
    fuzz = FuzzConfig(max_iter=400, stop_iter=400, rng_seed=0)

    def carved(center, bound):
        kondo = Kondo(
            program, dims, fuzz_config=fuzz,
            carve_config=CarveConfig(center_d_thresh=center,
                                     bound_d_thresh=bound),
            auto_scale=False,
        )
        return set(kondo.analyze().carved_flat.tolist())

    tight = carved(5.0, 2.0)
    loose = carved(120.0, 80.0)
    assert tight <= loose


def test_recall_beats_raw_fuzzing():
    """Carving exists to lift recall above raw offset discovery."""
    program = get_program("CS")
    dims = (64, 64)
    gt = program.ground_truth_flat(dims)
    kondo = Kondo(
        program, dims,
        fuzz_config=FuzzConfig(max_iter=300, stop_iter=300, rng_seed=0),
    )
    result = kondo.analyze()
    raw = accuracy(gt, result.observed_flat).recall
    carved = accuracy(gt, result.carved_flat).recall
    assert carved >= raw
    assert carved > raw  # on CS the hull interior is a strict gain


def test_identical_config_identical_results():
    """The full pipeline is deterministic given (config, seed)."""
    program = get_program("PRL2D")
    dims = (64, 64)
    cfg = FuzzConfig(max_iter=250, stop_iter=250, rng_seed=11)

    def run():
        return Kondo(program, dims, fuzz_config=cfg).analyze()

    a, b = run(), run()
    assert np.array_equal(a.carved_flat, b.carved_flat)
    assert a.carve.n_hulls == b.carve.n_hulls
