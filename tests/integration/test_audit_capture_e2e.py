"""End-to-end: block-captured audited analysis equals the event path.

Runs the full ``kondo analyze`` pipeline (fuzz -> audit -> carve) twice on
CS 48x48 against a real KND file — once with ``--audit-capture event``
(the seed path) and once with ``--audit-capture block`` — and asserts the
carved flat-index sets are identical.  This is the pipeline-level closure
of the session-level equivalence properties.
"""

import numpy as np
import pytest

from repro.arraymodel import ArrayFile, ArraySchema
from repro.cli import main
from repro.core.pipeline import Kondo
from repro.fuzzing import FuzzConfig
from repro.workloads import get_program

DIMS = (48, 48)


@pytest.fixture(scope="module")
def cs_knd(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("audit-e2e") / "cs48.knd")
    rng = np.random.default_rng(7)
    ArrayFile.create(
        path, ArraySchema(DIMS, "f8"), rng.standard_normal(DIMS)
    ).close()
    return path


def _analyze(cs_knd, capture):
    kondo = Kondo(
        get_program("CS"), DIMS,
        fuzz_config=FuzzConfig(rng_seed=3, max_iter=120, stop_iter=120),
        audit_capture=capture,
    )
    test = kondo.make_test(mode="audited", data_path=cs_knd)
    assert test.audit_capture == capture
    return kondo.analyze(test=test)


class TestAuditedPipelineEquivalence:
    def test_block_capture_carves_identically(self, cs_knd):
        event_result = _analyze(cs_knd, "event")
        block_result = _analyze(cs_knd, "block")
        assert np.array_equal(event_result.observed_flat,
                              block_result.observed_flat)
        assert np.array_equal(event_result.carved_flat,
                              block_result.carved_flat)
        assert event_result.carve.n_hulls == block_result.carve.n_hulls
        assert event_result.carved_flat.size > 0

    def test_cli_block_capture_matches_event(self, cs_knd, capsys):
        import re

        outputs = {}
        for capture in ("event", "block"):
            assert main([
                "analyze", "CS", "--audit-data", cs_knd,
                "--audit-capture", capture, "--seed", "3",
            ]) == 0
            # Identical carve summary => identical subset statistics;
            # only the wall-clock differs between capture modes.
            outputs[capture] = re.sub(
                r"in \d+\.\d+s", "in <t>", capsys.readouterr().out
            )
        assert outputs["event"] == outputs["block"]
        assert "Kondo[CS" in outputs["event"]

    def test_cli_rejects_mismatched_dims(self, cs_knd, capsys):
        assert main([
            "analyze", "CS", "--audit-data", cs_knd, "--dims", "32x32",
        ]) == 1
        assert "!=" in capsys.readouterr().err
