"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation``, once wheel is present) installs the package from
the declarative metadata in ``pyproject.toml``.
"""

from setuptools import setup

setup()
